//! TEP geometry sweep: how predictor size, branch-history depth and
//! training aggressiveness trade off against prediction coverage (the
//! fraction of violations caught early enough to tolerate without replay).
//!
//! ```text
//! cargo run --release --example predictor_tuning
//! ```

use std::error::Error;

use tv_sched::core::Scheme;
use tv_sched::tep::TepConfig;
use tv_sched::timing::Voltage;
use tv_sched::workloads::Benchmark;

fn run(bench: Benchmark, tep: TepConfig) -> (f64, u64) {
    let mut pipe = Scheme::Abs
        .pipeline_builder(bench, 42, Voltage::high_fault())
        .tep_config(tep)
        .build();
    pipe.warm_up(50_000);
    let stats = pipe.run(150_000);
    let coverage = stats.faults_predicted as f64 / stats.faults_total().max(1) as f64;
    (coverage, stats.replays)
}

fn main() -> Result<(), Box<dyn Error>> {
    let bench = Benchmark::Sjeng;
    println!("{bench}: TEP geometry sweep at V_DD = 0.97 V\n");
    println!(
        "{:<26} {:>9} {:>8}",
        "configuration", "coverage", "replays"
    );

    let base = TepConfig::paper_default();
    let sweep: Vec<(String, TepConfig)> = vec![
        ("64 entries".into(), TepConfig { entries: 64, ..base }),
        ("256 entries".into(), TepConfig { entries: 256, ..base }),
        ("1024 entries".into(), TepConfig { entries: 1024, ..base }),
        ("4096 entries (default)".into(), base),
        (
            "4 history bits".into(),
            TepConfig {
                history_bits: 4,
                ..base
            },
        ),
        (
            "slow learn (train_up 1)".into(),
            TepConfig { train_up: 1, ..base },
        ),
        (
            "fast decay (64k)".into(),
            TepConfig {
                decay_interval: 1 << 16,
                ..base
            },
        ),
    ];
    for (label, cfg) in sweep {
        let (coverage, replays) = run(bench, cfg);
        println!("{label:<26} {:>8.1}% {replays:>8}", coverage * 100.0);
    }
    println!(
        "\nbigger tables and shallower history contexts raise coverage; every\n\
         uncovered violation costs a Razor-style replay."
    );
    Ok(())
}
