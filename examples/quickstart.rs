//! Quickstart: simulate one benchmark under every comparative scheme and
//! print the headline comparison the paper makes.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use std::error::Error;

use tv_sched::core::{Experiment, RunConfig, Scheme};
use tv_sched::timing::Voltage;
use tv_sched::workloads::Benchmark;

fn main() -> Result<(), Box<dyn Error>> {
    let bench = std::env::args()
        .nth(1)
        .map(|name| {
            Benchmark::ALL
                .into_iter()
                .find(|b| b.name() == name)
                .ok_or(format!("unknown benchmark {name}"))
        })
        .transpose()?
        .unwrap_or(Benchmark::Astar);

    let config = RunConfig {
        commits: 200_000,
        warmup: 100_000,
        ..RunConfig::quick()
    };
    println!(
        "{}: {} committed instructions per scheme at V_DD = 0.97 V\n",
        bench,
        config.commits
    );

    let eval = Experiment::new(bench, Voltage::high_fault(), config).run_all();
    println!(
        "{:<10} {:>7} {:>8} {:>9} {:>10} {:>12}",
        "scheme", "IPC", "faults", "replays", "overhead%", "ED-overhead%"
    );
    for result in eval.results() {
        let s = result.scheme;
        let overhead = eval.overhead(s);
        println!(
            "{:<10} {:>7.3} {:>8} {:>9} {:>10.2} {:>12.2}",
            s.name(),
            result.stats.ipc(),
            result.stats.faults_total(),
            result.stats.replays,
            overhead.perf_pct,
            overhead.ed_pct,
        );
    }

    for s in Scheme::PROPOSED {
        println!(
            "\n{} removes {:.0}% of Error Padding's performance overhead",
            s.name(),
            (1.0 - eval.relative_perf_overhead(s)) * 100.0
        );
    }
    Ok(())
}
