# Run-length codec round trip: two rounds of generate -> RLE-encode ->
# RLE-decode -> verify -> FNV-fold over a 512-word buffer. Each round
# seeds an LCG from the round number, emits random-length runs (1-8) of
# random byte values into the source buffer at 0x6000, encodes them as
# (count, value) word pairs at 0x7000, decodes back into 0x9000, counts
# round-trip mismatches into a1 (must stay 0), and folds the decoded
# buffer into the rolling FNV hash in a0. The largest built-in: ~45k
# dynamic instructions mixing data-dependent inner-loop branches
# (run-boundary scans), load/store traffic over three buffers, and the
# multiply/xor hash dependence chain.

        li a0, 0x811c9dc5      # FNV accumulator across rounds
        li a1, 0               # round-trip mismatch count
        li s0, 0x6000          # source buffer
        li s2, 0x7000          # encoded (count, value) stream
        li s3, 0x9000          # decoded buffer
        li s1, 512             # words per round
        li s5, 0               # round
        li s6, 2               # rounds
        li s9, 0x01000193      # FNV prime

round_loop:
        li t0, 0x9e3779b9      # seed = 0x1234567 ^ round * golden
        mul s7, s5, t0
        li t0, 0x1234567
        xor s7, s7, t0

        # -- generate: random-length runs of random byte values --------
        li t0, 0               # i
gen_loop:
        bge t0, s1, gen_done
        li t1, 1103515245      # seed = seed * 1103515245 + 12345
        mul s7, s7, t1
        li t1, 12345
        add s7, s7, t1
        srli t1, s7, 8
        andi t1, t1, 7
        addi t1, t1, 1         # run length 1..8
        srli t2, s7, 16
        andi t2, t2, 255       # run value
gen_run:
        bge t0, s1, gen_loop
        slli t3, t0, 2
        add t3, t3, s0
        sw t2, 0(t3)
        addi t0, t0, 1
        addi t1, t1, -1
        bne t1, zero, gen_run
        j gen_loop
gen_done:

        # -- encode: scan each run, emit a (count, value) pair ---------
        li t0, 0               # source index
        li s8, 0               # encoded words written
enc_loop:
        bge t0, s1, enc_done
        slli t3, t0, 2
        add t3, t3, s0
        lw t2, 0(t3)           # run value
        li t1, 1               # run count
enc_scan:
        add t4, t0, t1
        bge t4, s1, enc_emit
        slli t3, t4, 2
        add t3, t3, s0
        lw t5, 0(t3)
        bne t5, t2, enc_emit
        addi t1, t1, 1
        j enc_scan
enc_emit:
        slli t3, s8, 2
        add t3, t3, s2
        sw t1, 0(t3)
        sw t2, 4(t3)
        addi s8, s8, 2
        add t0, t0, t1
        j enc_loop
enc_done:

        # -- decode the (count, value) stream --------------------------
        li t0, 0               # encoded index
        li t4, 0               # output index
dec_loop:
        bge t0, s8, dec_done
        slli t3, t0, 2
        add t3, t3, s2
        lw t1, 0(t3)           # count
        lw t2, 4(t3)           # value
        addi t0, t0, 2
dec_run:
        slli t3, t4, 2
        add t3, t3, s3
        sw t2, 0(t3)
        addi t4, t4, 1
        addi t1, t1, -1
        bne t1, zero, dec_run
        j dec_loop
dec_done:

        # -- verify the round trip ------------------------------------
        li t0, 0
ver_loop:
        bge t0, s1, ver_done
        slli t3, t0, 2
        add t4, t3, s0
        lw t1, 0(t4)
        add t4, t3, s3
        lw t2, 0(t4)
        beq t1, t2, ver_next
        addi a1, a1, 1
ver_next:
        addi t0, t0, 1
        j ver_loop
ver_done:

        # -- fold the decoded buffer into the FNV accumulator ---------
        li t0, 0
fnv_loop:
        bge t0, s1, fnv_done
        slli t3, t0, 2
        add t3, t3, s3
        lw t2, 0(t3)
        xor a0, a0, t2
        mul a0, a0, s9
        srli t3, a0, 13
        xor a0, a0, t3
        addi t0, t0, 1
        j fnv_loop
fnv_done:

        addi s5, s5, 1
        bne s5, s6, round_loop
        ecall
