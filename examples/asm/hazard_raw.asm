# Back-to-back RAW hazard chains: every instruction depends on the one
# before it, including a store-to-load round trip through memory and a
# tight accumulating loop. The expected end state is pinned in
# tests/riscv_diff.rs — update both together.

        li x1, 1
        add x2, x1, x1         # 2
        add x3, x2, x2         # 4
        add x4, x3, x2         # 6
        mul x5, x4, x3         # 24
        sub x6, x5, x4         # 18
        xor x7, x6, x5         # 10
        or x8, x7, x1          # 11
        and x9, x8, x6         # 2
        sll x10, x9, x2        # 8
        srl x11, x5, x9        # 6
        sra x12, x6, x1        # 9
        slt x13, x4, x5        # 1
        sltu x14, x5, x4       # 0
        addi x15, x14, 100     # 100
        li x16, 0x6000
        sw x15, 0(x16)         # store-load RAW through memory
        lw x17, 0(x16)         # 100
        add x18, x17, x10      # 108
        li x19, 0
        li x20, 10
        li x21, 0
raw_loop:
        add x21, x21, x19      # sum 0..9 = 45
        addi x19, x19, 1
        bne x19, x20, raw_loop
        add x22, x21, x18      # 153
        ecall
