# Branch-dense control hazards: a loop with three data-dependent branches
# per iteration, then a forward taken/not-taken mix. The expected end
# state is pinned in tests/riscv_diff.rs — update both together.

        li x5, 0               # odd counter
        li x6, 0               # i
        li x7, 32              # limit
br_loop:
        andi x8, x6, 1
        beqz x8, even
        addi x5, x5, 1         # odd i
        j next
even:
        addi x9, x9, 2         # even i
next:
        andi x10, x6, 3
        bnez x10, skip4
        addi x11, x11, 1       # i % 4 == 0
skip4:
        addi x6, x6, 1
        blt x6, x7, br_loop
        li x12, 0
        blt x7, x6, fwd_skip   # 32 < 32: not taken
        addi x12, x12, 5
fwd_skip:
        beq x5, x9, eq_skip    # 16 == 32: not taken
        addi x12, x12, 7
eq_skip:
        bge x9, x5, ge_taken   # 32 >= 16: taken
        addi x12, x12, 100
ge_taken:
        ecall
