# 8x8 integer matrix multiply: C = A * B with A at 0x2000, B at 0x2100,
# C at 0x2200. Matrices are generated in place (memory starts all-zero),
# and a mixing checksum of C lands in a0 before the halting ecall.

        li s0, 0x2000          # A base
        li s1, 0x2100          # B base
        li s2, 0x2200          # C base
        li t0, 0               # flat index k
        li t1, 64
init:
        slli t2, t0, 1
        add t2, t2, t0         # 3k
        addi t2, t2, 7         # A[k] = 3k + 7
        slli t3, t0, 2
        add t3, t3, t0         # 5k
        addi t3, t3, 1         # B[k] = 5k + 1
        slli t4, t0, 2         # byte offset
        add t5, s0, t4
        sw t2, 0(t5)
        add t5, s1, t4
        sw t3, 0(t5)
        addi t0, t0, 1
        bne t0, t1, init

        li s3, 0               # i
outer_i:
        li s4, 0               # j
outer_j:
        li s5, 0               # k
        li s6, 0               # acc
inner:
        slli t2, s3, 3         # A[i*8 + k]
        add t2, t2, s5
        slli t2, t2, 2
        add t2, t2, s0
        lw t3, 0(t2)
        slli t4, s5, 3         # B[k*8 + j]
        add t4, t4, s4
        slli t4, t4, 2
        add t4, t4, s1
        lw t5, 0(t4)
        mul t6, t3, t5
        add s6, s6, t6
        addi s5, s5, 1
        li t2, 8
        bne s5, t2, inner
        slli t2, s3, 3         # C[i*8 + j] = acc
        add t2, t2, s4
        slli t2, t2, 2
        add t2, t2, s2
        sw s6, 0(t2)
        addi s4, s4, 1
        li t2, 8
        bne s4, t2, outer_j
        addi s3, s3, 1
        li t2, 8
        bne s3, t2, outer_i

        li a0, 0               # checksum C into a0
        li t0, 0
        li t1, 64
sum:
        slli t2, t0, 2
        add t2, t2, s2
        lw t3, 0(t2)
        add a0, a0, t3
        xor a0, a0, t0
        addi t0, t0, 1
        bne t0, t1, sum
        ecall
