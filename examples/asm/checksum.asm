# FNV-style rolling checksum over a generated 1 KiB buffer at 0x5000,
# eight passes; the final hash lands in a0. Load-heavy with a long
# multiply/xor dependence chain through a0 every iteration.

        li s0, 0x5000          # buffer base
        li s1, 256             # words
        li t0, 0
        li t1, 0x9e3779b9
fill:
        mul t2, t0, t1
        xor t2, t2, t0
        slli t3, t0, 2
        add t3, t3, s0
        sw t2, 0(t3)
        addi t0, t0, 1
        bne t0, s1, fill

        li a0, 0x811c9dc5      # FNV offset basis
        li s2, 0x01000193      # FNV prime
        li s3, 0               # pass
        li s4, 8
pass_loop:
        li t0, 0
word_loop:
        slli t1, t0, 2
        add t1, t1, s0
        lw t2, 0(t1)
        xor a0, a0, t2
        mul a0, a0, s2
        srli t3, a0, 13
        xor a0, a0, t3
        addi t0, t0, 1
        bne t0, s1, word_loop
        addi s3, s3, 1
        bne s3, s4, pass_loop
        ecall
