# Iterative quicksort (Lomuto partition, explicit range stack) over 128
# LCG-generated words at 0x3000. a0 = 1 iff the array ends up sorted.

        li s0, 0x3000          # array base
        li s1, 128             # N
        li t0, 0               # idx
        li t1, 42              # LCG state
        li t2, 1103515245
        li t3, 12345
        li t4, 0x7fffffff
init:
        mul t1, t1, t2
        add t1, t1, t3
        and t1, t1, t4         # keep values positive for signed compares
        slli t5, t0, 2
        add t5, t5, s0
        sw t1, 0(t5)
        addi t0, t0, 1
        bne t0, s1, init

        li sp, 0x4000          # range stack grows upward from 0x4000
        li t0, 0
        sw t0, 0(sp)           # push lo = 0
        addi t1, s1, -1
        sw t1, 4(sp)           # push hi = N - 1
        addi sp, sp, 8
qs_loop:
        li t0, 0x4000
        beq sp, t0, qs_done    # stack empty
        addi sp, sp, -8
        lw s2, 0(sp)           # lo
        lw s3, 4(sp)           # hi
        bge s2, s3, qs_loop    # ranges of size <= 1 are sorted
        slli t0, s3, 2         # pivot = a[hi]
        add t0, t0, s0
        lw s4, 0(t0)
        addi s5, s2, -1        # i
        add s6, s2, zero       # j
part_loop:
        bge s6, s3, part_done
        slli t0, s6, 2
        add t0, t0, s0
        lw t1, 0(t0)           # a[j]
        bge t1, s4, part_next
        addi s5, s5, 1         # swap a[i], a[j]
        slli t2, s5, 2
        add t2, t2, s0
        lw t3, 0(t2)
        sw t1, 0(t2)
        sw t3, 0(t0)
part_next:
        addi s6, s6, 1
        j part_loop
part_done:
        addi s5, s5, 1         # pivot's final slot: swap a[i], a[hi]
        slli t0, s5, 2
        add t0, t0, s0
        lw t1, 0(t0)
        slli t2, s3, 2
        add t2, t2, s0
        lw t3, 0(t2)
        sw t3, 0(t0)
        sw t1, 0(t2)
        addi t0, s5, -1        # push (lo, p - 1)
        sw s2, 0(sp)
        sw t0, 4(sp)
        addi sp, sp, 8
        addi t0, s5, 1         # push (p + 1, hi)
        sw t0, 0(sp)
        sw s3, 4(sp)
        addi sp, sp, 8
        j qs_loop
qs_done:
        li a0, 1               # verify: nondecreasing?
        li t0, 1
verify:
        bge t0, s1, done
        slli t1, t0, 2
        add t1, t1, s0
        lw t2, 0(t1)
        lw t3, -4(t1)
        bge t2, t3, verify_next
        li a0, 0
verify_next:
        addi t0, t0, 1
        j verify
done:
        ecall
