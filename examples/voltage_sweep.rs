//! Voltage sweep: fault rate and scheme overheads as the supply voltage
//! scales from the fault-free baseline (1.10 V) down past the paper's two
//! operating points — the "microprocessors can operate at a tighter
//! frequency, where predictable errors frequently occur and are tolerated
//! with minimal performance loss" claim, made continuous.
//!
//! ```text
//! cargo run --release --example voltage_sweep [benchmark]
//! ```

use std::error::Error;

use tv_sched::core::{Experiment, RunConfig, Scheme};
use tv_sched::timing::Voltage;
use tv_sched::workloads::Benchmark;

fn main() -> Result<(), Box<dyn Error>> {
    let bench = std::env::args()
        .nth(1)
        .map(|name| {
            Benchmark::ALL
                .into_iter()
                .find(|b| b.name() == name)
                .ok_or(format!("unknown benchmark {name}"))
        })
        .transpose()?
        .unwrap_or(Benchmark::Bzip2);

    let config = RunConfig {
        commits: 100_000,
        warmup: 50_000,
        ..RunConfig::quick()
    };
    println!("{bench}: supply-voltage sweep ({} commits/run)\n", config.commits);
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10}",
        "VDD", "FR(%)", "Razor-ov%", "EP-ov%", "ABS-ov%"
    );

    for &mv in &[1100u32, 1080, 1060, 1040, 1020, 1000, 985, 970] {
        let vdd = Voltage::new(mv as f64 / 1000.0);
        let eval = Experiment::new(bench, vdd, config).run_schemes(&[
            Scheme::Razor,
            Scheme::ErrorPadding,
            Scheme::Abs,
        ]);
        println!(
            "{:>6} {:>8.2} {:>10.2} {:>10.2} {:>10.2}",
            vdd.to_string(),
            eval.fault_rate_pct(Scheme::Razor),
            eval.overhead(Scheme::Razor).perf_pct,
            eval.overhead(Scheme::ErrorPadding).perf_pct,
            eval.overhead(Scheme::Abs).perf_pct,
        );
    }
    println!(
        "\nlower voltage ⇒ higher fault rate; the violation-aware scheduler's\n\
         overhead stays close to fault-free while Razor's explodes."
    );
    Ok(())
}
