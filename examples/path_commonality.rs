//! Gate-level sensitization study (paper §S1) on one component: watch the
//! φ/ψ commonality of a real netlist emerge from per-PC value locality,
//! and verify the µ+2σ fault criterion against the statistical STA.
//!
//! ```text
//! cargo run --release --example path_commonality
//! ```

use std::error::Error;

use tv_sched::netlist::components::{agen32, agen_inputs};
use tv_sched::netlist::{CommonalityAnalyzer, Simulator, SynthReport};
use tv_sched::timing::{StatisticalSta, Voltage};
use tv_sched::workloads::{Spec2000, ValueStream};

fn main() -> Result<(), Box<dyn Error>> {
    let agen = agen32();
    let report = SynthReport::characterize(&agen, 0.15, 2.0);
    println!("component under study:\n{report}\n");

    // φ/ψ commonality per benchmark stream (Figure 7 methodology).
    println!("{:<10} {:>12} {:>8}", "benchmark", "commonality", "PCs");
    for bench in Spec2000::ALL {
        let mut sim = Simulator::new(&agen);
        let mut stream = ValueStream::new(bench, 48, 7);
        let mut analyzer = CommonalityAnalyzer::new(agen.gates().len());
        for _ in 0..2_000 {
            let s = stream.next_sample();
            sim.apply(&agen_inputs(
                s.predecessor[0] as u32,
                s.predecessor[1] as u16,
                0,
            ));
            sim.apply(&agen_inputs(s.operands[0] as u32, s.operands[1] as u16, 0));
            analyzer.record(s.pc, sim.toggled());
        }
        let c = analyzer.finish();
        println!(
            "{:<10} {:>11.1}% {:>8}",
            bench.name(),
            c.weighted_average * 100.0,
            c.num_pcs
        );
    }

    // Statistical STA: the paper's fault criterion across voltages.
    println!("\nstatistical STA (µ+2σ criterion), 300 Monte-Carlo dies:");
    let sta = StatisticalSta::new(&agen).with_samples(300);
    let nominal = sta.run(Voltage::nominal(), 3);
    let cycle_time = nominal.mu_plus_two_sigma() * 1.02; // 2 % guard band
    println!(
        "cycle time budget: {cycle_time:.0} ps (nominal µ+2σ = {:.0} ps)",
        nominal.mu_plus_two_sigma()
    );
    for &v in &[1.10, 1.04, 0.97] {
        let r = sta.run(Voltage::new(v), 3);
        println!(
            "V_DD = {v:.2} V: µ = {:>6.0} ps, σ = {:>4.1} ps, µ+2σ = {:>6.0} ps → {}",
            r.mean_ps,
            r.sigma_ps,
            r.mu_plus_two_sigma(),
            if r.fails_at(cycle_time) {
                "TIMING VIOLATIONS"
            } else {
                "meets timing"
            }
        );
    }
    Ok(())
}
