//! Thermal/voltage sensor favourability model.
//!
//! The TEP "also considers favorable conditions for timing errors through
//! the use of thermal and voltage sensors" (paper §2.1.1). Real sensors
//! observe slow thermal drift plus occasional supply droops. This model
//! produces a deterministic favourability *level* in `[-1, 1]` as a
//! function of program position: a slow sinusoid (thermal time constant)
//! plus pseudo-random droop events (di/dt noise). Positive levels mean
//! conditions favour timing violations (hot and/or droopy); the fault model
//! scales its effective fault rate with the level, and the TEP arms its
//! predictions only when the level is above the arming threshold.

/// Deterministic thermal/voltage favourability signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorModel {
    /// Amplitude of the thermal sinusoid (fraction of level budget).
    pub thermal_amplitude: f64,
    /// Period of the thermal sinusoid in instructions.
    pub thermal_period: u64,
    /// Amplitude of droop events.
    pub droop_amplitude: f64,
    /// Mean spacing between droop events in instructions.
    pub droop_spacing: u64,
    /// Droop event duration in instructions.
    pub droop_len: u64,
    /// Level above which the TEP arms predictions.
    pub arming_threshold: f64,
    /// Seed for droop-event placement.
    pub seed: u64,
}

impl SensorModel {
    /// A representative default: ±0.3 thermal swing over 200 k instructions
    /// with 0.4-strength droops every ~50 k instructions lasting 2 k, and
    /// predictions armed above level −0.8 (i.e. almost always — the paper's
    /// predictor is gated off only in distinctly cold/quiet conditions).
    pub fn paper_default(seed: u64) -> Self {
        SensorModel {
            thermal_amplitude: 0.3,
            thermal_period: 200_000,
            droop_amplitude: 0.4,
            droop_spacing: 50_000,
            droop_len: 2_000,
            arming_threshold: -0.8,
            seed,
        }
    }

    /// A quiescent sensor that always reads level 0 and always arms.
    pub fn quiescent() -> Self {
        SensorModel {
            thermal_amplitude: 0.0,
            thermal_period: 1,
            droop_amplitude: 0.0,
            droop_spacing: u64::MAX,
            droop_len: 0,
            arming_threshold: -1.0,
            seed: 0,
        }
    }

    /// Favourability level at dynamic instruction position `seq`, in
    /// `[-1, 1]`.
    pub fn level(&self, seq: u64) -> f64 {
        let mut level = 0.0;
        if self.thermal_amplitude > 0.0 && self.thermal_period > 1 {
            let phase = (seq % self.thermal_period) as f64 / self.thermal_period as f64;
            level += self.thermal_amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        }
        if self.droop_amplitude > 0.0 && self.droop_spacing != u64::MAX {
            // Hash each droop window; a window hosts a droop event at a
            // hashed offset within it.
            let window = seq / self.droop_spacing.max(1);
            let h = hash2(self.seed, window);
            let offset = h % self.droop_spacing.max(1);
            let start = window * self.droop_spacing + offset;
            if seq >= start && seq < start + self.droop_len {
                level += self.droop_amplitude;
            }
        }
        level.clamp(-1.0, 1.0)
    }

    /// Whether the TEP should arm predictions at this position.
    pub fn armed(&self, seq: u64) -> bool {
        // Envelope tests, exact by monotonicity: `level` clamps the sum of
        // a thermal term bounded by `±thermal_amplitude` and a droop term
        // in `{0, droop_amplitude}`, and FP multiply/add/clamp are all
        // monotone. When the whole envelope sits on one side of the
        // threshold (the paper-default `-0.8` threshold against a `-0.3`
        // swing, for instance), the per-instruction sinusoid is skipped.
        let lo = (-self.thermal_amplitude).clamp(-1.0, 1.0);
        if lo >= self.arming_threshold {
            return true;
        }
        let hi = (self.thermal_amplitude + self.droop_amplitude).clamp(-1.0, 1.0);
        if hi < self.arming_threshold {
            return false;
        }
        self.level(seq) >= self.arming_threshold
    }
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_sensor_is_flat_and_armed() {
        let s = SensorModel::quiescent();
        for seq in [0u64, 1, 1000, u64::MAX / 2] {
            assert_eq!(s.level(seq), 0.0);
            assert!(s.armed(seq));
        }
    }

    #[test]
    fn levels_bounded() {
        let s = SensorModel::paper_default(42);
        for seq in (0..500_000).step_by(777) {
            let l = s.level(seq);
            assert!((-1.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn thermal_component_oscillates() {
        let s = SensorModel {
            droop_amplitude: 0.0,
            ..SensorModel::paper_default(1)
        };
        let quarter = s.thermal_period / 4;
        let three_quarter = 3 * s.thermal_period / 4;
        assert!(s.level(quarter) > 0.25);
        assert!(s.level(three_quarter) < -0.25);
    }

    #[test]
    fn droops_occur() {
        let s = SensorModel {
            thermal_amplitude: 0.0,
            ..SensorModel::paper_default(7)
        };
        let droopy = (0..400_000u64).filter(|&q| s.level(q) > 0.2).count();
        assert!(droopy > 0, "expected droop events");
        // droops are rare: well under 10 % of positions
        assert!((droopy as f64) < 0.1 * 400_000.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SensorModel::paper_default(9);
        let b = SensorModel::paper_default(9);
        let c = SensorModel::paper_default(10);
        let probe: Vec<u64> = (0..200_000).step_by(501).collect();
        assert!(probe.iter().all(|&q| a.level(q) == b.level(q)));
        assert!(probe.iter().any(|&q| a.level(q) != c.level(q)));
    }
}
