//! Statistical timing and fault modelling.
//!
//! The paper's methodology (§4.3): "To simulate timing faults, we embed gate
//! delay information in the architectural simulation. The effect of process
//! variation and aging on the circuit timing is obtained by our in-house
//! statistical timing tool that uses SPICE characterized gate delay
//! distributions. To model process variation, we assume that the transistor
//! length, width and oxide thickness behave as Gaussian distributions with
//! ±20% deviation across the nominal values. ... Faults are assumed to occur
//! when the 95% confidence interval of the stage delay exceeds the cycle
//! time (µ + 2σ)."
//!
//! This crate rebuilds that tool chain:
//!
//! * [`variation`] — Gaussian process-variation model over transistor L, W
//!   and t_ox, mapped to per-gate delay multipliers;
//! * [`voltage`] — alpha-power-law supply-voltage delay scaling, with the
//!   paper's three operating points (1.10 V baseline, 1.04 V low-fault,
//!   0.97 V high-fault);
//! * [`sta`] — Monte-Carlo statistical static timing analysis over
//!   [`tv_netlist`] circuits, with the µ+2σ fault criterion;
//! * [`sensor`] — the thermal/voltage-sensor favourability signal that
//!   gates Timing Error Predictor predictions (paper §2.1.1);
//! * [`fault`] — the per-static-PC persistent-criticality fault model used
//!   by the pipeline simulator, calibrated to the per-benchmark fault rates
//!   of Table 1 and exhibiting the ≈90 % per-PC repeatability measured in
//!   the paper's §S1 study.

pub mod fault;
pub mod sensor;
pub mod sta;
pub mod variation;
pub mod voltage;

pub use fault::{FaultCalibration, FaultModel, PipeStage};
pub use sensor::SensorModel;
pub use sta::{StaResult, StatisticalSta};
pub use variation::ProcessVariation;
pub use voltage::{delay_factor, Voltage, VDD_HIGH_FAULT, VDD_LOW_FAULT, VDD_NOMINAL};
