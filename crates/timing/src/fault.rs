//! The per-PC persistent-criticality timing-fault model.
//!
//! The paper's §S1 study establishes *why* timing violations are predictable
//! from the instruction PC: repeated dynamic instances of one static
//! instruction sensitize ≈87–92 % identical logic paths, so if one instance
//! violates timing under given V/T conditions, future instances almost
//! always do too. This module turns that observation into the fault
//! injector the pipeline simulator consumes:
//!
//! * each static PC hashes to a persistent *slack percentile* `s ∈ [0, 1)`
//!   (frozen at fabrication: the die's process variation decides which
//!   paths are critical);
//! * at supply voltage V, the fraction of PCs whose paths exceed the cycle
//!   time is `crit_frac(V)`, derived from the per-benchmark fault rates the
//!   paper reports at 0.97 V and 1.04 V (Table 1) by interpolating in
//!   alpha-power delay-factor space — the same PCs that fail at 1.04 V are
//!   a subset of those failing at 0.97 V (less slack fails first);
//! * a dynamic instance of a critical PC actually violates timing with
//!   probability equal to the measured sensitized-path *commonality*
//!   (default 0.90) — instances that sensitize a different path are the
//!   residue the predictor can tolerate as harmless false positives;
//! * a small share of violations (default 3 %) strikes non-critical PCs at
//!   random: these are the unpredictable faults that force Razor-style
//!   replay in every scheme (the paper: "Instruction replays are rare");
//! * the thermal/voltage sensor level modulates the effective critical
//!   fraction, so marginal PCs fault only under hot/droopy conditions.

use tv_prng::{fast_map_with_capacity, FastHashMap};

use crate::sensor::SensorModel;
use crate::voltage::{Voltage, VDD_HIGH_FAULT, VDD_LOW_FAULT};

/// Pipeline stages of the paper's Core-1-style machine (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PipeStage {
    Fetch,
    Decode,
    Rename,
    Dispatch,
    Issue,
    RegRead,
    Execute,
    Memory,
    Writeback,
    Retire,
}

impl PipeStage {
    /// All stages, front to back.
    pub const ALL: [PipeStage; 10] = [
        PipeStage::Fetch,
        PipeStage::Decode,
        PipeStage::Rename,
        PipeStage::Dispatch,
        PipeStage::Issue,
        PipeStage::RegRead,
        PipeStage::Execute,
        PipeStage::Memory,
        PipeStage::Writeback,
        PipeStage::Retire,
    ];

    /// Stages of the out-of-order engine (Issue through Writeback) — where
    /// the violation-aware scheduling framework applies (paper §2.2).
    pub fn is_ooo(self) -> bool {
        matches!(
            self,
            PipeStage::Issue
                | PipeStage::RegRead
                | PipeStage::Execute
                | PipeStage::Memory
                | PipeStage::Writeback
        )
    }

    /// In-order stages handled by the TEP-driven stall signal (paper §2.2).
    pub fn is_stallable_in_order(self) -> bool {
        matches!(
            self,
            PipeStage::Rename | PipeStage::Dispatch | PipeStage::Retire
        )
    }

    /// Front-end stages where only replay can correct a violation.
    pub fn is_replay_only(self) -> bool {
        matches!(self, PipeStage::Fetch | PipeStage::Decode)
    }
}

impl std::fmt::Display for PipeStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PipeStage::Fetch => "fetch",
            PipeStage::Decode => "decode",
            PipeStage::Rename => "rename",
            PipeStage::Dispatch => "dispatch",
            PipeStage::Issue => "issue",
            PipeStage::RegRead => "regread",
            PipeStage::Execute => "execute",
            PipeStage::Memory => "memory",
            PipeStage::Writeback => "writeback",
            PipeStage::Retire => "retire",
        };
        f.write_str(s)
    }
}

/// Per-benchmark fault-rate calibration (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCalibration {
    /// Fault rate (% of committed instructions) at V_DD = 0.97 V.
    pub rate_097_pct: f64,
    /// Fault rate (%) at V_DD = 1.04 V.
    pub rate_104_pct: f64,
    /// Per-PC sensitized-path commonality (paper §S1: ≈0.87–0.92).
    pub commonality: f64,
    /// Share of fault mass striking random non-critical PCs (unpredictable;
    /// corrected by replay in every scheme).
    pub unpredictable_share: f64,
    /// Share of faults striking the *in-order* engine (fetch/decode/rename/
    /// dispatch/retire). The paper observes these are rare — "the likelihood
    /// of timing errors is significantly more in the OoO engine" (§2.2) —
    /// and evaluates with OoO-only faults, so the default is 0; the
    /// in-order tolerance path (§2.2) can be exercised by raising it.
    pub in_order_share: f64,
}

impl FaultCalibration {
    /// Calibration from the two Table 1 rates with paper-default
    /// commonality (0.90) and unpredictable share (0.03).
    ///
    /// # Panics
    ///
    /// Panics if rates are negative, not ordered (`0.97 V` rate must be at
    /// least the `1.04 V` rate), or the derived parameters leave `[0, 1]`.
    pub fn from_rates(rate_097_pct: f64, rate_104_pct: f64) -> Self {
        let cal = FaultCalibration {
            rate_097_pct,
            rate_104_pct,
            commonality: 0.90,
            unpredictable_share: 0.002,
            in_order_share: 0.0,
        };
        cal.validate();
        cal
    }

    fn validate(&self) {
        assert!(self.rate_104_pct >= 0.0, "fault rates must be non-negative");
        assert!(
            self.rate_097_pct >= self.rate_104_pct,
            "lower voltage must not lower the fault rate"
        );
        assert!(
            (0.0..=1.0).contains(&self.commonality) && self.commonality > 0.0,
            "commonality must be in (0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&self.unpredictable_share),
            "unpredictable share must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&self.in_order_share),
            "in-order share must be in [0, 1)"
        );
    }

    /// Interpolated fault rate (fraction, not %) at an arbitrary voltage,
    /// linear in alpha-power delay-factor space and clamped at zero.
    pub fn rate_at(&self, vdd: Voltage) -> f64 {
        let g = vdd.delay_factor();
        let g_lo = Voltage::new(VDD_LOW_FAULT).delay_factor();
        let g_hi = Voltage::new(VDD_HIGH_FAULT).delay_factor();
        let r_lo = self.rate_104_pct / 100.0;
        let r_hi = self.rate_097_pct / 100.0;
        let t = (g - g_lo) / (g_hi - g_lo);
        (r_lo + (r_hi - r_lo) * t).clamp(0.0, 1.0)
    }
}

/// Deterministic timing-fault injector for one `(benchmark, die, voltage)`
/// combination.
///
/// # Example
///
/// ```
/// use tv_timing::{FaultCalibration, FaultModel, Voltage};
///
/// let cal = FaultCalibration::from_rates(6.74, 2.01); // astar, Table 1
/// let fm = FaultModel::new(cal, Voltage::low_fault(), 42);
/// // Same (pc, seq) always gets the same verdict:
/// assert_eq!(fm.decide(0x1040, false, 17), fm.decide(0x1040, false, 17));
/// ```
#[derive(Debug, Clone)]
pub struct FaultModel {
    cal: FaultCalibration,
    vdd: Voltage,
    seed: u64,
    sensor: SensorModel,
    /// Baseline critical-PC fraction at sensor level 0.
    crit_frac: f64,
    /// Baseline per-instance fault probability for non-critical PCs.
    eps: f64,
    /// Calibrated mode: each PC's position in `[0, 1)` along the
    /// hash-ordered slack walk, weighted by dynamic execution frequency.
    /// A PC is critical when its position is below the critical fraction,
    /// so the critical set's *dynamic* mass matches the target fault rate
    /// regardless of how skewed the PC frequencies are.
    crit_rank: Option<FastHashMap<u64, f64>>,
}

impl FaultModel {
    /// Builds a fault model with a quiescent sensor.
    pub fn new(cal: FaultCalibration, vdd: Voltage, seed: u64) -> Self {
        Self::with_sensor(cal, vdd, seed, SensorModel::quiescent())
    }

    /// Builds a fault model with an explicit sensor model.
    pub fn with_sensor(
        cal: FaultCalibration,
        vdd: Voltage,
        seed: u64,
        sensor: SensorModel,
    ) -> Self {
        cal.validate();
        let rate = cal.rate_at(vdd);
        let crit_frac = (rate * (1.0 - cal.unpredictable_share) / cal.commonality).min(1.0);
        let eps = if crit_frac >= 1.0 {
            0.0
        } else {
            (rate * cal.unpredictable_share / (1.0 - crit_frac)).min(1.0)
        };
        FaultModel {
            cal,
            vdd,
            seed,
            sensor,
            crit_frac,
            eps,
            crit_rank: None,
        }
    }

    /// Builds a fault model whose critical-PC set is calibrated against
    /// the workload's dynamic PC frequencies.
    ///
    /// The purely hash-based model ([`new`](FaultModel::new)) selects each
    /// static PC independently, so with a small or hot-loop-skewed PC
    /// population the *dynamic* fault rate has huge variance across seeds.
    /// Calibration fixes that while keeping everything the paper needs:
    /// PCs still become critical in a fixed pseudo-random order (the die's
    /// frozen slack ordering — criticality still nests across voltages and
    /// sensor conditions), but the critical prefix is measured in dynamic
    /// execution mass, so the observed fault rate matches Table 1.
    ///
    /// `pc_weights` maps each static PC to its dynamic execution count
    /// (e.g. from a profiling pass over the trace generator).
    pub fn calibrated<I>(
        cal: FaultCalibration,
        vdd: Voltage,
        seed: u64,
        sensor: SensorModel,
        pc_weights: I,
    ) -> Self
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut model = Self::with_sensor(cal, vdd, seed, sensor);
        let mut pcs: Vec<(u64, u64)> = pc_weights.into_iter().collect();
        let total: u64 = pcs.iter().map(|&(_, w)| w).sum();
        if total == 0 {
            return model;
        }
        // The die's slack ordering: hash-pseudo-random, frozen by seed.
        pcs.sort_by(|a, b| {
            hash01(seed, a.0, 0, 1)
                .partial_cmp(&hash01(seed, b.0, 0, 1))
                .expect("hashes are finite")
                .then(a.0.cmp(&b.0))
        });
        let mut rank = fast_map_with_capacity(pcs.len());
        let mut cum = 0u64;
        for (pc, w) in pcs {
            // Midpoint mass: a PC straddling the threshold is included
            // only when most of its mass falls below it, keeping the
            // critical set's dynamic mass unbiased despite lumpy weights.
            rank.insert(pc, (cum as f64 + w as f64 / 2.0) / total as f64);
            cum += w;
        }
        model.crit_rank = Some(rank);
        model
    }

    /// The PC's position along the die's slack ordering, in `[0, 1)`.
    fn pc_rank(&self, pc: u64) -> f64 {
        match &self.crit_rank {
            // Unprofiled PCs sit at the slack-rich end: never critical.
            Some(rank) => rank.get(&pc).copied().unwrap_or(1.0),
            None => hash01(self.seed, pc, 0, 1),
        }
    }

    /// The configured supply voltage.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// The calibration this model was built from.
    pub fn calibration(&self) -> FaultCalibration {
        self.cal
    }

    /// The sensor model in use.
    pub fn sensor(&self) -> &SensorModel {
        &self.sensor
    }

    /// Expected fraction of dynamic instructions that violate timing (at
    /// sensor level 0).
    pub fn expected_fault_rate(&self) -> f64 {
        self.crit_frac * self.cal.commonality + (1.0 - self.crit_frac) * self.eps
    }

    /// Whether `pc`'s sensitized paths exceed the cycle time at the current
    /// voltage and the sensor conditions at `seq` — i.e. whether the PC is
    /// *critical* (predictably faulty) right now.
    pub fn is_critical_pc(&self, pc: u64, seq: u64) -> bool {
        // `level` is clamped to [-1, 1], so `scale` lives in [0.5, 1.5].
        // FP multiplication is monotonic, which makes the band test below
        // bit-equivalent to evaluating the sensor: a rank at or beyond
        // `crit_frac * 1.5` can never be critical and one below
        // `crit_frac * 0.5` always is. Only ranks inside the band pay for
        // the sinusoid — with uniformly distributed ranks and a small
        // `crit_frac`, that is a few percent of instructions.
        let rank = self.pc_rank(pc);
        if rank >= self.crit_frac * 1.5 {
            return false;
        }
        if rank < self.crit_frac * 0.5 {
            return true;
        }
        let scale = 1.0 + 0.5 * self.sensor.level(seq);
        rank < self.crit_frac * scale
    }

    /// Fault verdict for the dynamic instance `(pc, seq)`.
    ///
    /// Returns the pipe stage in which the instance violates timing, or
    /// `None` for a clean traversal. `is_mem` selects the memory-port stage
    /// distribution for loads/stores. Deterministic in all arguments.
    pub fn decide(&self, pc: u64, is_mem: bool, seq: u64) -> Option<PipeStage> {
        if self.crit_frac <= 0.0 && self.eps <= 0.0 {
            return None;
        }
        let faulted = if self.is_critical_pc(pc, seq) {
            hash01(self.seed, pc, seq, 2) < self.cal.commonality
        } else {
            hash01(self.seed, pc, seq, 3) < self.eps
        };
        faulted.then(|| self.stage_of(pc, is_mem))
    }

    /// The pipe stage in which `pc` faults (persistent per PC — the
    /// critical path lives in one structure).
    ///
    /// Weights follow the paper's observation that "almost all timing
    /// errors happen in the wakeup/select stage" of the issue, with the
    /// load-store-queue CAM the other hotspot for memory operations
    /// (§3.3.1, §3.3.4).
    pub fn stage_of(&self, pc: u64, is_mem: bool) -> PipeStage {
        // Optional in-order-engine faults (paper §2.2): rename/dispatch/
        // retire are tolerated by a TEP-driven stall; fetch/decode only by
        // replay.
        if self.cal.in_order_share > 0.0
            && hash01(self.seed, pc, 0, 5) < self.cal.in_order_share
        {
            let y = hash01(self.seed, pc, 0, 6);
            return match y {
                y if y < 0.30 => PipeStage::Rename,
                y if y < 0.55 => PipeStage::Dispatch,
                y if y < 0.70 => PipeStage::Retire,
                y if y < 0.85 => PipeStage::Fetch,
                _ => PipeStage::Decode,
            };
        }
        let x = hash01(self.seed, pc, 0, 4);
        if is_mem {
            match x {
                x if x < 0.55 => PipeStage::Memory,
                x if x < 0.85 => PipeStage::Issue,
                x if x < 0.92 => PipeStage::RegRead,
                _ => PipeStage::Writeback,
            }
        } else {
            match x {
                x if x < 0.62 => PipeStage::Issue,
                x if x < 0.80 => PipeStage::Execute,
                x if x < 0.88 => PipeStage::RegRead,
                _ => PipeStage::Writeback,
            }
        }
    }

    /// Corruption mask for an *untolerated* violation on the dynamic
    /// instance `(pc, seq)`.
    ///
    /// A violation that slips past every tolerance mechanism latches a
    /// metastable result; the value plane XORs this mask into the victim's
    /// committed value. The mask is a pure function of `(die seed, pc,
    /// seq)` — campaigns replay bit-identically — and is never zero, so an
    /// untolerated fault always leaves a mark the golden-model oracle can
    /// see.
    pub fn corruption_mask(&self, pc: u64, seq: u64) -> u64 {
        let mut x = self.seed
            ^ pc.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ seq.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            ^ 7u64.wrapping_mul(0x1656_67b1_9e37_79f9);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x.max(1)
    }
}

/// Uniform hash of `(seed, a, b, salt)` into `[0, 1)`.
fn hash01(seed: u64, a: u64, b: u64, salt: u64) -> f64 {
    let mut x = seed
        ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ salt.wrapping_mul(0x1656_67b1_9e37_79f9);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn astar_cal() -> FaultCalibration {
        FaultCalibration::from_rates(6.74, 2.01)
    }

    #[test]
    fn nominal_voltage_is_fault_free() {
        let fm = FaultModel::new(astar_cal(), Voltage::nominal(), 1);
        assert_eq!(fm.expected_fault_rate(), 0.0);
        for seq in 0..5_000 {
            assert_eq!(fm.decide(0x1000 + 4 * (seq % 300), false, seq), None);
        }
    }

    #[test]
    fn empirical_rate_tracks_calibration() {
        for (vdd, want) in [
            (Voltage::low_fault(), 0.0201),
            (Voltage::high_fault(), 0.0674),
        ] {
            let fm = FaultModel::new(astar_cal(), vdd, 7);
            let mut faults = 0u64;
            let n = 400_000u64;
            for seq in 0..n {
                let pc = 0x1000 + 4 * hashmod(seq, 2_000);
                if fm.decide(pc, seq % 4 == 0, seq).is_some() {
                    faults += 1;
                }
            }
            let rate = faults as f64 / n as f64;
            assert!(
                (rate - want).abs() < want * 0.35 + 0.002,
                "{vdd}: rate {rate:.4} vs expected {want:.4}"
            );
        }
    }

    fn hashmod(x: u64, m: u64) -> u64 {
        (x.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 20) % m
    }

    #[test]
    fn critical_pcs_nest_with_voltage() {
        // Every PC critical at 1.04 V must also be critical at 0.97 V.
        let lo = FaultModel::new(astar_cal(), Voltage::low_fault(), 3);
        let hi = FaultModel::new(astar_cal(), Voltage::high_fault(), 3);
        for i in 0..20_000u64 {
            let pc = 0x1000 + 4 * i;
            if lo.is_critical_pc(pc, 0) {
                assert!(hi.is_critical_pc(pc, 0), "criticality must nest");
            }
        }
    }

    #[test]
    fn faults_recur_on_critical_pcs() {
        let fm = FaultModel::new(astar_cal(), Voltage::high_fault(), 11);
        // find a critical PC
        let pc = (0..100_000u64)
            .map(|i| 0x1000 + 4 * i)
            .find(|&pc| fm.is_critical_pc(pc, 0))
            .expect("some PC is critical at 0.97V");
        let faulting = (0..2_000u64)
            .filter(|&seq| fm.decide(pc, false, seq).is_some())
            .count();
        let frac = faulting as f64 / 2_000.0;
        assert!(
            (frac - 0.90).abs() < 0.05,
            "critical PC faults at commonality rate, got {frac}"
        );
    }

    #[test]
    fn stage_is_persistent_per_pc_and_valid() {
        let fm = FaultModel::new(astar_cal(), Voltage::high_fault(), 5);
        for i in 0..500u64 {
            let pc = 0x2000 + 4 * i;
            let s1 = fm.stage_of(pc, false);
            let s2 = fm.stage_of(pc, false);
            assert_eq!(s1, s2);
            assert!(s1.is_ooo());
            assert_ne!(s1, PipeStage::Memory, "non-mem op cannot fault in memory");
            let sm = fm.stage_of(pc, true);
            assert!(sm.is_ooo());
            assert_ne!(sm, PipeStage::Execute, "mem op faults use the mem distribution");
        }
    }

    #[test]
    fn in_order_share_emits_front_end_stages() {
        let cal = FaultCalibration {
            in_order_share: 1.0 - 1e-9,
            ..astar_cal()
        };
        let fm = FaultModel::new(cal, Voltage::high_fault(), 3);
        let mut saw = std::collections::HashSet::new();
        for i in 0..5_000u64 {
            saw.insert(fm.stage_of(0x1000 + 4 * i, false));
        }
        for stage in [
            PipeStage::Rename,
            PipeStage::Dispatch,
            PipeStage::Retire,
            PipeStage::Fetch,
            PipeStage::Decode,
        ] {
            assert!(saw.contains(&stage), "missing {stage}");
        }
        assert!(!saw.contains(&PipeStage::Issue), "all mass is in-order");
    }

    #[test]
    fn issue_dominates_stage_distribution() {
        let fm = FaultModel::new(astar_cal(), Voltage::high_fault(), 13);
        let mut issue = 0;
        let n = 20_000;
        for i in 0..n {
            if fm.stage_of(0x4000 + 4 * i, false) == PipeStage::Issue {
                issue += 1;
            }
        }
        let frac = issue as f64 / n as f64;
        assert!(frac > 0.5, "issue share {frac}");
    }

    #[test]
    fn sensor_raises_effective_criticality() {
        let cal = astar_cal();
        let hot_sensor = SensorModel {
            thermal_amplitude: 1.0,
            thermal_period: 4,
            droop_amplitude: 0.0,
            droop_spacing: u64::MAX,
            droop_len: 0,
            arming_threshold: -1.0,
            ..SensorModel::quiescent()
        };
        let fm = FaultModel::with_sensor(cal, Voltage::high_fault(), 17, hot_sensor);
        // seq=1 is the sinusoid peak for period 4; seq=3 the trough.
        let crit_hot = (0..50_000u64)
            .filter(|&i| fm.is_critical_pc(0x1000 + 4 * i, 1))
            .count();
        let crit_cold = (0..50_000u64)
            .filter(|&i| fm.is_critical_pc(0x1000 + 4 * i, 3))
            .count();
        assert!(crit_hot > crit_cold, "{crit_hot} vs {crit_cold}");
    }

    #[test]
    fn rate_interpolation_hits_calibration_points() {
        let cal = astar_cal();
        assert!((cal.rate_at(Voltage::low_fault()) - 0.0201).abs() < 1e-12);
        assert!((cal.rate_at(Voltage::high_fault()) - 0.0674).abs() < 1e-12);
        assert_eq!(cal.rate_at(Voltage::nominal()), 0.0);
        // Between the calibration points the rate is between the rates.
        let mid = cal.rate_at(Voltage::new(1.00));
        assert!(mid > 0.0201 && mid < 0.0674);
    }

    #[test]
    fn pipe_stage_classification() {
        assert!(PipeStage::Issue.is_ooo());
        assert!(PipeStage::Writeback.is_ooo());
        assert!(!PipeStage::Fetch.is_ooo());
        assert!(PipeStage::Rename.is_stallable_in_order());
        assert!(PipeStage::Retire.is_stallable_in_order());
        assert!(PipeStage::Fetch.is_replay_only());
        assert!(PipeStage::Decode.is_replay_only());
        assert!(!PipeStage::Issue.is_replay_only());
        assert_eq!(PipeStage::ALL.len(), 10);
        assert_eq!(PipeStage::Memory.to_string(), "memory");
    }

    #[test]
    #[should_panic(expected = "must not lower the fault rate")]
    fn inverted_rates_panic() {
        let _ = FaultCalibration::from_rates(1.0, 2.0);
    }

    #[test]
    fn corruption_mask_is_deterministic_and_nonzero() {
        let a = FaultModel::new(astar_cal(), Voltage::high_fault(), 42);
        let b = FaultModel::new(astar_cal(), Voltage::low_fault(), 42);
        let c = FaultModel::new(astar_cal(), Voltage::high_fault(), 43);
        for i in 0..10_000u64 {
            let pc = 0x1000 + 4 * (i % 257);
            let m = a.corruption_mask(pc, i);
            assert_ne!(m, 0, "mask must always flip at least one bit");
            // voltage does not enter the mask; the die seed does
            assert_eq!(m, b.corruption_mask(pc, i));
            let _ = c.corruption_mask(pc, i); // distinct seed: just exercise
        }
        assert_ne!(
            a.corruption_mask(0x1000, 5),
            c.corruption_mask(0x1000, 5),
            "different dies corrupt differently"
        );
    }
}
