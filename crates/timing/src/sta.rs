//! Monte-Carlo statistical static timing analysis.
//!
//! Propagates per-gate delay distributions through a [`tv_netlist::Netlist`]
//! to estimate the distribution of the component's critical-path delay under
//! process variation and supply-voltage scaling, and applies the paper's
//! fault criterion: a stage is faulty at a given cycle time when the 95 %
//! confidence bound of its delay (µ + 2σ) exceeds the cycle time.

use tv_prng::{ChaCha12Rng, SeedableRng};

use tv_netlist::Netlist;

use crate::variation::ProcessVariation;
use crate::voltage::Voltage;

/// Result of a statistical STA run.
#[derive(Debug, Clone, PartialEq)]
pub struct StaResult {
    /// Mean critical-path delay in picoseconds.
    pub mean_ps: f64,
    /// Standard deviation of the critical-path delay in picoseconds.
    pub sigma_ps: f64,
    /// Number of Monte-Carlo samples.
    pub samples: usize,
    /// Raw sorted sample values (for quantile checks).
    pub sorted_samples: Vec<f64>,
}

impl StaResult {
    /// The paper's fault criterion bound: µ + 2σ.
    pub fn mu_plus_two_sigma(&self) -> f64 {
        self.mean_ps + 2.0 * self.sigma_ps
    }

    /// Whether the stage faults at `cycle_time_ps` under the µ+2σ criterion.
    pub fn fails_at(&self, cycle_time_ps: f64) -> bool {
        self.mu_plus_two_sigma() > cycle_time_ps
    }

    /// Empirical quantile of the sampled delay distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let idx = ((self.sorted_samples.len() - 1) as f64 * q).round() as usize;
        self.sorted_samples[idx]
    }
}

/// Monte-Carlo STA engine over one netlist.
#[derive(Debug, Clone)]
pub struct StatisticalSta<'n> {
    netlist: &'n Netlist,
    variation: ProcessVariation,
    samples: usize,
}

impl<'n> StatisticalSta<'n> {
    /// Creates an engine with the paper-default variation and 500 samples.
    pub fn new(netlist: &'n Netlist) -> Self {
        StatisticalSta {
            netlist,
            variation: ProcessVariation::paper_default(),
            samples: 500,
        }
    }

    /// Overrides the variation model.
    pub fn with_variation(mut self, variation: ProcessVariation) -> Self {
        self.variation = variation;
        self
    }

    /// Overrides the sample count.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample count must be positive");
        self.samples = samples;
        self
    }

    /// Runs the analysis at the given supply voltage.
    ///
    /// Each Monte-Carlo sample models one die: every gate draws a frozen
    /// variation multiplier, nominal delays are scaled by the voltage
    /// factor, and the maximum arrival time over all outputs is recorded.
    pub fn run(&self, vdd: Voltage, seed: u64) -> StaResult {
        let vf = vdd.delay_factor();
        let gates = self.netlist.gates();
        let mut samples = Vec::with_capacity(self.samples);
        let mut arrival = vec![0.0f64; gates.len()];

        for die in 0..self.samples {
            let mut rng = ChaCha12Rng::seed_from_u64(seed ^ (die as u64).wrapping_mul(0x517c_c1b7));
            for (i, gate) in gates.iter().enumerate() {
                let input_arrival = gate
                    .fanin_nets()
                    .iter()
                    .map(|n| arrival[n.index()])
                    .fold(0.0, f64::max);
                let nominal = gate.kind.nominal_delay_ps();
                let delay = if nominal == 0.0 {
                    0.0
                } else {
                    nominal * vf * self.variation.sample_multiplier(&mut rng)
                };
                arrival[i] = input_arrival + delay;
            }
            let crit = self
                .netlist
                .outputs()
                .iter()
                .map(|n| arrival[n.index()])
                .fold(0.0, f64::max);
            samples.push(crit);
        }

        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        samples.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
        StaResult {
            mean_ps: mean,
            sigma_ps: var.sqrt(),
            samples: self.samples,
            sorted_samples: samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::components;

    #[test]
    fn lower_voltage_shifts_distribution_up() {
        let agen = components::agen32();
        let sta = StatisticalSta::new(&agen).with_samples(200);
        let nominal = sta.run(Voltage::nominal(), 5);
        let low = sta.run(Voltage::high_fault(), 5);
        assert!(low.mean_ps > nominal.mean_ps);
        assert!(low.mu_plus_two_sigma() > nominal.mu_plus_two_sigma());
    }

    #[test]
    fn mu_plus_two_sigma_approximates_p95() {
        // For the near-Gaussian max-of-paths distribution, µ+2σ should land
        // beyond the 90th percentile.
        let fc = components::forward_check();
        let sta = StatisticalSta::new(&fc).with_samples(400);
        let r = sta.run(Voltage::nominal(), 11);
        assert!(r.mu_plus_two_sigma() >= r.quantile(0.90));
        assert!(r.mu_plus_two_sigma() <= r.quantile(1.0) * 1.2);
    }

    #[test]
    fn fault_criterion_thresholds() {
        let sel = components::issue_select32();
        let sta = StatisticalSta::new(&sel).with_samples(100);
        let r = sta.run(Voltage::nominal(), 3);
        assert!(r.fails_at(r.mu_plus_two_sigma() - 1.0));
        assert!(!r.fails_at(r.mu_plus_two_sigma() + 1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let agen = components::agen32();
        let sta = StatisticalSta::new(&agen).with_samples(50);
        let a = sta.run(Voltage::low_fault(), 7);
        let b = sta.run(Voltage::low_fault(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn deeper_components_are_slower() {
        let alu = components::alu32();
        let fc = components::forward_check();
        let r_alu = StatisticalSta::new(&alu).with_samples(60).run(Voltage::nominal(), 1);
        let r_fc = StatisticalSta::new(&fc).with_samples(60).run(Voltage::nominal(), 1);
        assert!(r_alu.mean_ps > r_fc.mean_ps);
    }

    #[test]
    fn zero_variation_gives_zero_sigma() {
        let fc = components::forward_check();
        let sta = StatisticalSta::new(&fc)
            .with_variation(ProcessVariation::new(0.0, 0.0))
            .with_samples(20);
        let r = sta.run(Voltage::nominal(), 9);
        assert!(r.sigma_ps < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sample count must be positive")]
    fn zero_samples_panics() {
        let fc = components::forward_check();
        let _ = StatisticalSta::new(&fc).with_samples(0);
    }
}
