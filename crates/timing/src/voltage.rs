//! Supply-voltage delay scaling.
//!
//! Gate delay follows the alpha-power law `t_d ∝ V_DD / (V_DD − V_th)^α`
//! (Sakurai & Newton), normalized so the paper's 1.10 V baseline has
//! factor 1.0. Lowering the supply stretches every gate delay by the same
//! multiplicative factor, which is how the paper creates its two faulty
//! environments.

/// Nominal (fault-free) supply voltage — paper §4.3: "The baseline machines
/// have zero fault rate when executing at 1.1V supply voltage."
pub const VDD_NOMINAL: f64 = 1.10;
/// Low-fault-rate operating point (paper: 1.04 V).
pub const VDD_LOW_FAULT: f64 = 1.04;
/// High-fault-rate operating point (paper: 0.97 V).
pub const VDD_HIGH_FAULT: f64 = 0.97;

/// Threshold voltage of the 45 nm-class device model.
pub const V_TH: f64 = 0.35;
/// Velocity-saturation exponent of the alpha-power law.
pub const ALPHA: f64 = 1.3;

/// A validated supply-voltage value.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Voltage(f64);

impl Voltage {
    /// Creates a voltage.
    ///
    /// # Panics
    ///
    /// Panics unless `V_th < vdd ≤ 1.5` (delay diverges at the threshold).
    pub fn new(vdd: f64) -> Self {
        assert!(
            vdd > V_TH && vdd <= 1.5,
            "supply voltage {vdd} out of the valid range ({V_TH}, 1.5]"
        );
        Voltage(vdd)
    }

    /// Raw volts.
    pub fn volts(self) -> f64 {
        self.0
    }

    /// Delay multiplier relative to the 1.10 V baseline (≥ 1 below nominal).
    pub fn delay_factor(self) -> f64 {
        delay_factor(self.0)
    }

    /// The paper's nominal operating point.
    pub fn nominal() -> Self {
        Voltage(VDD_NOMINAL)
    }

    /// The paper's low-fault-rate operating point (1.04 V).
    pub fn low_fault() -> Self {
        Voltage(VDD_LOW_FAULT)
    }

    /// The paper's high-fault-rate operating point (0.97 V).
    pub fn high_fault() -> Self {
        Voltage(VDD_HIGH_FAULT)
    }
}

impl std::fmt::Display for Voltage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}V", self.0)
    }
}

/// Alpha-power-law delay factor of `vdd` relative to [`VDD_NOMINAL`].
///
/// # Panics
///
/// Panics if `vdd <= V_TH`.
pub fn delay_factor(vdd: f64) -> f64 {
    assert!(vdd > V_TH, "supply voltage must exceed the threshold voltage");
    let d = |v: f64| v / (v - V_TH).powf(ALPHA);
    d(vdd) / d(VDD_NOMINAL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_factor_is_one() {
        assert!((delay_factor(VDD_NOMINAL) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_voltage_is_slower() {
        let f104 = delay_factor(VDD_LOW_FAULT);
        let f097 = delay_factor(VDD_HIGH_FAULT);
        assert!(f104 > 1.0);
        assert!(f097 > f104);
        // Sanity band for the alpha-power parameters chosen.
        assert!(f104 > 1.02 && f104 < 1.10, "f(1.04) = {f104}");
        assert!(f097 > 1.08 && f097 < 1.20, "f(0.97) = {f097}");
    }

    #[test]
    fn factor_is_monotone_in_voltage() {
        let mut prev = f64::INFINITY;
        let mut v = 0.80;
        while v <= 1.30 {
            let f = delay_factor(v);
            assert!(f < prev, "delay factor must fall as voltage rises");
            prev = f;
            v += 0.01;
        }
    }

    #[test]
    fn voltage_constructors() {
        assert_eq!(Voltage::nominal().volts(), VDD_NOMINAL);
        assert_eq!(Voltage::low_fault().volts(), VDD_LOW_FAULT);
        assert_eq!(Voltage::high_fault().volts(), VDD_HIGH_FAULT);
        assert_eq!(Voltage::new(1.0).to_string(), "1.00V");
        assert!((Voltage::nominal().delay_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of the valid range")]
    fn sub_threshold_voltage_panics() {
        let _ = Voltage::new(0.2);
    }
}
