//! Process-variation model.
//!
//! Per the paper (§4.3): transistor length, width and oxide thickness are
//! Gaussian with ±20 % deviation across nominal (interpreted, as is
//! conventional, as a 3σ band ⇒ σ = 20 %/3 ≈ 6.7 %). First-order device
//! physics maps parameter deviations to a gate-delay multiplier:
//! drive current rises with width and falls with channel length and oxide
//! thickness, so `delay ∝ L · t_ox / W`.

use tv_prng::{ChaCha12Rng, Rng, SeedableRng};

/// Gaussian process-variation model over (L, W, t_ox).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    /// Relative standard deviation of each parameter (default 0.2/3).
    pub sigma: f64,
    /// Additional systematic aging/wearout slowdown applied to every gate
    /// (e.g. 0.02 for a 2 % NBTI-aged chip). Default 0.
    pub aging: f64,
}

impl ProcessVariation {
    /// The paper's variation magnitude: ±20 % treated as a 3σ band.
    pub fn paper_default() -> Self {
        ProcessVariation {
            sigma: 0.20 / 3.0,
            aging: 0.0,
        }
    }

    /// Creates a model with the given per-parameter relative σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not in `[0, 0.25]` (larger values make the
    /// first-order mapping meaningless) or `aging` is negative.
    pub fn new(sigma: f64, aging: f64) -> Self {
        assert!((0.0..=0.25).contains(&sigma), "sigma out of range");
        assert!(aging >= 0.0, "aging must be non-negative");
        ProcessVariation { sigma, aging }
    }

    /// Samples one gate's delay multiplier.
    ///
    /// The multiplier is `(1+δL)(1+δt_ox)/(1+δW) · (1+aging)`, with each δ
    /// drawn from `N(0, σ²)` truncated at ±3σ (hard process corners).
    pub fn sample_multiplier<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let dl = self.sample_gaussian(rng);
        let dw = self.sample_gaussian(rng);
        let dt = self.sample_gaussian(rng);
        ((1.0 + dl) * (1.0 + dt) / (1.0 + dw)) * (1.0 + self.aging)
    }

    /// Deterministic per-gate multiplier: the same `(die_seed, gate_index)`
    /// always yields the same multiplier, modelling that variation is
    /// frozen at fabrication.
    pub fn multiplier_for_gate(&self, die_seed: u64, gate_index: usize) -> f64 {
        let mut rng =
            ChaCha12Rng::seed_from_u64(die_seed ^ (gate_index as u64).wrapping_mul(0x9e37_79b9));
        self.sample_multiplier(&mut rng)
    }

    /// Truncated Gaussian sample via Box–Muller.
    fn sample_gaussian<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        loop {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let d = z * self.sigma;
            if d.abs() <= 3.0 * self.sigma {
                return d;
            }
        }
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipliers_center_near_one() {
        let pv = ProcessVariation::paper_default();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| pv.sample_multiplier(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean multiplier {mean}");
    }

    #[test]
    fn multipliers_spread_with_sigma() {
        let spread = |sigma: f64| {
            let pv = ProcessVariation::new(sigma, 0.0);
            let mut rng = ChaCha12Rng::seed_from_u64(2);
            let n = 10_000;
            let samples: Vec<f64> = (0..n).map(|_| pv.sample_multiplier(&mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt()
        };
        assert!(spread(0.10) > spread(0.02));
        assert_eq!(spread(0.0), 0.0);
    }

    #[test]
    fn per_gate_multiplier_is_frozen() {
        let pv = ProcessVariation::paper_default();
        let a = pv.multiplier_for_gate(99, 7);
        let b = pv.multiplier_for_gate(99, 7);
        assert_eq!(a, b);
        let c = pv.multiplier_for_gate(99, 8);
        assert_ne!(a, c);
        let d = pv.multiplier_for_gate(100, 7);
        assert_ne!(a, d);
    }

    #[test]
    fn aging_slows_everything() {
        let fresh = ProcessVariation::new(0.0, 0.0);
        let aged = ProcessVariation::new(0.0, 0.05);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let f = fresh.sample_multiplier(&mut rng);
        let a = aged.sample_multiplier(&mut rng);
        assert!((f - 1.0).abs() < 1e-12);
        assert!((a - 1.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma out of range")]
    fn oversized_sigma_panics() {
        let _ = ProcessVariation::new(0.3, 0.0);
    }
}
