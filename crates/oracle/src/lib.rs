//! In-order golden-model reference machine for the commit stream.
//!
//! The paper's claim is that violation-aware scheduling tolerates timing
//! violations *without corrupting architectural state* (§3.2–3.3). The
//! cycle-level simulator models faults as timing events; to prove a scheme
//! actually prevents silent data corruption we give every instruction a
//! deterministic *value* semantics and re-execute the committed stream on
//! an independent, trivially-correct in-order machine — the golden model —
//! checking each committed destination value and, at the end of a run, the
//! whole architectural register file.
//!
//! The value semantics ([`value_of`], [`initial_memory_value`]) is shared
//! verbatim by the pipeline's architectural value plane and the golden
//! model here: both are pure functions of the operand values, so any
//! corruption injected into a committed result propagates through
//! dependent instructions and memory on both sides identically — except
//! that the golden machine never corrupts. A single untolerated bit-flip
//! therefore diverges the two machines and stays visible until it is
//! overwritten, which is what gives the oracle its teeth.

use std::fmt;
use std::sync::Arc;

use tv_prng::{fast_map, FastHashMap};
use tv_workloads::riscv::{isa, RiscvProgram};
use tv_workloads::{OpClass, TraceInst};

/// Maximum number of mismatch samples retained for diagnostics.
const MAX_SAMPLES: usize = 8;

/// Deterministic result value of a register-writing (or store-data)
/// operation: a pure function of the op class, the static PC and the two
/// source operand values.
///
/// This is the single value semantics of the synthetic ISA — the pipeline's
/// value plane and the golden model both call it, so they agree exactly on
/// clean executions. The mixing ensures every output bit depends on every
/// input bit, so a corrupted operand yields a (practically always)
/// different result and corruption cannot silently mask itself.
pub fn value_of(op: OpClass, pc: u64, a: u64, b: u64) -> u64 {
    // Per-op salt keeps distinct op classes from colliding on identical
    // operands (e.g. a mul and an add of the same registers).
    let salt = match op {
        OpClass::IntAlu => 1,
        OpClass::IntMul => 2,
        OpClass::IntDiv => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::CondBranch => 6,
        OpClass::Jump => 7,
        OpClass::FpAlu => 8,
        OpClass::FpMul => 9,
    };
    mix(pc ^ salt_mul(salt), a, b)
}

/// Deterministic initial contents of a memory word never written before.
pub fn initial_memory_value(addr: u64) -> u64 {
    mix(0x6d65_6d5f_696e_6974, addr, 0)
}

fn salt_mul(salt: u64) -> u64 {
    salt.wrapping_mul(0x1656_67b1_9e37_79f9)
}

fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ c.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sparse 64-bit word memory with deterministic initial contents.
///
/// Reads of never-written addresses return [`initial_memory_value`]
/// without populating the map, so memory footprint tracks the written
/// working set only.
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    written: FastHashMap<u64, u64>,
}

impl SparseMemory {
    /// An empty memory (every address at its initial value).
    pub fn new() -> Self {
        SparseMemory { written: fast_map() }
    }

    /// The word at `addr`.
    pub fn read(&self, addr: u64) -> u64 {
        self.written
            .get(&addr)
            .copied()
            .unwrap_or_else(|| initial_memory_value(addr))
    }

    /// Stores `value` at `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        self.written.insert(addr, value);
    }

    /// The word at `addr` if it was ever written, without synthesizing an
    /// initial value. RISC-V semantics use this: real memory starts
    /// all-zero, so an unwritten word reads as `0`, not as the synthetic
    /// hash.
    pub fn get(&self, addr: u64) -> Option<u64> {
        self.written.get(&addr).copied()
    }

    /// The written image as sorted `(address, word)` pairs.
    pub fn image(&self) -> Vec<(u64, u64)> {
        let mut image: Vec<(u64, u64)> = self.written.iter().map(|(&a, &w)| (a, w)).collect();
        image.sort_unstable();
        image
    }

    /// Number of distinct addresses written so far.
    pub fn written_words(&self) -> usize {
        self.written.len()
    }
}

/// Architectural effect of one committed instruction, as computed by a
/// [`Semantics`] from the instruction's operand values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitEffect {
    /// The instruction produces this destination (or link) value.
    Value(u64),
    /// The instruction stores `data` at `addr` (word-granular under
    /// RISC-V semantics: sub-word stores arrive pre-merged into their
    /// containing word).
    Store { addr: u64, data: u64 },
    /// No architectural value effect (branches, the halting `ecall`).
    None,
}

/// The value semantics of the simulated ISA.
///
/// The pipeline's value plane and the golden model share one `Semantics`
/// instance, so they agree exactly on clean executions — the plane merely
/// adds the fault model's corruption mask on top. [`Synthetic`]
/// (`Semantics::Synthetic`) is the paper-study hash semantics
/// ([`value_of`]); [`Riscv`](Semantics::Riscv) executes the real RV32I+M
/// instruction at the committed PC.
#[derive(Debug, Clone, Default)]
pub enum Semantics {
    /// Hash-based synthetic values: [`value_of`] over 64-bit operands,
    /// memory with deterministic nonzero initial contents.
    #[default]
    Synthetic,
    /// Real RV32I+M execution of the given program: 32-bit values,
    /// word-granular memory starting all-zero.
    Riscv(Arc<RiscvProgram>),
}

impl Semantics {
    /// Width mask applied to every committed value (and corruption mask).
    pub fn mask(&self) -> u64 {
        match self {
            Semantics::Synthetic => u64::MAX,
            Semantics::Riscv(_) => 0xffff_ffff,
        }
    }

    /// Computes the architectural effect of committing `t` with operand
    /// values `a`/`b` (slot 0 / slot 1) against memory `mem`.
    ///
    /// Addresses are recomputed from the operand values — not taken from
    /// the trace — so a corrupted base register mis-addresses memory on
    /// the corrupted side exactly as real hardware would.
    ///
    /// # Panics
    ///
    /// Panics if a synthetic memory op carries no effective address, or if
    /// a RISC-V commit PC lies outside the program.
    pub fn effect(&self, t: &TraceInst, a: u64, b: u64, mem: &SparseMemory) -> CommitEffect {
        match self {
            Semantics::Synthetic => match t.op {
                OpClass::Load => {
                    let addr = t.mem_addr.expect("load carries an address");
                    CommitEffect::Value(mem.read(addr))
                }
                OpClass::Store => {
                    let addr = t.mem_addr.expect("store carries an address");
                    CommitEffect::Store {
                        addr,
                        data: value_of(OpClass::Store, t.pc, a, b),
                    }
                }
                op if op.writes_register() => CommitEffect::Value(value_of(op, t.pc, a, b)),
                _ => CommitEffect::None,
            },
            Semantics::Riscv(program) => {
                let inst = program
                    .inst_at(t.pc)
                    .expect("riscv commit PC lies inside the program");
                match inst.eval(t.pc as u32, a as u32, b as u32) {
                    isa::Action::Alu(v) => CommitEffect::Value(u64::from(v)),
                    isa::Action::Load { addr, width, signed } => {
                        let word = mem.get(u64::from(isa::word_addr(addr))).unwrap_or(0) as u32;
                        CommitEffect::Value(u64::from(isa::load_from_word(
                            word, addr, width, signed,
                        )))
                    }
                    isa::Action::Store { addr, width, data } => {
                        let wa = isa::word_addr(addr);
                        let old = mem.get(u64::from(wa)).unwrap_or(0) as u32;
                        CommitEffect::Store {
                            addr: u64::from(wa),
                            data: u64::from(isa::store_into_word(old, addr, width, data)),
                        }
                    }
                    isa::Action::Branch { .. } | isa::Action::Halt => CommitEffect::None,
                    // The link value is produced even for `rd = x0` (both
                    // sides then discard the register write identically).
                    isa::Action::Jump { link, .. } => CommitEffect::Value(u64::from(link)),
                }
            }
        }
    }
}

/// The in-order functional reference machine.
///
/// Executes [`TraceInst`]s architecturally: register reads from the
/// 32-entry architectural file (`r0` hard-wired to zero), loads/stores
/// against a [`SparseMemory`], results from [`value_of`]. No pipeline, no
/// renaming, no speculation — each `step` is obviously correct, which is
/// the whole point of a golden model.
#[derive(Debug, Clone)]
pub struct GoldenModel {
    semantics: Semantics,
    regs: [u64; 32],
    mem: SparseMemory,
}

impl Default for GoldenModel {
    fn default() -> Self {
        Self::new()
    }
}

impl GoldenModel {
    /// A reset machine under synthetic semantics: all registers zero,
    /// memory at initial values.
    pub fn new() -> Self {
        Self::with_semantics(Semantics::Synthetic)
    }

    /// A reset machine under the given value semantics.
    pub fn with_semantics(semantics: Semantics) -> Self {
        GoldenModel {
            semantics,
            regs: [0; 32],
            mem: SparseMemory::new(),
        }
    }

    /// Executes one instruction and returns its committed destination
    /// value: `Some` for register-writing ops (even when the destination
    /// is `r0`, whose write is then discarded), `None` for stores and
    /// control transfers.
    ///
    /// # Panics
    ///
    /// Panics if a memory op carries no effective address.
    pub fn step(&mut self, t: &TraceInst) -> Option<u64> {
        let a = t.srcs[0].map_or(0, |r| self.regs[r.index() as usize]);
        let b = t.srcs[1].map_or(0, |r| self.regs[r.index() as usize]);
        let value = match self.semantics.effect(t, a, b, &self.mem) {
            CommitEffect::Value(v) => Some(v),
            CommitEffect::Store { addr, data } => {
                self.mem.write(addr, data);
                None
            }
            CommitEffect::None => None,
        };
        if let (Some(v), Some(d)) = (value, t.dst) {
            if !d.is_zero() {
                self.regs[d.index() as usize] = v;
            }
        }
        value
    }

    /// The architectural register file.
    pub fn regs(&self) -> &[u64; 32] {
        &self.regs
    }

    /// The memory image.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }
}

/// One committed value that disagreed with the golden model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueMismatch {
    /// Dynamic sequence number of the disagreeing commit.
    pub seq: u64,
    /// Static PC of the instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// What the golden model says the commit should have produced.
    pub expected: Option<u64>,
    /// What the pipeline actually committed.
    pub got: Option<u64>,
}

impl fmt::Display for ValueMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn v(x: Option<u64>) -> String {
            x.map_or("none".into(), |x| format!("{x:#x}"))
        }
        write!(
            f,
            "seq={} pc={:#x} op={} expected={} got={}",
            self.seq,
            self.pc,
            self.op,
            v(self.expected),
            v(self.got)
        )
    }
}

/// Verdict of an oracle-checked run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Committed instructions checked against the golden model.
    pub checked: u64,
    /// Commits whose destination value disagreed.
    pub value_mismatches: u64,
    /// Architectural registers whose final value disagreed.
    pub regfile_mismatches: u64,
    /// Up to [`MAX_SAMPLES`] earliest value mismatches, for diagnostics.
    pub first_mismatches: Vec<ValueMismatch>,
}

impl OracleReport {
    /// Whether the run committed oracle-clean architectural state.
    pub fn clean(&self) -> bool {
        self.value_mismatches == 0 && self.regfile_mismatches == 0
    }

    /// One-line diagnostic summary (no commas — CSV-friendly).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} checked; {} value mismatches; {} regfile mismatches",
            self.checked, self.value_mismatches, self.regfile_mismatches
        );
        if let Some(first) = self.first_mismatches.first() {
            s.push_str(&format!("; first {first}"));
        }
        s
    }
}

/// The streaming checker: a [`GoldenModel`] advanced in lock-step with the
/// pipeline's commit stream, counting disagreements.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    model: GoldenModel,
    checked: u64,
    value_mismatches: u64,
    samples: Vec<ValueMismatch>,
}

impl Oracle {
    /// A fresh oracle over a reset golden machine with synthetic
    /// semantics.
    pub fn new() -> Self {
        Self::with_semantics(Semantics::Synthetic)
    }

    /// A fresh oracle over a reset golden machine with the given value
    /// semantics.
    pub fn with_semantics(semantics: Semantics) -> Self {
        Oracle {
            model: GoldenModel::with_semantics(semantics),
            checked: 0,
            value_mismatches: 0,
            samples: Vec::new(),
        }
    }

    /// The golden machine being advanced (for end-state comparisons).
    pub fn model(&self) -> &GoldenModel {
        &self.model
    }

    /// Checks one commit: `committed` is the destination value the pipeline
    /// produced (`None` for stores/branches). Must be called in commit
    /// order — the golden machine advances one instruction per call.
    pub fn observe(&mut self, t: &TraceInst, committed: Option<u64>) {
        let expected = self.model.step(t);
        self.checked += 1;
        if expected != committed {
            self.value_mismatches += 1;
            if self.samples.len() < MAX_SAMPLES {
                self.samples.push(ValueMismatch {
                    seq: t.seq,
                    pc: t.pc,
                    op: t.op,
                    expected,
                    got: committed,
                });
            }
        }
    }

    /// Commits checked so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Final verdict, comparing the pipeline's architectural register file
    /// `committed_regs` against the golden machine's.
    pub fn report(&self, committed_regs: &[u64; 32]) -> OracleReport {
        let regfile_mismatches = self
            .model
            .regs()
            .iter()
            .zip(committed_regs.iter())
            .filter(|(g, c)| g != c)
            .count() as u64;
        OracleReport {
            checked: self.checked,
            value_mismatches: self.value_mismatches,
            regfile_mismatches,
            first_mismatches: self.samples.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_workloads::ArchReg;

    fn alu(seq: u64, pc: u64, dst: u8, srcs: [Option<u8>; 2]) -> TraceInst {
        TraceInst {
            seq,
            pc,
            op: OpClass::IntAlu,
            srcs: srcs.map(|s| s.map(ArchReg::new)),
            dst: Some(ArchReg::new(dst)),
            mem_addr: None,
            taken: None,
            target: None,
            operand_values: [0, 0],
        }
    }

    fn mem(seq: u64, pc: u64, op: OpClass, addr: u64, dst: Option<u8>, src: Option<u8>) -> TraceInst {
        TraceInst {
            seq,
            pc,
            op,
            srcs: [src.map(ArchReg::new), None],
            dst: dst.map(ArchReg::new),
            mem_addr: Some(addr),
            taken: None,
            target: None,
            operand_values: [0, 0],
        }
    }

    #[test]
    fn value_semantics_are_deterministic_and_input_sensitive() {
        let v = value_of(OpClass::IntAlu, 0x1000, 3, 4);
        assert_eq!(v, value_of(OpClass::IntAlu, 0x1000, 3, 4));
        assert_ne!(v, value_of(OpClass::IntAlu, 0x1000, 3, 5));
        assert_ne!(v, value_of(OpClass::IntAlu, 0x1004, 3, 4));
        assert_ne!(v, value_of(OpClass::IntMul, 0x1000, 3, 4));
        assert_eq!(initial_memory_value(64), initial_memory_value(64));
        assert_ne!(initial_memory_value(64), initial_memory_value(72));
    }

    #[test]
    fn golden_model_propagates_through_registers_and_memory() {
        let mut m = GoldenModel::new();
        let v1 = m.step(&alu(0, 0x1000, 1, [None, None])).unwrap();
        assert_eq!(m.regs()[1], v1);
        // r2 = f(r1): depends on the produced value
        let v2 = m.step(&alu(1, 0x1004, 2, [Some(1), None])).unwrap();
        assert_eq!(v2, value_of(OpClass::IntAlu, 0x1004, v1, 0));
        // store r2 to memory, load it back into r3
        assert_eq!(m.step(&mem(2, 0x1008, OpClass::Store, 0x80, None, Some(2))), None);
        let v3 = m.step(&mem(3, 0x100c, OpClass::Load, 0x80, Some(3), None)).unwrap();
        assert_eq!(v3, value_of(OpClass::Store, 0x1008, v2, 0));
        // unwritten memory reads its deterministic initial value
        let v4 = m.step(&mem(4, 0x1010, OpClass::Load, 0x9000, Some(4), None)).unwrap();
        assert_eq!(v4, initial_memory_value(0x9000));
        assert_eq!(m.memory().written_words(), 1);
    }

    #[test]
    fn writes_to_r0_are_discarded() {
        let mut m = GoldenModel::new();
        let v = m.step(&alu(0, 0x1000, 0, [None, None]));
        assert!(v.is_some(), "the op still produces a value");
        assert_eq!(m.regs()[0], 0, "r0 stays hard-wired zero");
    }

    #[test]
    fn oracle_is_clean_on_its_own_stream_and_catches_flips() {
        let insts = [
            alu(0, 0x1000, 1, [None, None]),
            alu(1, 0x1004, 2, [Some(1), None]),
            mem(2, 0x1008, OpClass::Store, 0x40, None, Some(2)),
            mem(3, 0x100c, OpClass::Load, 0x40, Some(3), Some(1)),
            alu(4, 0x1010, 4, [Some(3), Some(2)]),
        ];
        // clean: feed the pipeline-equivalent (a second golden machine)
        let mut pipe = GoldenModel::new();
        let mut oracle = Oracle::new();
        for t in &insts {
            let committed = pipe.step(t);
            oracle.observe(t, committed);
        }
        let report = oracle.report(pipe.regs());
        assert!(report.clean(), "{}", report.summary());
        assert_eq!(report.checked, 5);

        // corrupt: flip one committed value and re-check
        let mut pipe = GoldenModel::new();
        let mut oracle = Oracle::new();
        for t in &insts {
            let mut committed = pipe.step(t);
            if t.seq == 1 {
                committed = committed.map(|v| v ^ 0x100);
                // propagate the corruption architecturally, as the real
                // value plane would
                if let (Some(v), Some(d)) = (committed, t.dst) {
                    pipe.regs[d.index() as usize] = v;
                }
            }
            oracle.observe(t, committed);
        }
        let report = oracle.report(pipe.regs());
        assert!(!report.clean());
        assert!(report.value_mismatches >= 1);
        assert!(report.regfile_mismatches >= 1);
        let first = report.first_mismatches[0];
        assert_eq!(first.seq, 1);
        assert_ne!(first.expected, first.got);
        assert!(report.summary().contains("first seq=1"));
        assert!(!report.summary().contains(','), "summary is CSV-safe");
    }
}
