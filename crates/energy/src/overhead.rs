//! VTE hardware-cost analysis (paper Table 2, §S3).
//!
//! The paper synthesizes the modified scheduler and reports the area,
//! dynamic-power and leakage-power overhead of each scheme relative to the
//! baseline (Error Padding) scheduler, at scheduler level and scaled to
//! core level using the scheduler's share of the core (3.9 % area, 8.9 %
//! dynamic power, 1.2 % leakage).
//!
//! The model here is structural: the baseline scheduler's size is a
//! calibrated constant (matching the scale of the paper's Fabscalar Core-1
//! synthesis), while each scheme's *additions* are computed bottom-up —
//! storage bits for the 4-bit error-prediction field, timestamps and FUSR,
//! grant-qualification gates for FFS, and for CDS the actual gate-level
//! Criticality Detection Logic circuit from [`tv_netlist`].

use tv_netlist::components;
use tv_netlist::SynthReport;

/// Area of one SRAM storage bit in NAND2-equivalents.
const RAM_BIT_AREA: f64 = 0.4;
/// Area of one CAM (searchable) bit in NAND2-equivalents.
const CAM_BIT_AREA: f64 = 1.0;
/// Activity factors used to turn area into relative dynamic power.
const RAM_ACTIVITY: f64 = 0.30;
const CAM_ACTIVITY: f64 = 0.90;
const LOGIC_ACTIVITY: f64 = 0.60;

/// Paper §S3: the scheduler's share of the whole core.
pub const SCHEDULER_CORE_AREA_SHARE: f64 = 0.039;
pub const SCHEDULER_CORE_DYN_SHARE: f64 = 0.089;
pub const SCHEDULER_CORE_LEAK_SHARE: f64 = 0.012;

/// One scheme's overhead relative to the baseline scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerOverhead {
    /// Scheme label ("ABS", "FFS", "CDS").
    pub scheme: &'static str,
    /// Scheduler-level area overhead (fraction).
    pub area: f64,
    /// Scheduler-level dynamic-power overhead (fraction).
    pub dynamic: f64,
    /// Scheduler-level leakage overhead (fraction).
    pub leakage: f64,
}

impl SchedulerOverhead {
    /// Core-level overheads: scheduler-level values scaled by the
    /// scheduler's share of the core (paper §S3).
    pub fn core_level(&self) -> (f64, f64, f64) {
        (
            self.area * SCHEDULER_CORE_AREA_SHARE,
            self.dynamic * SCHEDULER_CORE_DYN_SHARE,
            self.leakage * SCHEDULER_CORE_LEAK_SHARE,
        )
    }
}

/// Structural description of a hardware addition.
#[derive(Debug, Clone, Copy, Default)]
struct Addition {
    ram_bits: f64,
    cam_bits: f64,
    logic_nand2: f64,
}

impl Addition {
    fn area(&self) -> f64 {
        self.ram_bits * RAM_BIT_AREA + self.cam_bits * CAM_BIT_AREA + self.logic_nand2
    }

    fn switched(&self) -> f64 {
        self.ram_bits * RAM_BIT_AREA * RAM_ACTIVITY
            + self.cam_bits * CAM_BIT_AREA * CAM_ACTIVITY
            + self.logic_nand2 * LOGIC_ACTIVITY
    }
}

/// The full Table 2 report.
#[derive(Debug, Clone, PartialEq)]
pub struct VteOverheadReport {
    /// Overheads for ABS, FFS, CDS, in that order.
    pub schemes: Vec<SchedulerOverhead>,
    /// Baseline scheduler area (NAND2-equivalents) the overheads are
    /// normalized to.
    pub baseline_area: f64,
}

impl VteOverheadReport {
    /// Computes the report for a machine with `iq_entries` reservation
    /// stations, `lanes` issue lanes, and CDS criticality threshold storage.
    ///
    /// # Panics
    ///
    /// Panics if `iq_entries` or `lanes` is zero.
    pub fn compute(iq_entries: usize, lanes: usize) -> Self {
        assert!(iq_entries > 0, "need at least one issue-queue entry");
        assert!(lanes > 0, "need at least one lane");
        let n = iq_entries as f64;

        // Baseline scheduler, calibrated to the scale of the paper's
        // synthesized Core-1 scheduler: per entry ~100 bits of payload RAM
        // and 2 × 7-bit source-tag CAM; plus four copies of the select
        // tree and wakeup/bypass control logic.
        let select = SynthReport::characterize(&components::issue_select32(), 0.5, 1.0);
        let baseline = Addition {
            ram_bits: n * 100.0,
            cam_bits: n * 14.0,
            logic_nand2: 4.0 * select.area + 9_800.0,
        };

        // ABS / FFS additions (§3.2): 4-bit error-prediction field per
        // entry, 6-bit modulo-64 timestamp per entry, FUSR (one bit plus a
        // 4-bit completion countdown per lane), and the slot-freeze /
        // delayed-broadcast control logic. FFS adds one grant-qualification
        // gate per entry on top of the identical datapath — the paper
        // reports identical numbers for both ("ABS and FFS utilize the
        // same fundamental logic", §S3).
        let abs_add = Addition {
            ram_bits: n * (4.0 + 6.0),
            cam_bits: 0.0,
            logic_nand2: lanes as f64 * 9.0 + 40.0,
        };
        // The paper reports identical numbers for ABS and FFS ("ABS and
        // FFS utilize the same fundamental logic in scheduling", §S3):
        // the faulty-first grant qualification reuses the ABS datapath.
        let ffs_add = abs_add;

        // CDS additions (§3.5.2): everything FFS has, plus the Criticality
        // Detection Logic (a real gate-level circuit: population counter
        // over the tag-match lines and a CT comparator), a criticality bit
        // per entry, and the threshold register.
        let cdl = SynthReport::characterize(&components::cdl32(), 0.5, 1.0);
        let cds_add = Addition {
            ram_bits: ffs_add.ram_bits + n + 6.0,
            cam_bits: 0.0,
            logic_nand2: ffs_add.logic_nand2 + cdl.area + n * 1.5,
        };

        let overhead = |label: &'static str, add: &Addition| SchedulerOverhead {
            scheme: label,
            area: add.area() / baseline.area(),
            dynamic: add.switched() / baseline.switched(),
            leakage: add.area() / baseline.area(), // leakage tracks area
        };

        VteOverheadReport {
            schemes: vec![
                overhead("ABS", &abs_add),
                overhead("FFS", &ffs_add),
                overhead("CDS", &cds_add),
            ],
            baseline_area: baseline.area(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> VteOverheadReport {
        VteOverheadReport::compute(32, 4)
    }

    #[test]
    fn abs_and_ffs_are_cheap_cds_costs_more() {
        let r = report();
        let [abs, ffs, cds] = [r.schemes[0], r.schemes[1], r.schemes[2]];
        assert_eq!(abs.scheme, "ABS");
        // Paper Table 2 shape: ABS ≈ FFS ≪ CDS.
        assert!((abs.area - ffs.area).abs() < 0.005);
        assert!(cds.area > 3.0 * abs.area);
        assert!(cds.dynamic > abs.dynamic);
        // Magnitudes in the paper's ballpark: ABS area < 3 %, CDS < 15 %.
        assert!(abs.area < 0.03, "ABS area {:.3}", abs.area);
        assert!(cds.area > 0.02 && cds.area < 0.15, "CDS area {:.3}", cds.area);
        assert!(abs.dynamic < 0.03, "ABS dynamic {:.4}", abs.dynamic);
    }

    #[test]
    fn core_level_is_scheduler_share_scaled() {
        let r = report();
        let cds = r.schemes[2];
        let (a, d, l) = cds.core_level();
        assert!((a - cds.area * 0.039).abs() < 1e-12);
        assert!((d - cds.dynamic * 0.089).abs() < 1e-12);
        assert!((l - cds.leakage * 0.012).abs() < 1e-12);
        // Core-level overheads are all well under 1 % (paper: ≤ 0.24 %).
        assert!(a < 0.01 && d < 0.01 && l < 0.01);
    }

    #[test]
    fn baseline_area_is_substantial() {
        let r = report();
        assert!(r.baseline_area > 5_000.0);
    }

    #[test]
    #[should_panic(expected = "at least one issue-queue entry")]
    fn zero_entries_panics() {
        let _ = VteOverheadReport::compute(0, 4);
    }
}
