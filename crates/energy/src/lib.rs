//! Energy, power, and area accounting.
//!
//! The paper gathers energy "by combining architectural usage information
//! with power characteristics from the synthesized hardware" (§4.1) and
//! reports energy efficiency as the energy-delay (ED) product (§5.1). This
//! crate rebuilds that layer:
//!
//! * [`power`] — the per-event energy table (45 nm-class relative values)
//!   and per-cycle leakage of the Core-1-style machine;
//! * [`ed`] — maps a run's [`tv_uarch::stats::Activity`] counters to total
//!   energy, computes ED products, and the (performance %, ED %) overhead
//!   tuples of Table 1 and Figures 5/9;
//! * [`overhead`] — the VTE hardware-cost analysis of Table 2: storage and
//!   logic added to the baseline scheduler by ABS/FFS (timestamps, fault
//!   fields, FUSR) and by CDS (plus the Criticality Detection Logic, whose
//!   area/power come from the actual gate-level [`tv_netlist`] circuit),
//!   scaled to core level with the paper's scheduler share (§S3: the
//!   scheduler is 3.9 % of core area, 8.9 % of dynamic power, 1.2 % of
//!   leakage).

pub mod ed;
pub mod overhead;
pub mod power;

pub use ed::{EnergyBreakdown, OverheadTuple, RunEnergy};
pub use overhead::{SchedulerOverhead, VteOverheadReport};
pub use power::EnergyParams;
