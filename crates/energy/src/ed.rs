//! Run energy and energy-delay accounting.
//!
//! The paper estimates performance with IPC and energy efficiency with the
//! energy-delay product (§5.1), reporting scheme overheads as
//! `(performance %, ED %)` tuples relative to fault-free execution
//! (Table 1) and as relative overheads normalized to the EP baseline
//! (Figures 4/5/8/9). All comparisons run the *same committed instruction
//! stream*, so energy differences come from extra cycles (leakage), extra
//! activity (replayed work, refetches) and the padding machinery — not
//! from the supply-voltage change itself, matching the paper's convention
//! of reporting positive ED degradation for faulty execution.

use tv_uarch::SimStats;

use crate::power::EnergyParams;

/// Energy of one simulation run, split by source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic energy (pJ) from pipeline activity.
    pub dynamic_pj: f64,
    /// Leakage energy (pJ) over the run's cycles.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.leakage_pj
    }
}

/// Energy/delay summary of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEnergy {
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Run length in cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
}

impl RunEnergy {
    /// Computes the energy of `stats` under `params`.
    pub fn from_stats(stats: &SimStats, params: &EnergyParams) -> Self {
        params.validate();
        let a = &stats.activity;
        let dynamic_pj = a.fetch_groups as f64 * params.fetch_group_pj
            + a.decodes as f64 * params.decode_pj
            + a.renames as f64 * params.rename_pj
            + a.dispatches as f64 * params.dispatch_pj
            + a.issues as f64 * params.issue_pj
            + a.regreads as f64 * params.regread_pj
            + a.fu_simple as f64 * params.fu_simple_pj
            + a.fu_complex as f64 * params.fu_complex_pj
            + a.fu_mem as f64 * params.fu_mem_pj
            + a.lsq_searches as f64 * params.lsq_search_pj
            + a.dcache_accesses as f64 * params.dcache_pj
            + a.l2_accesses as f64 * params.l2_pj
            + a.mem_accesses as f64 * params.mem_pj
            + a.broadcasts as f64 * params.broadcast_pj
            + a.retires as f64 * params.retire_pj;
        let leakage_pj = stats.cycles as f64 * params.leakage_pj_per_cycle;
        RunEnergy {
            energy: EnergyBreakdown {
                dynamic_pj,
                leakage_pj,
            },
            cycles: stats.cycles,
            committed: stats.committed,
        }
    }

    /// Energy-delay product (pJ·cycles).
    pub fn ed_product(&self) -> f64 {
        self.energy.total_pj() * self.cycles as f64
    }

    /// Energy per committed instruction (pJ).
    pub fn energy_per_inst(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.energy.total_pj() / self.committed as f64
        }
    }
}

/// A `(performance %, ED %)` overhead tuple as printed in Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadTuple {
    /// Performance degradation in percent (cycle count increase for the
    /// same committed instructions).
    pub perf_pct: f64,
    /// Energy-delay degradation in percent.
    pub ed_pct: f64,
}

impl OverheadTuple {
    /// Overheads of `scheme` relative to `baseline` (fault-free execution
    /// of the same instruction stream).
    ///
    /// # Panics
    ///
    /// Panics if the runs committed different instruction counts — the
    /// comparison would be meaningless.
    pub fn relative_to(scheme: &RunEnergy, baseline: &RunEnergy) -> Self {
        assert_eq!(
            scheme.committed, baseline.committed,
            "overhead comparison requires identical committed work"
        );
        let perf = scheme.cycles as f64 / baseline.cycles as f64 - 1.0;
        let ed = scheme.ed_product() / baseline.ed_product() - 1.0;
        OverheadTuple {
            perf_pct: perf * 100.0,
            ed_pct: ed * 100.0,
        }
    }
}

impl std::fmt::Display for OverheadTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.perf_pct, self.ed_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_timing::Voltage;
    use tv_uarch::{Pipeline, ToleranceMode};
    use tv_workloads::Benchmark;

    fn run(mode: ToleranceMode, vdd: Voltage) -> RunEnergy {
        let stats = Pipeline::builder(Benchmark::Astar, 11)
            .tolerance(mode)
            .voltage(vdd)
            .build()
            .run(20_000);
        RunEnergy::from_stats(&stats, &EnergyParams::core1_45nm())
    }

    #[test]
    fn energy_is_positive_and_split() {
        let e = run(ToleranceMode::FaultFree, Voltage::nominal());
        assert!(e.energy.dynamic_pj > 0.0);
        assert!(e.energy.leakage_pj > 0.0);
        assert!(e.ed_product() > 0.0);
        assert!(e.energy_per_inst() > 0.0);
    }

    #[test]
    fn razor_costs_energy_and_delay() {
        let clean = run(ToleranceMode::FaultFree, Voltage::nominal());
        let razor = run(ToleranceMode::Razor, Voltage::high_fault());
        let o = OverheadTuple::relative_to(&razor, &clean);
        assert!(o.perf_pct > 0.0, "perf overhead {o}");
        assert!(o.ed_pct > o.perf_pct, "ED overhead exceeds perf overhead: {o}");
    }

    #[test]
    fn identical_runs_have_zero_overhead() {
        let a = run(ToleranceMode::FaultFree, Voltage::nominal());
        let o = OverheadTuple::relative_to(&a, &a);
        assert_eq!(o.perf_pct, 0.0);
        assert_eq!(o.ed_pct, 0.0);
        assert_eq!(o.to_string(), "(0.00, 0.00)");
    }

    #[test]
    #[should_panic(expected = "identical committed work")]
    fn mismatched_commits_panic() {
        let a = run(ToleranceMode::FaultFree, Voltage::nominal());
        let mut b = a;
        b.committed += 1;
        let _ = OverheadTuple::relative_to(&a, &b);
    }
}
