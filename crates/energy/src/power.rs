//! Per-event energy parameters.
//!
//! Values are picojoules per event for a 45 nm-class 4-wide core — derived
//! from the usual CACTI/McPAT-style relative weights (array reads scale
//! with port count and size; CAM searches are expensive; off-chip accesses
//! dominate). Absolute calibration is irrelevant for the paper's results,
//! which are all *relative* overheads between schemes running the same
//! instruction stream.

/// Per-event energies (pJ) and per-cycle leakage of the modelled core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// One I-cache fetch group (line read + next-PC logic).
    pub fetch_group_pj: f64,
    /// Decoding one instruction (includes the TEP lookup, which the paper
    /// performs in parallel with decode).
    pub decode_pj: f64,
    /// One rename-table write + free-list pop.
    pub rename_pj: f64,
    /// Dispatch of one instruction (ROB + IQ entry write).
    pub dispatch_pj: f64,
    /// One wakeup/select activation (CAM match + grant).
    pub issue_pj: f64,
    /// One register-file read-port activation (two operands).
    pub regread_pj: f64,
    /// One simple-ALU operation.
    pub fu_simple_pj: f64,
    /// One complex-unit operation (multiply/divide/FP).
    pub fu_complex_pj: f64,
    /// One AGEN + memory-port activation.
    pub fu_mem_pj: f64,
    /// One load/store-queue CAM search.
    pub lsq_search_pj: f64,
    /// One L1 data-cache access.
    pub dcache_pj: f64,
    /// One L2 access.
    pub l2_pj: f64,
    /// One main-memory access (DRAM activate + transfer, on-chip share).
    pub mem_pj: f64,
    /// One result-tag broadcast into the issue queue.
    pub broadcast_pj: f64,
    /// Retiring one instruction (ROB read + architectural update).
    pub retire_pj: f64,
    /// Core leakage per cycle (pJ/cycle).
    pub leakage_pj_per_cycle: f64,
}

impl EnergyParams {
    /// The default 45 nm-class parameter set.
    pub fn core1_45nm() -> Self {
        EnergyParams {
            fetch_group_pj: 18.0,
            decode_pj: 4.0,
            rename_pj: 6.0,
            dispatch_pj: 6.0,
            issue_pj: 11.0,
            regread_pj: 8.0,
            fu_simple_pj: 9.0,
            fu_complex_pj: 28.0,
            fu_mem_pj: 9.0,
            lsq_search_pj: 10.0,
            dcache_pj: 22.0,
            l2_pj: 90.0,
            mem_pj: 260.0,
            broadcast_pj: 7.0,
            retire_pj: 6.0,
            leakage_pj_per_cycle: 32.0,
        }
    }

    /// Validates physical plausibility (all parameters non-negative, the
    /// memory hierarchy ordered L1 < L2 < memory).
    ///
    /// # Panics
    ///
    /// Panics on an implausible parameter set.
    pub fn validate(&self) {
        let all = [
            self.fetch_group_pj,
            self.decode_pj,
            self.rename_pj,
            self.dispatch_pj,
            self.issue_pj,
            self.regread_pj,
            self.fu_simple_pj,
            self.fu_complex_pj,
            self.fu_mem_pj,
            self.lsq_search_pj,
            self.dcache_pj,
            self.l2_pj,
            self.mem_pj,
            self.broadcast_pj,
            self.retire_pj,
            self.leakage_pj_per_cycle,
        ];
        assert!(
            all.iter().all(|&x| x >= 0.0 && x.is_finite()),
            "energies must be finite and non-negative"
        );
        assert!(
            self.dcache_pj < self.l2_pj && self.l2_pj < self.mem_pj,
            "memory-hierarchy energies must be ordered"
        );
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::core1_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        EnergyParams::core1_45nm().validate();
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn inverted_hierarchy_panics() {
        let p = EnergyParams {
            l2_pj: 1.0,
            ..EnergyParams::core1_45nm()
        };
        p.validate();
    }
}
