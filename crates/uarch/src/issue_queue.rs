//! Issue queue (reservation stations) with a broadcast-driven wakeup index.
//!
//! Entries carry the paper's VTE additions (§3.2.1): a faulty bit plus a
//! faulty-stage field (the 4-bit error-prediction field) and the CDL
//! criticality bit — all stored in the [`InFlightInst`] the entry points
//! at. The queue also implements the Criticality Detection Logic's
//! tag-match count (§3.5.2): when a producer broadcasts its result tag,
//! the number of waiting entries matching that tag estimates how many
//! dependents the producer gates. Each waiting *instruction* counts once,
//! even when both of its source operands match the broadcast tag.
//!
//! # Wakeup index
//!
//! The software model used to rescan every resident entry's operands each
//! cycle. This version mirrors the hardware CAM instead: every entry is
//! registered under exactly one *blocking tag* — the unready source with
//! the latest effective broadcast time — in a per-tag waiter list, and a
//! min-heap of pending `(effective cycle, tag)` broadcast events drives
//! wakeup. Each cycle only the due broadcasts fire; their waiters are
//! re-evaluated and either join the ready list or re-register under their
//! next blocking tag. The ready list is revalidated every cycle, because
//! a replay may move an already-fired broadcast *later* (readiness within
//! one broadcast epoch is monotone — the `ReadyBitMonotonic` invariant —
//! which is exactly what makes this lazy revalidation sound: a pending
//! broadcast only slips later, never earlier, so re-arming the heap event
//! at the new effective time never misses a wakeup).
//!
//! The pipeline reports every `RenameTable::set_ready_cycle` call through
//! [`IssueQueue::note_broadcast`]; stale heap events (tag re-allocated,
//! broadcast slipped) are dropped or re-armed when popped.
//!
//! [`InFlightInst`]: crate::inflight::InFlightInst

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::inflight::{Slab, SlotId};
use crate::policy::IssueCandidate;
use crate::rename::RenameTable;

/// Where an entry currently sits in the wakeup index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeState {
    /// Registered in the waiter list of its current blocking tag.
    Waiting(u16),
    /// On the believed-ready list (revalidated every wakeup pass).
    Ready,
}

/// Per-resident-entry wakeup bookkeeping.
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    /// Registration generation: index references left behind by entries
    /// that issued, retired or were squashed carry an older value and are
    /// dropped when next encountered.
    gen: u64,
    /// Position in `entries` (O(1) removal).
    pos: usize,
    /// Consumer dispatch cycle (delayed-broadcast semantics, §3.3.1).
    dispatch: u64,
    /// Renamed source tags captured at dispatch.
    srcs: [Option<u16>; 2],
    state: WakeState,
    /// The selection candidate, materialized once at dispatch — every
    /// field (seq, timestamp, fault/criticality bits, op class) is frozen
    /// by then, so the per-cycle candidate walk never touches the slab.
    cand: IssueCandidate,
}

/// A ready-list member: the slot, its registration generation, and the
/// pre-materialized selection candidate.
#[derive(Debug, Clone, Copy)]
struct ReadyEntry {
    slot: SlotId,
    gen: u64,
    cand: IssueCandidate,
}

/// The issue queue: an unordered pool of dispatched, un-issued entries.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    entries: Vec<SlotId>,
    capacity: usize,
    /// Per-slot registration metadata (`None` = not resident).
    meta: Vec<Option<EntryMeta>>,
    /// Per-tag waiter lists: `(slot, gen)` of entries blocked on the tag.
    waiters: Vec<Vec<(SlotId, u64)>>,
    /// Operand-ready entries awaiting select. Maintained eagerly: issue
    /// and squash remove their entry, and the only event that can revoke
    /// readiness — a producer's broadcast slipping later — demotes through
    /// [`note_delay`](IssueQueue::note_delay). The per-cycle candidate
    /// walk therefore copies this list out without consulting the rename
    /// table at all.
    ready: Vec<ReadyEntry>,
    /// Pending tag-broadcast wakeup events `(effective cycle, tag)`.
    broadcasts: BinaryHeap<Reverse<(u64, u16)>>,
    /// CDL §3.5.2 dependent count per tag, each resident entry counted
    /// once even when both sources match.
    dep_count: Vec<u32>,
    gen: u64,
}

impl IssueQueue {
    /// Creates a queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "issue queue capacity must be positive");
        IssueQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            meta: Vec::new(),
            waiters: Vec::new(),
            ready: Vec::with_capacity(capacity),
            broadcasts: BinaryHeap::with_capacity(4 * capacity),
            dep_count: Vec::new(),
            gen: 0,
        }
    }

    /// Free entries remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the resident slots (residence order, not age order).
    pub fn iter(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.entries.iter().copied()
    }

    /// Grows the per-tag tables to cover `tag`.
    fn ensure_tag(&mut self, tag: u16) {
        let need = tag as usize + 1;
        if self.waiters.len() < need {
            let cap = self.capacity;
            self.waiters.resize_with(need, || Vec::with_capacity(cap));
            self.dep_count.resize(need, 0);
        }
    }

    /// Registers `(slot, gen)` as a waiter on `tag`, compacting stale
    /// references out of the list before it would have to grow.
    fn push_waiter(&mut self, tag: u16, slot: SlotId, gen: u64) {
        self.ensure_tag(tag);
        let meta = &self.meta;
        let list = &mut self.waiters[tag as usize];
        if list.len() == list.capacity() {
            list.retain(|&(s, g)| {
                meta.get(s)
                    .and_then(Option::as_ref)
                    .map_or(false, |m| m.gen == g && m.state == WakeState::Waiting(tag))
            });
        }
        list.push((slot, gen));
    }

    /// The source tag with the latest effective broadcast still after
    /// `now`, if any — the entry's wakeup registration.
    fn blocking_tag(
        rename: &RenameTable,
        srcs: &[Option<u16>; 2],
        dispatch: u64,
        now: u64,
    ) -> Option<u16> {
        let mut best: Option<(u64, u16)> = None;
        for &p in srcs.iter().flatten() {
            let eff = rename.effective_ready_cycle(p, dispatch);
            if eff > now && best.map_or(true, |(b, _)| eff > b) {
                best = Some((eff, p));
            }
        }
        best.map(|(_, p)| p)
    }

    /// Inserts a dispatched instruction, classifying it into the wakeup
    /// index against the current rename state. The instruction's
    /// `dispatch_cycle` and `src_phys` must already be set.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (dispatch must check
    /// [`free`](IssueQueue::free)).
    pub fn push(&mut self, rename: &RenameTable, slab: &Slab, slot: SlotId) {
        assert!(self.entries.len() < self.capacity, "issue queue overflow");
        let inst = slab.get(slot);
        let dispatch = inst.dispatch_cycle;
        let srcs = inst.src_phys;
        self.gen += 1;
        let gen = self.gen;
        if self.meta.len() <= slot {
            self.meta.resize(slot + 1, None);
        }
        for (i, &src) in srcs.iter().enumerate() {
            let Some(p) = src else { continue };
            if p == 0 || (i == 1 && srcs[0] == Some(p)) {
                continue; // r0 never counts; a duplicate operand counts once
            }
            self.ensure_tag(p);
            self.dep_count[p as usize] += 1;
        }
        let cand = Self::candidate(slab, slot);
        let state = match Self::blocking_tag(rename, &srcs, dispatch, dispatch) {
            Some(tag) => {
                self.push_waiter(tag, slot, gen);
                WakeState::Waiting(tag)
            }
            None => {
                self.ready.push(ReadyEntry { slot, gen, cand });
                WakeState::Ready
            }
        };
        let pos = self.entries.len();
        self.entries.push(slot);
        self.meta[slot] = Some(EntryMeta {
            gen,
            pos,
            dispatch,
            srcs,
            state,
            cand,
        });
    }

    /// Records a producer tag broadcast at effective cycle `at` (every
    /// `RenameTable::set_ready_cycle` call must be mirrored here so
    /// waiters are woken).
    ///
    /// Only valid for a *fresh* broadcast — the tag's ready cycle was
    /// `u64::MAX` before the mirrored `set_ready_cycle`, so no resident
    /// entry can already be operand-ready on it. A re-broadcast (replay
    /// slipping a wake later, an instruction re-issuing after recovery)
    /// must go through [`note_delay`](IssueQueue::note_delay) instead,
    /// which also demotes any ready entries the slip invalidated.
    pub fn note_broadcast(&mut self, tag: u16, at: u64) {
        if tag != 0 {
            self.ensure_tag(tag);
            self.broadcasts.push(Reverse((at, tag)));
        }
    }

    /// Records a *re*-broadcast of `tag` at effective cycle `at` and
    /// demotes any ready entries whose operands the slip un-readied.
    ///
    /// The ready list is maintained without per-cycle revalidation on the
    /// strength of a monotonicity argument: once every source's effective
    /// ready cycle is `<= now`, it stays so — `shift_pending_after` only
    /// moves cycles still in the future — *except* when a mirrored
    /// `set_ready_cycle` moves an already-fired broadcast later. This is
    /// that exception's handler; it runs only on replay recoveries, so
    /// the scan over the ready list is off the steady-state path.
    pub fn note_delay(&mut self, rename: &RenameTable, tag: u16, at: u64, now: u64) {
        if tag == 0 {
            return;
        }
        self.ensure_tag(tag);
        self.broadcasts.push(Reverse((at, tag)));
        let mut i = 0;
        while i < self.ready.len() {
            let ReadyEntry { slot, gen, .. } = self.ready[i];
            let m = self.meta[slot].as_ref().expect("ready entries are live");
            debug_assert_eq!(m.gen, gen, "ready entries are current");
            if m.srcs.iter().flatten().all(|&p| p != tag) {
                i += 1;
                continue;
            }
            match Self::blocking_tag(rename, &m.srcs, m.dispatch, now) {
                Some(next) => {
                    self.meta[slot].as_mut().expect("checked").state =
                        WakeState::Waiting(next);
                    self.push_waiter(next, slot, gen);
                    self.ready.swap_remove(i);
                }
                None => i += 1,
            }
        }
    }

    /// Whether `(slot, gen)` still names a live registration in `state`.
    fn is_current(&self, slot: SlotId, gen: u64, state: WakeState) -> bool {
        self.meta
            .get(slot)
            .and_then(Option::as_ref)
            .map_or(false, |m| m.gen == gen && m.state == state)
    }

    /// Wakeup: fires due broadcasts, migrates their waiters, revalidates
    /// the ready list and appends the operand-ready candidates to `out`
    /// (in index order — select policies must order by their own total
    /// key, never by position).
    pub fn collect_candidates(
        &mut self,
        rename: &RenameTable,
        now: u64,
        out: &mut Vec<IssueCandidate>,
    ) {
        // 1. Fire every broadcast event that is due.
        while let Some(&Reverse((t, tag))) = self.broadcasts.peek() {
            if t > now {
                break;
            }
            self.broadcasts.pop();
            let rc = rename.ready_cycle(tag);
            if rc == u64::MAX {
                // Tag re-allocated to a not-yet-issued producer; its own
                // broadcast will arm a fresh event.
                continue;
            }
            // Canonical wakeup time for waiting consumers (all waiters
            // dispatched before `rc`). A replay may have slipped the
            // broadcast later than this event: re-arm, do not fire early.
            let eff = rename.effective_ready_cycle(tag, 0);
            if eff > now {
                self.broadcasts.push(Reverse((eff, tag)));
                continue;
            }
            let mut list = std::mem::take(&mut self.waiters[tag as usize]);
            for &(slot, gen) in &list {
                if !self.is_current(slot, gen, WakeState::Waiting(tag)) {
                    continue; // stale reference
                }
                let m = self.meta[slot].as_ref().expect("checked current");
                let (dispatch, srcs, cand) = (m.dispatch, m.srcs, m.cand);
                match Self::blocking_tag(rename, &srcs, dispatch, now) {
                    Some(next) => {
                        debug_assert_ne!(next, tag, "fired tag cannot still block");
                        self.push_waiter(next, slot, gen);
                        self.meta[slot].as_mut().expect("checked").state =
                            WakeState::Waiting(next);
                    }
                    None => {
                        self.ready.push(ReadyEntry { slot, gen, cand });
                        self.meta[slot].as_mut().expect("checked").state = WakeState::Ready;
                    }
                }
            }
            list.clear();
            // Restore the (empty) list to keep its capacity. Nothing can
            // have re-registered under the fired tag meanwhile.
            debug_assert!(self.waiters[tag as usize].is_empty());
            self.waiters[tag as usize] = list;
        }

        // 2. Emit the ready list. No revalidation: readiness is monotone
        //    under everything except a broadcast slip, and `note_delay`
        //    demoted those entries at the moment the slip happened.
        #[cfg(debug_assertions)]
        for e in &self.ready {
            let m = self.meta[e.slot].as_ref().expect("ready entries are live");
            debug_assert_eq!(m.gen, e.gen);
            debug_assert_eq!(m.state, WakeState::Ready);
            debug_assert_eq!(
                Self::blocking_tag(rename, &m.srcs, m.dispatch, now),
                None,
                "ready entry has an unready operand"
            );
        }
        out.extend(self.ready.iter().map(|e| e.cand));
    }

    /// Reference wakeup: the original full linear scan of every resident
    /// entry's operands. Kept as the behavioural oracle the index is
    /// tested against.
    pub fn candidates_linear(
        &self,
        rename: &RenameTable,
        slab: &Slab,
        now: u64,
        out: &mut Vec<IssueCandidate>,
    ) {
        for &slot in &self.entries {
            let inst = slab.get(slot);
            let ready = inst
                .src_phys
                .iter()
                .flatten()
                .all(|&p| rename.is_ready(p, now, inst.dispatch_cycle));
            if ready {
                out.push(Self::candidate(slab, slot));
            }
        }
    }

    fn candidate(slab: &Slab, slot: SlotId) -> IssueCandidate {
        let inst = slab.get(slot);
        IssueCandidate {
            slot,
            seq: inst.seq(),
            timestamp: inst.timestamp,
            faulty: inst.treated_as_faulty(),
            critical: inst.predicted_critical,
            op: inst.trace.op,
        }
    }

    /// Removes an issued (or squashed) slot; absent slots are a no-op.
    /// Waiter-list references are invalidated lazily by generation; the
    /// ready list is kept exact, so a `Ready` entry pays a short scan of
    /// the (select-width-sized) ready list here.
    pub fn remove(&mut self, slot: SlotId) {
        let Some(m) = self.meta.get_mut(slot).and_then(|o| o.take()) else {
            return;
        };
        if m.state == WakeState::Ready {
            let i = self
                .ready
                .iter()
                .position(|e| e.slot == slot)
                .expect("ready entries are live");
            self.ready.swap_remove(i);
        }
        self.entries.swap_remove(m.pos);
        if let Some(&moved) = self.entries.get(m.pos) {
            self.meta[moved].as_mut().expect("resident entry").pos = m.pos;
        }
        for (i, &src) in m.srcs.iter().enumerate() {
            let Some(p) = src else { continue };
            if p == 0 || (i == 1 && m.srcs[0] == Some(p)) {
                continue;
            }
            self.dep_count[p as usize] -= 1;
        }
    }

    /// Retains only entries satisfying `pred` (squash path).
    pub fn retain<F: FnMut(SlotId) -> bool>(&mut self, mut pred: F) {
        let mut i = 0;
        while i < self.entries.len() {
            let slot = self.entries[i];
            if pred(slot) {
                i += 1;
            } else {
                self.remove(slot); // swap_remove: re-examine index i
            }
        }
    }

    /// Criticality Detection Logic: the number of resident entries with a
    /// source operand matching the broadcast `tag` (paper §3.5.2 — the
    /// tag-match count fed to the encoder and compared against CT). Each
    /// dependent instruction counts once, even when both of its sources
    /// read the tag.
    pub fn count_dependents(&self, tag: u16) -> u32 {
        if tag == 0 {
            return 0;
        }
        self.dep_count.get(tag as usize).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflight::InFlightInst;
    use tv_workloads::{OpClass, TraceInst};

    fn inst(seq: u64, srcs: [Option<u16>; 2]) -> InFlightInst {
        let mut i = InFlightInst::new(TraceInst {
            seq,
            pc: 0x1000,
            op: OpClass::IntAlu,
            srcs: [None, None],
            dst: None,
            mem_addr: None,
            taken: None,
            target: None,
            operand_values: [0, 0],
        });
        i.src_phys = srcs;
        i
    }

    /// A rename table where every register is ready at cycle 0.
    fn ready_rename() -> RenameTable {
        RenameTable::new(64)
    }

    #[test]
    fn push_remove_capacity() {
        let rename = ready_rename();
        let mut slab = Slab::new();
        let a = slab.insert(inst(1, [None, None]));
        let b = slab.insert(inst(2, [None, None]));
        let mut iq = IssueQueue::new(2);
        iq.push(&rename, &slab, a);
        iq.push(&rename, &slab, b);
        assert_eq!(iq.free(), 0);
        assert_eq!(iq.len(), 2);
        iq.remove(a);
        assert_eq!(iq.free(), 1);
        assert_eq!(iq.iter().collect::<Vec<_>>(), vec![b]);
        iq.remove(42); // removing an absent slot is a no-op
        assert_eq!(iq.len(), 1);
        assert!(!iq.is_empty());
    }

    #[test]
    #[should_panic(expected = "issue queue overflow")]
    fn overflow_panics() {
        let rename = ready_rename();
        let mut slab = Slab::new();
        let a = slab.insert(inst(1, [None, None]));
        let b = slab.insert(inst(2, [None, None]));
        let mut iq = IssueQueue::new(1);
        iq.push(&rename, &slab, a);
        iq.push(&rename, &slab, b);
    }

    #[test]
    fn cdl_counts_dependent_instructions_once() {
        // Paper §3.5.2: the CDL counts dependent *instructions* in the
        // reservation stations. Entry `b` reads tag 40 through both
        // sources but is still one dependent.
        let rename = ready_rename();
        let mut slab = Slab::new();
        let a = slab.insert(inst(1, [Some(40), None]));
        let b = slab.insert(inst(2, [Some(40), Some(40)]));
        let c = slab.insert(inst(3, [Some(41), None]));
        let mut iq = IssueQueue::new(8);
        iq.push(&rename, &slab, a);
        iq.push(&rename, &slab, b);
        iq.push(&rename, &slab, c);
        assert_eq!(iq.count_dependents(40), 2, "duplicate operand counts once");
        assert_eq!(iq.count_dependents(41), 1);
        assert_eq!(iq.count_dependents(42), 0);
        assert_eq!(iq.count_dependents(0), 0, "r0 never counts");
    }

    #[test]
    fn cdl_count_drops_entries_that_leave_the_queue() {
        // The CDL tag-match count (§3.5.2) is computed over *resident*
        // entries only: dependents that issue or are squashed must fall
        // out of the count immediately.
        let rename = ready_rename();
        let mut slab = Slab::new();
        let a = slab.insert(inst(1, [Some(50), None]));
        let b = slab.insert(inst(2, [Some(50), None]));
        let c = slab.insert(inst(3, [Some(50), Some(50)]));
        let mut iq = IssueQueue::new(8);
        iq.push(&rename, &slab, a);
        iq.push(&rename, &slab, b);
        iq.push(&rename, &slab, c);
        assert_eq!(iq.count_dependents(50), 3);
        iq.remove(b); // issued
        assert_eq!(iq.count_dependents(50), 2);
        iq.retain(|s| s == a); // squash everything younger than a
        assert_eq!(iq.count_dependents(50), 1);
    }

    #[test]
    fn retain_squashes() {
        let rename = ready_rename();
        let mut slab = Slab::new();
        let slots: Vec<SlotId> = (1..=4)
            .map(|s| slab.insert(inst(s, [None, None])))
            .collect();
        let mut iq = IssueQueue::new(4);
        for &s in &slots {
            iq.push(&rename, &slab, s);
        }
        let keep = &slots[..2];
        iq.retain(|s| keep.contains(&s));
        assert_eq!(iq.len(), 2);
    }

    #[test]
    fn wakeup_index_wakes_on_broadcast() {
        let mut rename = RenameTable::new(64);
        let mut slab = Slab::new();
        let mut iq = IssueQueue::new(8);
        // Producer for tag 40 not issued yet.
        rename.rename_dst(tv_workloads::ArchReg::new(1)); // phys 32
        let waiting = {
            let mut i = inst(1, [Some(32), None]);
            i.dispatch_cycle = 1;
            slab.insert(i)
        };
        iq.push(&rename, &slab, waiting);
        let mut out = Vec::new();
        iq.collect_candidates(&rename, 2, &mut out);
        assert!(out.is_empty(), "producer has not broadcast");
        // Producer broadcasts at cycle 5.
        rename.set_ready_cycle(32, 5, false);
        iq.note_broadcast(32, 5);
        out.clear();
        iq.collect_candidates(&rename, 4, &mut out);
        assert!(out.is_empty(), "broadcast not yet effective");
        out.clear();
        iq.collect_candidates(&rename, 5, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slot, waiting);
    }

    #[test]
    fn wakeup_index_rearms_when_broadcast_slips() {
        // A replay moves a pending broadcast later (monotone within the
        // epoch); the stale heap event must re-arm, not fire early.
        let mut rename = RenameTable::new(64);
        let mut slab = Slab::new();
        let mut iq = IssueQueue::new(8);
        rename.rename_dst(tv_workloads::ArchReg::new(1)); // phys 32
        let waiting = {
            let mut i = inst(1, [Some(32), None]);
            i.dispatch_cycle = 1;
            slab.insert(i)
        };
        iq.push(&rename, &slab, waiting);
        rename.set_ready_cycle(32, 4, false);
        iq.note_broadcast(32, 4);
        // Replay: broadcast slips from 4 to 9.
        rename.set_ready_cycle(32, 9, false);
        iq.note_broadcast(32, 9);
        let mut out = Vec::new();
        iq.collect_candidates(&rename, 4, &mut out);
        assert!(out.is_empty(), "slipped broadcast must not wake at 4");
        out.clear();
        iq.collect_candidates(&rename, 9, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ready_list_revalidates_after_regression() {
        // An entry already woken can regress if a replay moves its
        // source later again; the `note_delay` mirror must demote it.
        let mut rename = RenameTable::new(64);
        let mut slab = Slab::new();
        let mut iq = IssueQueue::new(8);
        rename.rename_dst(tv_workloads::ArchReg::new(1)); // phys 32
        rename.set_ready_cycle(32, 2, false);
        // set_ready_cycle calls are always mirrored by note_broadcast.
        iq.note_broadcast(32, 2);
        let consumer = {
            let mut i = inst(1, [Some(32), None]);
            i.dispatch_cycle = 1;
            slab.insert(i)
        };
        iq.push(&rename, &slab, consumer);
        let mut out = Vec::new();
        iq.collect_candidates(&rename, 2, &mut out);
        assert_eq!(out.len(), 1, "woken at the original broadcast");
        // In-situ replay slips the broadcast to 12: a re-broadcast, so it
        // is mirrored by `note_delay` rather than `note_broadcast`.
        rename.set_ready_cycle(32, 12, false);
        iq.note_delay(&rename, 32, 12, 3);
        out.clear();
        iq.collect_candidates(&rename, 3, &mut out);
        assert!(out.is_empty(), "regressed entry must leave the ready list");
        out.clear();
        iq.collect_candidates(&rename, 12, &mut out);
        assert_eq!(out.len(), 1, "re-woken at the slipped broadcast");
    }

    #[test]
    fn delayed_broadcast_wakes_waiters_one_cycle_late() {
        let mut rename = RenameTable::new(64);
        let mut slab = Slab::new();
        let mut iq = IssueQueue::new(8);
        rename.rename_dst(tv_workloads::ArchReg::new(1)); // phys 32
        let early = {
            let mut i = inst(1, [Some(32), None]);
            i.dispatch_cycle = 1; // dispatched before the broadcast: waits
            slab.insert(i)
        };
        iq.push(&rename, &slab, early);
        // Issue-stage-faulty producer: broadcast at 6, held one cycle.
        rename.set_ready_cycle(32, 6, true);
        iq.note_broadcast(32, 7);
        let mut out = Vec::new();
        iq.collect_candidates(&rename, 6, &mut out);
        assert!(out.is_empty(), "waiting consumer pays the held broadcast");
        // A consumer dispatched after the settled broadcast pays nothing.
        let late = {
            let mut i = inst(2, [Some(32), None]);
            i.dispatch_cycle = 7;
            slab.insert(i)
        };
        iq.push(&rename, &slab, late);
        out.clear();
        iq.collect_candidates(&rename, 7, &mut out);
        let slots: Vec<SlotId> = out.iter().map(|c| c.slot).collect();
        assert!(slots.contains(&early) && slots.contains(&late));
    }

    #[test]
    fn index_matches_linear_scan() {
        // Drive pushes and broadcasts, comparing the index against the
        // linear-scan oracle each cycle.
        let mut rename = RenameTable::new(64);
        let mut slab = Slab::new();
        let mut iq = IssueQueue::new(8);
        for r in 1..=4 {
            rename.rename_dst(tv_workloads::ArchReg::new(r)); // phys 31+r
        }
        let slots: Vec<SlotId> = (0..4u16)
            .map(|k| {
                let mut i = inst(u64::from(k) + 1, [Some(32 + k), Some(32 + (k + 1) % 4)]);
                i.dispatch_cycle = 1;
                slab.insert(i)
            })
            .collect();
        for &s in &slots {
            iq.push(&rename, &slab, s);
        }
        for (k, cycle) in [(0u16, 3u64), (1, 5), (2, 5), (3, 8)] {
            rename.set_ready_cycle(32 + k, cycle, false);
            iq.note_broadcast(32 + k, cycle);
        }
        for now in 1..=9 {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            iq.collect_candidates(&rename, now, &mut fast);
            iq.candidates_linear(&rename, &slab, now, &mut slow);
            fast.sort_by_key(|c| c.slot);
            slow.sort_by_key(|c| c.slot);
            assert_eq!(fast, slow, "cycle {now}");
        }
    }

    #[test]
    fn index_matches_linear_scan_randomized() {
        // Long randomized drive of the full index contract — dispatch,
        // fresh broadcasts (with and without the delayed-broadcast hold),
        // replay slips through `note_delay`, and issue removal — checking
        // the candidate set against the linear-scan oracle every cycle.
        fn next(s: &mut u64) -> u64 {
            // splitmix64: deterministic, no external dependency.
            *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        for trial in 0..24u64 {
            let mut s = 0xdead_beef ^ trial.wrapping_mul(0x1234_5678_9abc_def1);
            let mut rename = RenameTable::new(96);
            let tags: Vec<u16> = (1..=24)
                .map(|r| {
                    rename
                        .rename_dst(tv_workloads::ArchReg::new(r))
                        .expect("free registers available")
                        .new_phys
                })
                .collect();
            let mut slab = Slab::new();
            let mut iq = IssueQueue::new(12);
            let mut seq = 0u64;
            for now in 0..150u64 {
                // Dispatch up to two new consumers of random tags.
                for _ in 0..(next(&mut s) % 3) {
                    if iq.free() == 0 {
                        break;
                    }
                    let mut pick = |s: &mut u64| {
                        if next(s) % 4 == 0 {
                            None
                        } else {
                            Some(tags[(next(s) as usize) % tags.len()])
                        }
                    };
                    seq += 1;
                    let mut i = inst(seq, [pick(&mut s), pick(&mut s)]);
                    i.dispatch_cycle = now;
                    let slot = slab.insert(i);
                    iq.push(&rename, &slab, slot);
                }
                // Fresh broadcast of a not-yet-issued producer; mirror the
                // pipeline's `set_ready_cycle` + `note_broadcast` pairing.
                if next(&mut s) % 2 == 0 {
                    let t = tags[(next(&mut s) as usize) % tags.len()];
                    if rename.ready_cycle(t) == u64::MAX {
                        let wake = now + 1 + next(&mut s) % 6;
                        let delayed = next(&mut s) % 4 == 0;
                        rename.set_ready_cycle(t, wake, delayed);
                        iq.note_broadcast(t, wake + u64::from(delayed));
                    }
                }
                // Replay slip: an already-broadcast producer re-issues and
                // its wake moves — the `note_delay` path.
                if next(&mut s) % 4 == 0 {
                    let t = tags[(next(&mut s) as usize) % tags.len()];
                    if rename.ready_cycle(t) != u64::MAX {
                        let wake = now + 1 + next(&mut s) % 8;
                        rename.set_ready_cycle(t, wake, false);
                        iq.note_delay(&rename, t, wake, now);
                    }
                }
                let mut fast = Vec::new();
                let mut slow = Vec::new();
                iq.collect_candidates(&rename, now, &mut fast);
                iq.candidates_linear(&rename, &slab, now, &mut slow);
                fast.sort_by_key(|c| c.slot);
                slow.sort_by_key(|c| c.slot);
                assert_eq!(fast, slow, "trial {trial}, cycle {now}");
                // Issue (remove) a random ready candidate.
                if !fast.is_empty() && next(&mut s) % 2 == 0 {
                    let victim = fast[(next(&mut s) as usize) % fast.len()].slot;
                    iq.remove(victim);
                    slab.remove(victim);
                }
            }
        }
    }
}
