//! Issue queue (reservation stations).
//!
//! Entries carry the paper's VTE additions (§3.2.1): a faulty bit plus a
//! faulty-stage field (the 4-bit error-prediction field) and the CDL
//! criticality bit — all stored in the [`InFlightInst`] the entry points
//! at. The queue also implements the Criticality Detection Logic's
//! tag-match count (§3.5.2): when a producer broadcasts its result tag,
//! the number of waiting entries matching that tag estimates how many
//! dependents the producer gates.
//!
//! [`InFlightInst`]: crate::inflight::InFlightInst

use crate::inflight::{Slab, SlotId};

/// The issue queue: an unordered pool of dispatched, un-issued entries.
#[derive(Debug, Clone, Default)]
pub struct IssueQueue {
    entries: Vec<SlotId>,
    capacity: usize,
}

impl IssueQueue {
    /// Creates a queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "issue queue capacity must be positive");
        IssueQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Free entries remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a dispatched instruction.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (dispatch must check
    /// [`free`](IssueQueue::free)).
    pub fn push(&mut self, slot: SlotId) {
        assert!(self.entries.len() < self.capacity, "issue queue overflow");
        self.entries.push(slot);
    }

    /// Iterates the resident slots.
    pub fn iter(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.entries.iter().copied()
    }

    /// Removes an issued (or squashed) slot.
    pub fn remove(&mut self, slot: SlotId) {
        if let Some(pos) = self.entries.iter().position(|&s| s == slot) {
            self.entries.swap_remove(pos);
        }
    }

    /// Retains only entries satisfying `pred` (squash path).
    pub fn retain<F: FnMut(SlotId) -> bool>(&mut self, mut pred: F) {
        self.entries.retain_mut(|s| pred(*s));
    }

    /// Criticality Detection Logic: the number of resident entries with a
    /// source operand matching the broadcast `tag` (paper §3.5.2 — the
    /// tag-match count fed to the encoder and compared against CT).
    pub fn count_dependents(&self, slab: &Slab, tag: u16) -> u32 {
        if tag == 0 {
            return 0;
        }
        self.entries
            .iter()
            .map(|&s| {
                let inst = slab.get(s);
                inst.src_phys
                    .iter()
                    .filter(|&&p| p == Some(tag))
                    .count() as u32
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflight::InFlightInst;
    use tv_workloads::{OpClass, TraceInst};

    fn inst(seq: u64, srcs: [Option<u16>; 2]) -> InFlightInst {
        let mut i = InFlightInst::new(TraceInst {
            seq,
            pc: 0x1000,
            op: OpClass::IntAlu,
            srcs: [None, None],
            dst: None,
            mem_addr: None,
            taken: None,
            target: None,
            operand_values: [0, 0],
        });
        i.src_phys = srcs;
        i
    }

    #[test]
    fn push_remove_capacity() {
        let mut iq = IssueQueue::new(2);
        iq.push(5);
        iq.push(9);
        assert_eq!(iq.free(), 0);
        assert_eq!(iq.len(), 2);
        iq.remove(5);
        assert_eq!(iq.free(), 1);
        assert_eq!(iq.iter().collect::<Vec<_>>(), vec![9]);
        iq.remove(42); // removing an absent slot is a no-op
        assert_eq!(iq.len(), 1);
        assert!(!iq.is_empty());
    }

    #[test]
    #[should_panic(expected = "issue queue overflow")]
    fn overflow_panics() {
        let mut iq = IssueQueue::new(1);
        iq.push(0);
        iq.push(1);
    }

    #[test]
    fn cdl_counts_tag_matches() {
        let mut slab = Slab::new();
        let a = slab.insert(inst(1, [Some(40), None]));
        let b = slab.insert(inst(2, [Some(40), Some(40)]));
        let c = slab.insert(inst(3, [Some(41), None]));
        let mut iq = IssueQueue::new(8);
        iq.push(a);
        iq.push(b);
        iq.push(c);
        assert_eq!(iq.count_dependents(&slab, 40), 3);
        assert_eq!(iq.count_dependents(&slab, 41), 1);
        assert_eq!(iq.count_dependents(&slab, 42), 0);
        assert_eq!(iq.count_dependents(&slab, 0), 0, "r0 never counts");
    }

    #[test]
    fn cdl_count_drops_entries_that_leave_the_queue() {
        // The CDL tag-match count (§3.5.2) is computed over *resident*
        // entries only: dependents that issue or are squashed must fall
        // out of the count immediately.
        let mut slab = Slab::new();
        let a = slab.insert(inst(1, [Some(50), None]));
        let b = slab.insert(inst(2, [Some(50), None]));
        let c = slab.insert(inst(3, [Some(50), Some(50)]));
        let mut iq = IssueQueue::new(8);
        iq.push(a);
        iq.push(b);
        iq.push(c);
        assert_eq!(iq.count_dependents(&slab, 50), 4);
        iq.remove(b); // issued
        assert_eq!(iq.count_dependents(&slab, 50), 3);
        iq.retain(|s| s == a); // squash everything younger than a
        assert_eq!(iq.count_dependents(&slab, 50), 1);
    }

    #[test]
    fn retain_squashes() {
        let mut iq = IssueQueue::new(4);
        for s in [1, 2, 3, 4] {
            iq.push(s);
        }
        iq.retain(|s| s <= 2);
        assert_eq!(iq.len(), 2);
    }
}
