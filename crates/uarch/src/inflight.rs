//! In-flight instruction state and the slab that owns it.

use tv_timing::PipeStage;
use tv_workloads::TraceInst;

/// Identifier of an in-flight instruction in the [`Slab`].
pub type SlotId = usize;

/// All per-instruction state carried through the pipeline.
#[derive(Debug, Clone)]
pub struct InFlightInst {
    /// The trace instruction (architectural content).
    pub trace: TraceInst,
    /// Timing-fault verdict from the fault model for this dynamic instance
    /// (`None` after a replay clears it: the replayed instance runs with a
    /// restored guard band, as in Razor).
    pub actual_fault: Option<PipeStage>,
    /// TEP prediction attached at decode.
    pub predicted_fault: Option<PipeStage>,
    /// TEP criticality bit attached at decode (used by CDS).
    pub predicted_critical: bool,
    /// TEP lookup key captured at decode so training hits the same entry.
    pub tep_key: Option<tv_tep::LookupKey>,
    /// Whether fetch detected that the branch predictor disagrees with the
    /// resolved outcome (fetch then blocks until this branch resolves).
    pub branch_mispredicted: bool,
    /// 6-bit modulo-64 dispatch timestamp (the paper's ABS hardware).
    pub timestamp: u8,
    /// Renamed source physical registers.
    pub src_phys: [Option<u16>; 2],
    /// Renamed destination physical register.
    pub dst_phys: Option<u16>,
    /// Previous mapping of the destination architectural register (freed at
    /// retire, restored on squash).
    pub old_phys: Option<u16>,
    /// Whether an in-order stall signal has already been charged for this
    /// instruction (the stage stall applies exactly once).
    pub in_order_charged: bool,
    /// Whether the instruction currently occupies a ROB entry (set at
    /// dispatch; slab removal at retire/squash clears the whole record).
    /// Lets event liveness checks avoid scanning the ROB.
    pub in_rob: bool,
    /// Cycle the instruction was dispatched into the window.
    pub dispatch_cycle: u64,
    /// Cycle the instruction issued (None before issue).
    pub issue_cycle: Option<u64>,
    /// Cycle the instruction finishes writeback and may retire.
    pub complete_cycle: Option<u64>,
    /// Cycle dependents may issue (result broadcast timing).
    pub wake_cycle: Option<u64>,
}

impl InFlightInst {
    /// Wraps a trace instruction as it enters the machine.
    pub fn new(trace: TraceInst) -> Self {
        InFlightInst {
            trace,
            actual_fault: None,
            predicted_fault: None,
            predicted_critical: false,
            tep_key: None,
            branch_mispredicted: false,
            timestamp: 0,
            src_phys: [None, None],
            dst_phys: None,
            old_phys: None,
            in_order_charged: false,
            in_rob: false,
            dispatch_cycle: 0,
            issue_cycle: None,
            complete_cycle: None,
            wake_cycle: None,
        }
    }

    /// Global dynamic sequence number.
    pub fn seq(&self) -> u64 {
        self.trace.seq
    }

    /// Whether the instruction is predicted faulty in `stage`.
    pub fn predicted_faulty_in(&self, stage: PipeStage) -> bool {
        self.predicted_fault == Some(stage)
    }

    /// Whether the paper's VTE treats this instruction as faulty (a
    /// prediction exists for *some* OoO stage).
    pub fn treated_as_faulty(&self) -> bool {
        self.predicted_fault.map(|s| s.is_ooo()).unwrap_or(false)
    }
}

/// Slab storage for in-flight instructions; pipeline structures hold
/// [`SlotId`]s into it.
#[derive(Debug, Default)]
pub struct Slab {
    items: Vec<Option<InFlightInst>>,
    free: Vec<SlotId>,
}

impl Slab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab::default()
    }

    /// Inserts an instruction, returning its slot.
    pub fn insert(&mut self, inst: InFlightInst) -> SlotId {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.items[id].is_none());
                self.items[id] = Some(inst);
                id
            }
            None => {
                self.items.push(Some(inst));
                self.items.len() - 1
            }
        }
    }

    /// Removes and returns the instruction in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (double-free is a pipeline bug).
    pub fn remove(&mut self, slot: SlotId) -> InFlightInst {
        let inst = self.items[slot].take().expect("slot is occupied");
        self.free.push(slot);
        inst
    }

    /// Shared access.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn get(&self, slot: SlotId) -> &InFlightInst {
        self.items[slot].as_ref().expect("slot is occupied")
    }

    /// Exclusive access.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant.
    pub fn get_mut(&mut self, slot: SlotId) -> &mut InFlightInst {
        self.items[slot].as_mut().expect("slot is occupied")
    }

    /// Whether `slot` currently holds a live instruction.
    pub fn contains(&self, slot: SlotId) -> bool {
        self.items.get(slot).map_or(false, Option::is_some)
    }

    /// Number of live instructions.
    pub fn len(&self) -> usize {
        self.items.len() - self.free.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_workloads::{OpClass, TraceInst};

    fn inst(seq: u64) -> InFlightInst {
        InFlightInst::new(TraceInst {
            seq,
            pc: 0x1000 + 4 * seq,
            op: OpClass::IntAlu,
            srcs: [None, None],
            dst: None,
            mem_addr: None,
            taken: None,
            target: None,
            operand_values: [0, 0],
        })
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = Slab::new();
        let a = slab.insert(inst(0));
        let b = slab.insert(inst(1));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).seq(), 0);
        assert_eq!(slab.get(b).seq(), 1);
        let removed = slab.remove(a);
        assert_eq!(removed.seq(), 0);
        assert_eq!(slab.len(), 1);
        // slot reuse
        let c = slab.insert(inst(2));
        assert_eq!(c, a);
        assert!(!slab.is_empty());
    }

    #[test]
    #[should_panic(expected = "slot is occupied")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(inst(0));
        let _ = slab.remove(a);
        let _ = slab.remove(a);
    }

    #[test]
    fn predicted_faulty_helpers() {
        let mut i = inst(3);
        assert!(!i.treated_as_faulty());
        i.predicted_fault = Some(tv_timing::PipeStage::Execute);
        assert!(i.treated_as_faulty());
        assert!(i.predicted_faulty_in(tv_timing::PipeStage::Execute));
        assert!(!i.predicted_faulty_in(tv_timing::PipeStage::Memory));
        i.predicted_fault = Some(tv_timing::PipeStage::Fetch);
        assert!(!i.treated_as_faulty(), "front-end faults are not VTE's job");
    }
}
