//! Reorder buffer: in-order window of dispatched instructions.

use std::collections::VecDeque;

use crate::inflight::SlotId;

/// The reorder buffer holds [`SlotId`]s in dispatch (= program) order.
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<SlotId>,
    capacity: usize,
}

impl Rob {
    /// Creates a ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be positive");
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Free entries remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full (the dispatch stage must check
    /// [`free`](Rob::free) first).
    pub fn push(&mut self, slot: SlotId) {
        assert!(self.entries.len() < self.capacity, "ROB overflow");
        self.entries.push_back(slot);
    }

    /// The head (oldest) entry.
    pub fn head(&self) -> Option<SlotId> {
        self.entries.front().copied()
    }

    /// Pops the head at retire.
    pub fn pop_head(&mut self) -> Option<SlotId> {
        self.entries.pop_front()
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.entries.iter().copied()
    }

    /// The entry at position `idx` (0 = oldest), if any.
    pub fn get(&self, idx: usize) -> Option<SlotId> {
        self.entries.get(idx).copied()
    }

    /// Removes all entries from the tail while `pred` holds, appending
    /// them to `out` youngest first (squash path; the caller provides the
    /// buffer so the hot path allocates nothing).
    pub fn drain_youngest_while_into<F: Fn(SlotId) -> bool>(
        &mut self,
        pred: F,
        out: &mut Vec<SlotId>,
    ) {
        while let Some(&tail) = self.entries.back() {
            if pred(tail) {
                out.push(tail);
                self.entries.pop_back();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        rob.push(10);
        rob.push(11);
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.free(), 2);
        assert_eq!(rob.head(), Some(10));
        assert_eq!(rob.pop_head(), Some(10));
        assert_eq!(rob.head(), Some(11));
        assert!(!rob.is_empty());
    }

    #[test]
    fn drain_youngest() {
        let mut rob = Rob::new(8);
        for s in [1, 2, 3, 4, 5] {
            rob.push(s);
        }
        let mut drained = Vec::new();
        rob.drain_youngest_while_into(|s| s >= 4, &mut drained);
        assert_eq!(drained, vec![5, 4]);
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(rob.get(0), Some(1));
        assert_eq!(rob.get(2), Some(3));
        assert_eq!(rob.get(3), None);
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(0);
        rob.push(1);
    }
}
