//! The pipeline's architectural value plane.
//!
//! When the golden-model oracle is enabled
//! ([`PipelineBuilder::oracle`](crate::PipelineBuilder::oracle)), each
//! committed instruction computes an actual result value at retirement —
//! reading its sources through the *physical* registers its rename
//! carried, so the whole rename/rollback machinery is part of what the
//! oracle cross-checks — and an untolerated violation XORs the fault
//! model's corruption mask into that result before it lands in the
//! register file or memory. Corruption then propagates architecturally
//! through dependents, exactly like real silent data corruption.
//!
//! The value semantics itself is pluggable ([`Semantics`]): synthetic
//! workloads use the hash semantics of [`tv_oracle::value_of`], RISC-V
//! workloads execute the real RV32I+M instruction at the committed PC.
//!
//! Values are computed at *retire* time in commit order, never on the
//! timing path: a dependent may issue speculatively before its producer's
//! violation is even detected, but architectural state only changes at
//! commit, after every replay has re-executed the producer violation-free.
//! The plane is purely observational — enabling it cannot perturb a
//! single cycle of the simulation.

use tv_oracle::{CommitEffect, Oracle, OracleReport, Semantics, SparseMemory};
use tv_workloads::TraceInst;

/// Physical-register-indexed value state plus the streaming oracle.
#[derive(Debug)]
pub(crate) struct ValuePlane {
    /// The shared value semantics (also held by the oracle's golden
    /// machine).
    semantics: Semantics,
    /// Value held by each physical register (entry 0 pinned to zero).
    phys: Vec<u64>,
    /// Architectural register file, updated in commit order.
    arch: [u64; 32],
    /// Data memory image, updated by retiring stores.
    mem: SparseMemory,
    /// The golden machine checking every commit.
    oracle: Oracle,
}

impl ValuePlane {
    /// A reset plane: all registers zero (matching the reset rename map,
    /// where physical `i` holds architectural `r<i>`), memory at its
    /// semantics-defined initial image.
    pub(crate) fn new(phys_regs: usize, semantics: Semantics) -> Self {
        ValuePlane {
            oracle: Oracle::with_semantics(semantics.clone()),
            semantics,
            phys: vec![0; phys_regs],
            arch: [0; 32],
            mem: SparseMemory::new(),
        }
    }

    /// Commits one instruction's value: reads sources from the physical
    /// registers, computes the result (XORing in `corruption` when
    /// nonzero), writes destination register / memory, and feeds the
    /// oracle. Must be called in commit order.
    pub(crate) fn commit(
        &mut self,
        t: &TraceInst,
        src_phys: [Option<u16>; 2],
        dst_phys: Option<u16>,
        corruption: u64,
    ) {
        let mask = self.semantics.mask();
        let a = src_phys[0].map_or(0, |p| self.phys[p as usize]);
        let b = src_phys[1].map_or(0, |p| self.phys[p as usize]);
        let committed = match self.semantics.effect(t, a, b, &self.mem) {
            CommitEffect::Value(v) => Some((v ^ corruption) & mask),
            CommitEffect::Store { addr, data } => {
                self.mem.write(addr, (data ^ corruption) & mask);
                None
            }
            CommitEffect::None => None,
        };
        if let Some(v) = committed {
            if let Some(d) = dst_phys.filter(|&d| d != 0) {
                self.phys[d as usize] = v;
            }
            if let Some(d) = t.dst.filter(|d| !d.is_zero()) {
                self.arch[d.index() as usize] = v;
            }
        }
        self.oracle.observe(t, committed);
    }

    /// The committed architectural register file.
    pub(crate) fn arch_regs(&self) -> &[u64; 32] {
        &self.arch
    }

    /// The committed memory image.
    pub(crate) fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// The oracle's verdict so far, including the architectural register
    /// file comparison.
    pub(crate) fn report(&self) -> OracleReport {
        self.oracle.report(&self.arch)
    }
}
