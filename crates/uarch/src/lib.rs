//! Cycle-level out-of-order pipeline simulator.
//!
//! This crate rebuilds the architectural-simulation substrate of the paper
//! (§4.2): a detailed timing model of a 4-wide out-of-order microprocessor
//! matching the Fabscalar Core-1 configuration — 32-entry issue queue,
//! 96-entry physical register file, 10-stage fetch-to-execute misprediction
//! loop, single-cycle and multi-cycle functional units, and a two-level
//! cache hierarchy (32 KB 4-way split L1 @ 1 cycle, 8 MB 16-way L2 @ 25
//! cycles, memory @ 240 cycles).
//!
//! The pipeline is trace-driven by [`tv_workloads::TraceGenerator`], injects
//! timing faults through [`tv_timing::FaultModel`], predicts them with
//! [`tv_tep::Tep`], and tolerates them under a configurable
//! [`ToleranceMode`]:
//!
//! * [`ToleranceMode::FaultFree`] — golden run, no faults;
//! * [`ToleranceMode::Razor`] — every violation detected in situ and
//!   corrected by instruction replay (flush + refetch);
//! * [`ToleranceMode::ErrorPadding`] — predicted violations stall the whole
//!   pipeline for one cycle (the baseline of [12, 13]);
//! * [`ToleranceMode::ViolationAware`] — the paper's contribution: the
//!   faulty instruction takes one extra cycle in its faulty stage, the
//!   resource it occupies is frozen for one cycle (issue-slot management /
//!   FUSR), and dependents are held back through delayed tag broadcast.
//!
//! Instruction selection priority is pluggable through [`SelectPolicy`];
//! the crate ships the age-based default (ABS), while the faulty-first and
//! criticality-driven policies live in `tv-core` with the rest of the
//! paper's contribution.
//!
//! # Example
//!
//! ```
//! use tv_uarch::{CoreConfig, Pipeline, ToleranceMode};
//! use tv_workloads::Benchmark;
//!
//! let mut pipe = Pipeline::builder(Benchmark::Astar, 42)
//!     .tolerance(ToleranceMode::FaultFree)
//!     .build();
//! let stats = pipe.run(10_000);
//! assert_eq!(stats.committed, 10_000);
//! assert!(stats.ipc() > 0.1);
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod cosim;
pub mod exec;
pub mod inflight;
pub mod issue_queue;
pub mod lsq;
pub mod pipeline;
pub mod policy;
pub mod profile;
pub mod rename;
pub mod rob;
pub mod stats;
mod values;
pub mod watchdog;

pub use config::{CoreConfig, LaneKind, RecoveryModel};
pub use cosim::{CoSim, CoSimError};
pub use inflight::InFlightInst;
pub use pipeline::{Pipeline, PipelineBuilder, ToleranceMode};
pub use tv_audit::{AuditLevel, AuditReport};
pub use tv_oracle::OracleReport;
pub use policy::{mod64_age, AgeBasedSelect, IssueCandidate, SelectPolicy};
pub use stats::SimStats;
pub use watchdog::{RobHeadDump, WatchdogError};
