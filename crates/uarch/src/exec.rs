//! Execution lanes with Functional Unit State Register (FUSR) semantics.
//!
//! Each issue lane owns its register-read port, functional unit and
//! writeback slot. A lane accepts at most one instruction per cycle; the
//! FUSR (paper §3.3.3) is modelled as a per-lane `next_accept` cycle:
//!
//! * single-cycle units accept every cycle;
//! * pipelined multi-cycle units accept every cycle;
//! * unpipelined units (divide) are busy for their full latency;
//! * issuing a *faulty* instruction holds the lane one extra cycle — the
//!   paper's issue-slot freeze / FUSR-bit-off / read-port-block / frozen
//!   writeback-slot, which are all the same "no new input behind the
//!   faulty instruction" rule.

use tv_workloads::OpClass;

use crate::config::{CoreConfig, LaneKind};

/// One execution lane.
#[derive(Debug, Clone, Copy)]
pub struct Lane {
    /// Capability class.
    pub kind: LaneKind,
    /// First cycle at which a new instruction may be issued to this lane.
    next_accept: u64,
}

/// The execution-lane array.
#[derive(Debug, Clone)]
pub struct ExecUnits {
    lanes: Vec<Lane>,
    /// Total extra-cycle lane holds applied for faulty instructions
    /// (slot-freeze events, for the stats).
    pub slot_freezes: u64,
}

impl ExecUnits {
    /// Builds the lane array from the configuration.
    pub fn new(cfg: &CoreConfig) -> Self {
        ExecUnits {
            lanes: cfg
                .lanes
                .iter()
                .map(|&kind| Lane {
                    kind,
                    next_accept: 0,
                })
                .collect(),
            slot_freezes: 0,
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether there are no lanes (never true for a valid config).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Finds a lane able to accept `op` at `cycle`, preferring earlier
    /// lanes (selection order). `blocked` marks lanes already claimed this
    /// cycle.
    pub fn find_lane(&self, op: OpClass, cycle: u64, blocked: &[bool]) -> Option<usize> {
        self.lanes.iter().enumerate().position(|(i, lane)| {
            !blocked[i] && lane.kind.accepts(op) && lane.next_accept <= cycle
        })
    }

    /// Issues `op` to `lane` at `cycle`.
    ///
    /// `unpipelined_busy` is the number of cycles an unpipelined unit stays
    /// busy (0 for pipelined/single-cycle ops); `faulty_hold` adds the
    /// paper's one-cycle freeze behind a faulty instruction.
    ///
    /// # Panics
    ///
    /// Panics if the lane cannot accept the instruction at `cycle` (the
    /// caller must use [`find_lane`](Self::find_lane) first).
    pub fn occupy(&mut self, lane: usize, cycle: u64, unpipelined_busy: u64, faulty_hold: bool) {
        let l = &mut self.lanes[lane];
        assert!(l.next_accept <= cycle, "lane is busy");
        let mut next = cycle + 1 + unpipelined_busy;
        if faulty_hold {
            next += 1;
            self.slot_freezes += 1;
        }
        l.next_accept = next;
    }

    /// Freezes `lane` through cycle `until` (inclusive) — used by the EP
    /// scheme's global stall and by writeback-slot recirculation.
    pub fn freeze_until(&mut self, lane: usize, until: u64) {
        let l = &mut self.lanes[lane];
        l.next_accept = l.next_accept.max(until + 1);
    }

    /// The lane's capability class.
    pub fn kind(&self, lane: usize) -> LaneKind {
        self.lanes[lane].kind
    }

    /// Pushes every pending lane release one cycle later (whole-pipeline
    /// recirculation stall).
    pub fn shift_pending_after(&mut self, now: u64, delta: u64) {
        for lane in &mut self.lanes {
            if lane.next_accept > now {
                lane.next_accept += delta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units() -> ExecUnits {
        ExecUnits::new(&CoreConfig::core1())
    }

    #[test]
    fn find_prefers_first_capable_free_lane() {
        let u = units();
        let blocked = vec![false; u.len()];
        // IntAlu fits lanes 0 and 1; lane 0 preferred.
        assert_eq!(u.find_lane(OpClass::IntAlu, 0, &blocked), Some(0));
        assert_eq!(u.find_lane(OpClass::Load, 0, &blocked), Some(3));
        assert_eq!(u.find_lane(OpClass::IntMul, 0, &blocked), Some(2));
    }

    #[test]
    fn blocked_lanes_are_skipped() {
        let u = units();
        let mut blocked = vec![false; u.len()];
        blocked[0] = true;
        assert_eq!(u.find_lane(OpClass::IntAlu, 0, &blocked), Some(1));
        blocked[1] = true;
        assert_eq!(u.find_lane(OpClass::IntAlu, 0, &blocked), None);
    }

    #[test]
    fn pipelined_lane_accepts_next_cycle() {
        let mut u = units();
        let blocked = vec![false; u.len()];
        u.occupy(2, 10, 0, false); // pipelined mul
        assert_eq!(u.find_lane(OpClass::IntMul, 10, &blocked), None);
        assert_eq!(u.find_lane(OpClass::IntMul, 11, &blocked), Some(2));
    }

    #[test]
    fn unpipelined_divide_blocks_lane() {
        let mut u = units();
        let blocked = vec![false; u.len()];
        u.occupy(2, 10, 11, false); // div: busy 12 cycles total
        assert_eq!(u.find_lane(OpClass::IntMul, 21, &blocked), None);
        assert_eq!(u.find_lane(OpClass::IntMul, 22, &blocked), Some(2));
    }

    #[test]
    fn faulty_hold_freezes_one_extra_cycle() {
        let mut u = units();
        let blocked = vec![false; u.len()];
        u.occupy(0, 5, 0, true);
        assert_eq!(u.slot_freezes, 1);
        // normally free at 6; frozen through 6, free at 7
        assert_eq!(u.find_lane(OpClass::IntAlu, 6, &blocked), Some(1));
        blocked.clone(); // silence lint about immutability patterns
        let b2 = vec![true, true, false, false];
        assert_eq!(u.find_lane(OpClass::IntAlu, 6, &b2), None);
        let b3 = vec![false; 4];
        assert_eq!(u.find_lane(OpClass::IntAlu, 7, &b3), Some(0));
    }

    #[test]
    fn freeze_until_extends_hold() {
        let mut u = units();
        u.freeze_until(3, 20);
        let blocked = vec![false; u.len()];
        assert_eq!(u.find_lane(OpClass::Load, 20, &blocked), None);
        assert_eq!(u.find_lane(OpClass::Load, 21, &blocked), Some(3));
        assert_eq!(u.kind(3), LaneKind::Mem);
    }

    #[test]
    #[should_panic(expected = "lane is busy")]
    fn double_occupy_panics() {
        let mut u = units();
        u.occupy(0, 5, 0, false);
        u.occupy(0, 5, 0, false);
    }
}
