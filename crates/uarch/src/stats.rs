//! Simulation statistics and activity counters.

use tv_timing::PipeStage;

/// Per-structure activity counts consumed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Fetch groups formed (I-cache reads).
    pub fetch_groups: u64,
    /// Instructions fetched.
    pub fetches: u64,
    /// Instructions decoded (TEP lookups ride along).
    pub decodes: u64,
    /// Destination renames performed.
    pub renames: u64,
    /// Instructions dispatched into the window.
    pub dispatches: u64,
    /// Instructions issued (wakeup/select activations).
    pub issues: u64,
    /// Register-read port activations.
    pub regreads: u64,
    /// Simple-ALU executions.
    pub fu_simple: u64,
    /// Complex-unit executions (mul/div/FP).
    pub fu_complex: u64,
    /// Memory-port executions (AGEN + access).
    pub fu_mem: u64,
    /// Load/store-queue CAM searches.
    pub lsq_searches: u64,
    /// L1 data-cache accesses.
    pub dcache_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// Main-memory accesses.
    pub mem_accesses: u64,
    /// Result-tag broadcasts into the issue queue.
    pub broadcasts: u64,
    /// Instructions retired.
    pub retires: u64,
    /// Cycles fetch idled waiting for a mispredicted branch to resolve.
    pub fetch_blocked_cycles: u64,
    /// Cycles fetch idled on redirect/replay stall.
    pub fetch_stall_cycles: u64,
    /// Cycles fetch idled because the fetch buffer was full.
    pub fetch_full_cycles: u64,
    /// Issued work thrown away by replay squashes (re-executed later).
    pub wasted_issues: u64,
}

/// Top-level simulation statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Scheme label (filled by the experiment driver).
    pub label: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions fetched (including refetches after squashes).
    pub fetched: u64,
    /// Instructions squashed by replays.
    pub squashed: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted branches (detected at fetch against the trace).
    pub branch_mispredicts: u64,
    /// Timing violations that actually occurred, by pipe stage.
    pub faults_by_stage: [u64; 10],
    /// Violations predicted by the TEP ahead of time (tolerated in place).
    pub faults_predicted: u64,
    /// Violations without early prediction (corrected by replay).
    pub faults_unpredicted: u64,
    /// Predicted-faulty instructions that completed cleanly (harmless
    /// padding; the cost of a stale predictor entry).
    pub false_positives: u64,
    /// Replay recoveries triggered.
    pub replays: u64,
    /// Violations that survived to retirement uncorrected — nonzero only
    /// under the NoTolerance control mode (or a tolerance escape bug).
    pub untolerated_faults: u64,
    /// Whole-pipeline stall cycles inserted by the EP scheme.
    pub ep_stall_cycles: u64,
    /// Whole-pipeline recovery bubbles inserted by in-situ replays.
    pub recovery_stall_cycles: u64,
    /// Stall signals raised for predicted in-order-engine faults (§2.2).
    pub in_order_stalls: u64,
    /// Issue-slot freezes applied by the VTE (one extra-cycle hold each).
    pub slot_freezes: u64,
    /// L1-D miss rate observed.
    pub l1d_miss_rate: f64,
    /// L2 miss rate observed.
    pub l2_miss_rate: f64,
    /// Activity counters for the energy model.
    pub activity: Activity,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.cycles as f64 / self.committed as f64
        }
    }

    /// Total timing violations that occurred.
    pub fn faults_total(&self) -> u64 {
        self.faults_by_stage.iter().sum()
    }

    /// Observed fault rate: violations per committed instruction.
    pub fn fault_rate(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.faults_total() as f64 / self.committed as f64
        }
    }

    /// Records one occurred fault.
    pub fn record_fault(&mut self, stage: PipeStage, predicted: bool) {
        let idx = PipeStage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage is in ALL");
        self.faults_by_stage[idx] += 1;
        if predicted {
            self.faults_predicted += 1;
        } else {
            self.faults_unpredicted += 1;
        }
    }

    /// Faults that occurred in `stage`.
    pub fn faults_in(&self, stage: PipeStage) -> u64 {
        let idx = PipeStage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage is in ALL");
        self.faults_by_stage[idx]
    }

    /// Branch misprediction rate per committed branch.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.fault_rate(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }

    #[test]
    fn fault_recording() {
        let mut s = SimStats::default();
        s.committed = 100;
        s.record_fault(PipeStage::Issue, true);
        s.record_fault(PipeStage::Issue, false);
        s.record_fault(PipeStage::Memory, true);
        assert_eq!(s.faults_total(), 3);
        assert_eq!(s.faults_in(PipeStage::Issue), 2);
        assert_eq!(s.faults_in(PipeStage::Memory), 1);
        assert_eq!(s.faults_predicted, 2);
        assert_eq!(s.faults_unpredicted, 1);
        assert!((s.fault_rate() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn ipc_cpi_inverse() {
        let s = SimStats {
            cycles: 200,
            committed: 100,
            ..SimStats::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.cpi() - 2.0).abs() < 1e-12);
    }
}
