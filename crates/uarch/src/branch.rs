//! Branch prediction: Alpha-21264-style tournament predictor plus BTB.
//!
//! Three direction components cover the three behaviours synthetic (and
//! real) branches exhibit:
//!
//! * **bimodal** (per-PC 2-bit counters) — tracks bias, immune to history
//!   pollution from data-dependent branches;
//! * **gshare** (global history ⊕ PC) — captures correlation with the path;
//! * **local** (per-branch history → pattern table) — captures each
//!   branch's own repeating pattern (loop trip counts, periodic if-skips)
//!   independent of path noise.
//!
//! A per-PC chooser picks bimodal vs gshare; a second per-PC chooser picks
//! that winner vs the local component.

/// Tournament direction predictor with a branch target buffer.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// Bimodal 2-bit counters, PC-indexed.
    bimodal: Vec<u8>,
    /// Gshare 2-bit counters, (PC ⊕ global history)-indexed.
    gshare: Vec<u8>,
    /// Chooser between bimodal and gshare, PC-indexed (≥2 favours gshare).
    chooser_global: Vec<u8>,
    /// Per-branch local history registers, PC-indexed.
    local_hist: Vec<u32>,
    /// Local pattern table, (local history ⊕ PC hash)-indexed.
    local_pht: Vec<u8>,
    /// Chooser between the global winner and the local component,
    /// PC-indexed (≥2 favours local).
    chooser_local: Vec<u8>,
    /// Global history register.
    history: u64,
    history_bits: u32,
    local_bits: u32,
    /// BTB: (tag, target) per set.
    btb: Vec<Option<(u64, u64)>>,
}

/// A branch prediction: direction and target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPrediction {
    /// Predicted taken?
    pub taken: bool,
    /// Predicted target (None = BTB miss; a predicted-taken branch without
    /// a target behaves as a misprediction).
    pub target: Option<u64>,
}

impl BranchPredictor {
    /// Creates a predictor with `pht_entries` counters per table (power of
    /// two) and a BTB of `btb_entries` (power of two).
    ///
    /// # Panics
    ///
    /// Panics if either size is not a power of two.
    pub fn new(pht_entries: usize, history_bits: u32, btb_entries: usize) -> Self {
        assert!(pht_entries.is_power_of_two(), "PHT size must be a power of two");
        assert!(btb_entries.is_power_of_two(), "BTB size must be a power of two");
        BranchPredictor {
            bimodal: vec![2; pht_entries],
            gshare: vec![2; pht_entries],
            chooser_global: vec![1; pht_entries], // weakly favour bimodal
            local_hist: vec![0; pht_entries],
            local_pht: vec![2; pht_entries],
            chooser_local: vec![1; pht_entries], // weakly favour global
            history: 0,
            history_bits,
            local_bits: 14,
            btb: vec![None; btb_entries],
        }
    }

    /// Default geometry: 16 K entries per table, 12 bits of global and
    /// 14 bits of local history, 4 K-entry BTB.
    pub fn default_geometry() -> Self {
        Self::new(16384, 12, 4096)
    }

    fn pc_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.bimodal.len() - 1)
    }

    fn gshare_index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ h) as usize) & (self.gshare.len() - 1)
    }

    fn local_index(&self, pc: u64) -> usize {
        let h = self.local_hist[self.pc_index(pc)] & ((1 << self.local_bits) - 1);
        ((h as u64 ^ (pc >> 2).wrapping_mul(0x9e37)) as usize) & (self.local_pht.len() - 1)
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.btb.len() - 1)
    }

    fn direction(&self, pc: u64) -> bool {
        let pci = self.pc_index(pc);
        let bi = self.bimodal[pci] >= 2;
        let gs = self.gshare[self.gshare_index(pc)] >= 2;
        let global = if self.chooser_global[pci] >= 2 { gs } else { bi };
        let local = self.local_pht[self.local_index(pc)] >= 2;
        if self.chooser_local[pci] >= 2 {
            local
        } else {
            global
        }
    }

    /// Predicts a conditional branch at `pc`.
    pub fn predict_cond(&self, pc: u64) -> BranchPrediction {
        let taken = self.direction(pc);
        let target = self.btb[self.btb_index(pc)].and_then(|(tag, tgt)| (tag == pc).then_some(tgt));
        BranchPrediction { taken, target }
    }

    /// Predicts an unconditional jump at `pc` (direction is always taken;
    /// only the target can miss).
    pub fn predict_jump(&self, pc: u64) -> BranchPrediction {
        let target = self.btb[self.btb_index(pc)].and_then(|(tag, tgt)| (tag == pc).then_some(tgt));
        BranchPrediction {
            taken: true,
            target,
        }
    }

    /// Trains with the resolved outcome and updates the histories.
    pub fn update(&mut self, pc: u64, taken: bool, target: Option<u64>) {
        let pci = self.pc_index(pc);
        let gsi = self.gshare_index(pc);
        let loi = self.local_index(pc);

        let bi_correct = (self.bimodal[pci] >= 2) == taken;
        let gs_correct = (self.gshare[gsi] >= 2) == taken;
        let global_correct = if self.chooser_global[pci] >= 2 {
            gs_correct
        } else {
            bi_correct
        };
        let lo_correct = (self.local_pht[loi] >= 2) == taken;

        if bi_correct != gs_correct {
            let c = &mut self.chooser_global[pci];
            if gs_correct {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        if lo_correct != global_correct {
            let c = &mut self.chooser_local[pci];
            if lo_correct {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        for counter in [
            &mut self.bimodal[pci],
            &mut self.gshare[gsi],
            &mut self.local_pht[loi],
        ] {
            if taken {
                *counter = (*counter + 1).min(3);
            } else {
                *counter = counter.saturating_sub(1);
            }
        }
        self.history = (self.history << 1) | taken as u64;
        self.local_hist[pci] = (self.local_hist[pci] << 1) | taken as u32;
        if taken {
            if let Some(t) = target {
                let bidx = self.btb_index(pc);
                self.btb[bidx] = Some((pc, t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut bp = BranchPredictor::default_geometry();
        for _ in 0..16 {
            bp.update(0x1000, true, Some(0x2000));
        }
        let p = bp.predict_cond(0x1000);
        assert!(p.taken);
        assert_eq!(p.target, Some(0x2000));
    }

    #[test]
    fn learns_not_taken() {
        let mut bp = BranchPredictor::default_geometry();
        for _ in 0..16 {
            bp.update(0x1004, false, None);
        }
        assert!(!bp.predict_cond(0x1004).taken);
    }

    #[test]
    fn btb_miss_gives_no_target() {
        let bp = BranchPredictor::default_geometry();
        assert_eq!(bp.predict_jump(0x5555_0000).target, None);
    }

    #[test]
    fn learns_periodic_pattern_via_local_history() {
        // A period-7 pattern (6 taken, 1 not-taken — a trip-count-7 loop
        // back-edge) must be learned almost perfectly by the local side,
        // regardless of what the global history contains.
        let mut bp = BranchPredictor::default_geometry();
        let mut correct = 0;
        let total = 2_000;
        for i in 0..total {
            let actual = i % 7 != 6;
            // pollute global history with a pseudo-random other branch
            bp.update(0x9000, (i * 2654435761u64) % 3 == 0, Some(0x9100));
            let p = bp.predict_cond(0x2000);
            if i >= 500 && p.taken == actual {
                correct += 1;
            }
            bp.update(0x2000, actual, Some(0x3000));
        }
        let acc = correct as f64 / (total - 500) as f64;
        assert!(acc > 0.95, "local pattern accuracy {acc}");
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut bp = BranchPredictor::new(4096, 10, 256);
        let mut correct = 0;
        let total = 400;
        for i in 0..total {
            let actual = i % 2 == 0;
            let p = bp.predict_cond(0x2000);
            if i >= 100 && p.taken == actual {
                correct += 1;
            }
            bp.update(0x2000, actual, Some(0x3000));
        }
        assert!(
            correct as f64 / (total - 100) as f64 > 0.9,
            "should learn a period-2 pattern, got {correct}/300"
        );
    }

    #[test]
    fn biased_random_branch_tracks_bias() {
        // A Bernoulli(0.85) branch must be predicted taken (≈85 % correct),
        // not degraded by history pollution.
        let mut bp = BranchPredictor::new(4096, 10, 256);
        let mut x: u64 = 0x12345;
        let mut correct = 0;
        let total = 4000;
        for i in 0..total {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let actual = (x % 100) < 85;
            let p = bp.predict_cond(0x4000);
            if i >= 500 && p.taken == actual {
                correct += 1;
            }
            bp.update(0x4000, actual, Some(0x5000));
        }
        let acc = correct as f64 / (total - 500) as f64;
        assert!(acc > 0.75, "bias-tracking accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = BranchPredictor::new(1000, 10, 256);
    }
}
