//! Register renaming: architectural→physical map table plus free list.
//!
//! Physical register 0 is pinned to architectural `r0` (hard-wired zero)
//! and is always ready. Recovery from a replay squash walks the squashed
//! instructions youngest-first, restoring each destination's previous
//! mapping — the standard ROB-walk recovery.

use std::collections::VecDeque;

use tv_workloads::ArchReg;

/// Rename result for one destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Renamed {
    /// Newly allocated physical register.
    pub new_phys: u16,
    /// Previous mapping of the architectural destination.
    pub old_phys: u16,
}

/// The rename table and physical-register state.
#[derive(Debug, Clone)]
pub struct RenameTable {
    rat: [u16; 32],
    free: VecDeque<u16>,
    /// Cycle at which each physical register's value becomes available to
    /// consumers (u64::MAX = producer not yet issued).
    ready_cycle: Vec<u64>,
    /// Whether the producer's tag broadcast was held for an extra cycle by
    /// an issue-stage fault: consumers already waiting in the issue queue
    /// wake one cycle late, while consumers dispatched after the broadcast
    /// read the settled ready bit and pay nothing (paper §3.3.1).
    delayed_broadcast: Vec<bool>,
    /// Broadcast epoch per physical register, bumped on every allocation,
    /// broadcast, rollback and free. Within one epoch a register's
    /// readiness is monotone — the invariant the auditor checks.
    epoch: Vec<u64>,
}

impl RenameTable {
    /// Creates a table with `phys_regs` physical registers.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs < 33`.
    pub fn new(phys_regs: usize) -> Self {
        assert!(phys_regs >= 33, "need at least 33 physical registers");
        let mut rat = [0u16; 32];
        for (i, slot) in rat.iter_mut().enumerate() {
            *slot = i as u16;
        }
        RenameTable {
            rat,
            free: (32..phys_regs as u16).collect(),
            ready_cycle: vec![0; phys_regs],
            delayed_broadcast: vec![false; phys_regs],
            epoch: vec![0; phys_regs],
        }
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Current physical mapping of `reg`.
    pub fn lookup(&self, reg: ArchReg) -> u16 {
        self.rat[reg.index() as usize]
    }

    /// Renames a destination register, allocating a fresh physical register.
    /// Returns `None` if the free list is empty (rename must stall).
    ///
    /// Writing `r0` never allocates: the zero register is not renamed.
    pub fn rename_dst(&mut self, reg: ArchReg) -> Option<Renamed> {
        if reg.is_zero() {
            return Some(Renamed {
                new_phys: 0,
                old_phys: 0,
            });
        }
        let new_phys = self.free.pop_front()?;
        let old_phys = self.rat[reg.index() as usize];
        self.rat[reg.index() as usize] = new_phys;
        self.ready_cycle[new_phys as usize] = u64::MAX;
        self.delayed_broadcast[new_phys as usize] = false;
        self.epoch[new_phys as usize] += 1;
        Some(Renamed { new_phys, old_phys })
    }

    /// Frees the *previous* mapping at retire.
    pub fn retire_free(&mut self, old_phys: u16) {
        if old_phys != 0 {
            self.free.push_back(old_phys);
            self.epoch[old_phys as usize] += 1;
        }
    }

    /// Rolls back one squashed rename (call youngest-first).
    pub fn rollback(&mut self, reg: ArchReg, renamed: Renamed) {
        if reg.is_zero() {
            return;
        }
        debug_assert_eq!(self.rat[reg.index() as usize], renamed.new_phys);
        self.rat[reg.index() as usize] = renamed.old_phys;
        self.free.push_front(renamed.new_phys);
        self.epoch[renamed.new_phys as usize] += 1;
    }

    /// Marks `phys` ready at `cycle` (producer issued; broadcast timing).
    /// `delayed_broadcast` marks an issue-stage-faulty producer whose tag
    /// broadcast is held one extra cycle for waiting consumers.
    pub fn set_ready_cycle(&mut self, phys: u16, cycle: u64, delayed_broadcast: bool) {
        if phys != 0 {
            self.ready_cycle[phys as usize] = cycle;
            self.delayed_broadcast[phys as usize] = delayed_broadcast;
            self.epoch[phys as usize] += 1;
        }
    }

    /// The cycle `phys` becomes available (0 for r0 / retired values).
    pub fn ready_cycle(&self, phys: u16) -> u64 {
        self.ready_cycle[phys as usize]
    }

    /// Whether `phys` is available at `cycle` to a consumer dispatched at
    /// `consumer_dispatch`. A consumer that was already waiting when a
    /// delayed broadcast fired wakes one cycle late; one dispatched after
    /// the (settled) broadcast does not.
    pub fn is_ready(&self, phys: u16, cycle: u64, consumer_dispatch: u64) -> bool {
        self.effective_ready_cycle(phys, consumer_dispatch) <= cycle
    }

    /// The cycle at which `phys` becomes visible to a consumer dispatched
    /// at `consumer_dispatch` — the effective broadcast time that
    /// [`is_ready`](RenameTable::is_ready) compares against
    /// (`u64::MAX` while the producer has not issued).
    pub fn effective_ready_cycle(&self, phys: u16, consumer_dispatch: u64) -> u64 {
        let rc = self.ready_cycle[phys as usize];
        if self.delayed_broadcast[phys as usize] && consumer_dispatch < rc {
            rc.saturating_add(1)
        } else {
            rc
        }
    }

    /// Per-register `(broadcast_epoch, ready_cycle)` pairs for the
    /// auditor's monotonicity check.
    pub fn audit_phys(&self) -> Vec<(u64, u64)> {
        self.epoch
            .iter()
            .zip(self.ready_cycle.iter())
            .map(|(&e, &r)| (e, r))
            .collect()
    }

    /// Pushes every still-pending readiness `delta` cycles later (a whole-
    /// pipeline recirculation stall: in-flight results slip with the
    /// machine; a coalesced run of `delta` back-to-back stall cycles
    /// shifts identically to `delta` single-cycle calls).
    pub fn shift_pending_after(&mut self, now: u64, delta: u64) {
        for rc in &mut self.ready_cycle {
            if *rc > now && *rc != u64::MAX {
                *rc += delta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_allocates_and_remaps() {
        let mut rt = RenameTable::new(40);
        let r5 = ArchReg::new(5);
        assert_eq!(rt.lookup(r5), 5);
        let ren = rt.rename_dst(r5).unwrap();
        assert_eq!(ren.old_phys, 5);
        assert_eq!(ren.new_phys, 32);
        assert_eq!(rt.lookup(r5), 32);
        assert_eq!(rt.free_count(), 7);
    }

    #[test]
    fn zero_register_is_not_renamed() {
        let mut rt = RenameTable::new(40);
        let ren = rt.rename_dst(ArchReg::ZERO).unwrap();
        assert_eq!(ren.new_phys, 0);
        assert_eq!(rt.free_count(), 8);
        assert!(rt.is_ready(0, 0, 0));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rt = RenameTable::new(34);
        assert!(rt.rename_dst(ArchReg::new(1)).is_some());
        assert!(rt.rename_dst(ArchReg::new(2)).is_some());
        assert!(rt.rename_dst(ArchReg::new(3)).is_none());
    }

    #[test]
    fn retire_free_recycles() {
        let mut rt = RenameTable::new(34);
        let a = rt.rename_dst(ArchReg::new(1)).unwrap();
        let _b = rt.rename_dst(ArchReg::new(1)).unwrap();
        // retire the first rename: old mapping (phys 1) freed
        rt.retire_free(a.old_phys);
        assert_eq!(rt.free_count(), 1);
        let c = rt.rename_dst(ArchReg::new(2)).unwrap();
        assert_eq!(c.new_phys, 1, "recycled physical register");
    }

    #[test]
    fn rollback_restores_mapping_youngest_first() {
        let mut rt = RenameTable::new(40);
        let r7 = ArchReg::new(7);
        let first = rt.rename_dst(r7).unwrap();
        let second = rt.rename_dst(r7).unwrap();
        assert_eq!(rt.lookup(r7), second.new_phys);
        rt.rollback(r7, second);
        assert_eq!(rt.lookup(r7), first.new_phys);
        rt.rollback(r7, first);
        assert_eq!(rt.lookup(r7), 7);
        assert_eq!(rt.free_count(), 8, "all allocations returned");
    }

    #[test]
    fn ready_cycle_tracking() {
        let mut rt = RenameTable::new(40);
        let ren = rt.rename_dst(ArchReg::new(3)).unwrap();
        assert!(!rt.is_ready(ren.new_phys, 1_000_000, 0));
        rt.set_ready_cycle(ren.new_phys, 10, false);
        assert!(!rt.is_ready(ren.new_phys, 9, 0));
        assert!(rt.is_ready(ren.new_phys, 10, 0));
        assert_eq!(rt.ready_cycle(ren.new_phys), 10);
        // delayed broadcast: early consumers wait one extra cycle,
        // late-dispatched consumers do not
        rt.set_ready_cycle(ren.new_phys, 20, true);
        assert!(!rt.is_ready(ren.new_phys, 20, 5));
        assert!(rt.is_ready(ren.new_phys, 21, 5));
        assert!(rt.is_ready(ren.new_phys, 20, 25));
    }
}
