//! Structured commit-watchdog diagnostics.
//!
//! When nothing retires for [`CoreConfig::watchdog_cycles`] cycles the
//! machine is wedged — historically that was a hard `panic!`, which
//! poisons a whole multi-thousand-tuple campaign. [`Pipeline::try_run`]
//! instead returns a [`WatchdogError`] carrying a dump of the stuck
//! machine (cycle, ROB-head state, queue occupancy, active stall state)
//! so a crash-isolated harness can record the wedge as a per-tuple verdict
//! and keep going.
//!
//! [`CoreConfig::watchdog_cycles`]: crate::CoreConfig::watchdog_cycles
//! [`Pipeline::try_run`]: crate::Pipeline::try_run

use std::fmt;

use tv_timing::PipeStage;
use tv_workloads::OpClass;

/// Snapshot of the ROB head at the moment the watchdog tripped — the
/// instruction the machine is stuck behind, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobHeadDump {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static PC.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Cycle the instruction issued, if it has.
    pub issue_cycle: Option<u64>,
    /// Cycle it will (or did) complete, if scheduled.
    pub complete_cycle: Option<u64>,
    /// Predicted faulty stage, if the TEP flagged one.
    pub predicted_fault: Option<PipeStage>,
    /// Injected fault not yet corrected, if any.
    pub actual_fault: Option<PipeStage>,
}

impl fmt::Display for RobHeadDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn c(x: Option<u64>) -> String {
            x.map_or("-".into(), |x| x.to_string())
        }
        fn s(x: Option<PipeStage>) -> String {
            x.map_or("-".into(), |x| x.to_string())
        }
        write!(
            f,
            "seq={} pc={:#x} op={} issued={} complete={} predicted={} fault={}",
            self.seq,
            self.pc,
            self.op,
            c(self.issue_cycle),
            c(self.complete_cycle),
            s(self.predicted_fault),
            s(self.actual_fault),
        )
    }
}

/// The commit watchdog tripped: nothing retired for `threshold` cycles.
///
/// Carries enough of the machine state to diagnose the wedge post-mortem
/// without a debugger attached. [`Display`](fmt::Display) renders a
/// single comma-free line, safe to embed in a CSV field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogError {
    /// Cycle at which the watchdog tripped.
    pub cycle: u64,
    /// Cycle of the last successful commit.
    pub last_commit_cycle: u64,
    /// Configured threshold ([`watchdog_cycles`]) that was exceeded.
    ///
    /// [`watchdog_cycles`]: crate::CoreConfig::watchdog_cycles
    pub threshold: u64,
    /// Instructions committed before the machine wedged.
    pub committed: u64,
    /// Sequence number the retire stage is waiting for.
    pub next_commit_seq: u64,
    /// The ROB head the machine is stuck behind (`None` = empty ROB, the
    /// wedge is in the front end).
    pub rob_head: Option<RobHeadDump>,
    /// Reorder-buffer occupancy.
    pub rob_len: usize,
    /// Issue-queue occupancy.
    pub iq_len: usize,
    /// Load/store-queue occupancy.
    pub lsq_occupancy: usize,
    /// Instructions sitting in the fetch/decode/rename buffers.
    pub frontend_len: usize,
    /// Outstanding Error-Padding stall cycles.
    pub pending_ep_stalls: u64,
    /// Outstanding replay-recovery stall cycles.
    pub pending_recovery_stalls: u64,
    /// Branch sequence number fetch is blocked on, if any.
    pub fetch_blocked_on: Option<u64>,
    /// In-order stall deadline for the rename stage.
    pub rename_stall_until: u64,
    /// In-order stall deadline for the dispatch stage.
    pub dispatch_stall_until: u64,
    /// In-order stall deadline for the retire stage.
    pub retire_stall_until: u64,
    /// Fetch stall deadline.
    pub fetch_stall_until: u64,
}

impl fmt::Display for WatchdogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no commit for {} cycles (cycle {}; last commit {}; {} committed; \
             awaiting seq {}); rob head [{}]; occupancy rob={} iq={} lsq={} \
             frontend={}; stalls ep={} recovery={} rename<{} dispatch<{} \
             retire<{} fetch<{}; fetch blocked on {}",
            self.cycle - self.last_commit_cycle,
            self.cycle,
            self.last_commit_cycle,
            self.committed,
            self.next_commit_seq,
            self.rob_head
                .as_ref()
                .map_or("empty".to_string(), |h| h.to_string()),
            self.rob_len,
            self.iq_len,
            self.lsq_occupancy,
            self.frontend_len,
            self.pending_ep_stalls,
            self.pending_recovery_stalls,
            self.rename_stall_until,
            self.dispatch_stall_until,
            self.retire_stall_until,
            self.fetch_stall_until,
            self.fetch_blocked_on
                .map_or("-".to_string(), |s| s.to_string()),
        )
    }
}

impl std::error::Error for WatchdogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_csv_safe_line() {
        let err = WatchdogError {
            cycle: 600_123,
            last_commit_cycle: 100_123,
            threshold: 500_000,
            committed: 42_000,
            next_commit_seq: 42_000,
            rob_head: Some(RobHeadDump {
                seq: 42_000,
                pc: 0x1040,
                op: OpClass::Load,
                issue_cycle: Some(100_120),
                complete_cycle: None,
                predicted_fault: None,
                actual_fault: Some(PipeStage::Memory),
            }),
            rob_len: 128,
            iq_len: 32,
            lsq_occupancy: 48,
            frontend_len: 3,
            pending_ep_stalls: 0,
            pending_recovery_stalls: 0,
            fetch_blocked_on: None,
            rename_stall_until: 0,
            dispatch_stall_until: 0,
            retire_stall_until: 0,
            fetch_stall_until: 0,
        };
        let line = err.to_string();
        assert!(line.contains("no commit for 500000 cycles"));
        assert!(line.contains("seq=42000"));
        assert!(line.contains("fault=memory"));
        assert!(!line.contains(','), "must embed cleanly in a CSV field");
        assert!(!line.contains('\n'));
    }
}
