//! Machine configuration (Fabscalar Core-1 defaults).

use tv_workloads::OpClass;

/// How an unpredicted timing violation is corrected (paper §2.1.2:
/// "error recovery is triggered using instruction replay, similar to
/// Razor").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryModel {
    /// Razor-style in-situ replay: the faulty instruction re-executes with
    /// a restored guard band (`replay_penalty` extra cycles) while the
    /// pipeline inserts `replay_latency` recovery bubbles. Younger
    /// independent instructions are preserved.
    InSitu,
    /// Full flush: the faulty instruction and everything younger are
    /// squashed and refetched (a heavyweight recovery, kept for ablation).
    Flush,
}

/// Functional capability of an issue lane.
///
/// The Core-1-style machine issues one instruction per lane per cycle; each
/// lane owns its register-read port, functional unit, and writeback slot,
/// so holding a lane for an extra cycle models the paper's issue-slot
/// freezing, register-read-port blocking and FUSR management uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneKind {
    /// Single-cycle simple ALU; also resolves branches.
    SimpleAluBranch,
    /// Single-cycle simple ALU.
    SimpleAlu,
    /// Multi-cycle complex unit: pipelined multiply / FP, unpipelined divide.
    Complex,
    /// Memory port: address generation followed by data-cache access.
    Mem,
}

impl LaneKind {
    /// Whether this lane can execute `op`.
    pub fn accepts(self, op: OpClass) -> bool {
        match self {
            LaneKind::SimpleAluBranch => matches!(
                op,
                OpClass::IntAlu | OpClass::CondBranch | OpClass::Jump
            ),
            LaneKind::SimpleAlu => op == OpClass::IntAlu,
            LaneKind::Complex => matches!(
                op,
                OpClass::IntMul | OpClass::IntDiv | OpClass::FpAlu | OpClass::FpMul
            ),
            LaneKind::Mem => matches!(op, OpClass::Load | OpClass::Store),
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Pipeline width W (fetch/decode/rename/dispatch/issue/retire).
    pub width: usize,
    /// Issue lanes, in selection order.
    pub lanes: Vec<LaneKind>,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load/store-queue entries.
    pub lsq_entries: usize,
    /// Physical integer registers.
    pub phys_regs: usize,
    /// Front-end latency from fetch to rename input, in cycles (models the
    /// multi-stage fetch/decode pipe; Core-1's fetch→execute loop is 10).
    pub frontend_latency: u64,
    /// Latency of each of rename, dispatch (cycles per stage).
    pub rename_latency: u64,
    /// Execute latency of a pipelined multiply.
    pub mul_latency: u64,
    /// Execute latency of an *unpipelined* divide.
    pub div_latency: u64,
    /// Execute latency of pipelined FP add.
    pub fp_alu_latency: u64,
    /// Execute latency of pipelined FP multiply.
    pub fp_mul_latency: u64,
    /// L1 data/instruction cache hit latency.
    pub l1_latency: u64,
    /// L2 hit latency (paper: 25 cycles).
    pub l2_latency: u64,
    /// Main-memory latency (paper: 240 cycles).
    pub mem_latency: u64,
    /// L1 size in bytes (paper: 32 KB), 4-way.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 size in bytes (paper: 8 MB), 16-way.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Extra cycles from a branch-misprediction redirect until fetch
    /// resumes (on top of the refill through the front end).
    pub redirect_latency: u64,
    /// Recovery bubbles inserted per replay (whole-pipeline stall cycles
    /// while the Razor recovery restores the stage), and — for the flush
    /// model — extra cycles before fetch resumes.
    pub replay_latency: u64,
    /// Extra execution cycles the replayed instruction takes to re-execute
    /// with a restored guard band (in-situ model only).
    pub replay_penalty: u64,
    /// Replay recovery mechanism.
    pub recovery: RecoveryModel,
    /// Watchdog threshold: cycles without a commit before the simulation
    /// gives up with a structured [`WatchdogError`](crate::WatchdogError)
    /// diagnostic instead of spinning forever.
    pub watchdog_cycles: u64,
}

impl CoreConfig {
    /// The Fabscalar Core-1-like configuration used throughout the paper.
    pub fn core1() -> Self {
        CoreConfig {
            width: 4,
            lanes: vec![
                LaneKind::SimpleAluBranch,
                LaneKind::SimpleAlu,
                LaneKind::Complex,
                LaneKind::Mem,
            ],
            iq_entries: 32,
            rob_entries: 128,
            lsq_entries: 48,
            phys_regs: 96,
            frontend_latency: 4,
            rename_latency: 1,
            mul_latency: 3,
            div_latency: 12,
            fp_alu_latency: 4,
            fp_mul_latency: 6,
            l1_latency: 1,
            l2_latency: 25,
            mem_latency: 240,
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l2_bytes: 8 * 1024 * 1024,
            l2_ways: 16,
            line_bytes: 64,
            redirect_latency: 2,
            replay_latency: 3,
            replay_penalty: 8,
            recovery: RecoveryModel::InSitu,
            watchdog_cycles: 500_000,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on structurally impossible configurations (zero width, no
    /// lanes, fewer physical registers than architectural, etc.).
    pub fn validate(&self) {
        assert!(self.width >= 1, "width must be at least 1");
        assert!(!self.lanes.is_empty(), "at least one issue lane required");
        assert!(self.iq_entries >= self.width, "issue queue too small");
        assert!(self.rob_entries >= self.width, "ROB too small");
        assert!(self.lsq_entries >= 2, "LSQ too small");
        assert!(
            self.phys_regs >= 32 + self.width,
            "need more physical than architectural registers"
        );
        assert!(
            self.lanes.iter().any(|l| l.accepts(OpClass::Load)),
            "need a memory lane"
        );
        assert!(
            self.lanes.iter().any(|l| l.accepts(OpClass::CondBranch)),
            "need a branch-capable lane"
        );
        assert!(self.watchdog_cycles >= 1, "watchdog threshold must be positive");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.l1_bytes % (self.l1_ways * self.line_bytes) == 0, "L1 geometry invalid");
        assert!(self.l2_bytes % (self.l2_ways * self.line_bytes) == 0, "L2 geometry invalid");
    }

    /// Execute latency of `op` (memory access latency excluded for loads).
    pub fn exec_latency(&self, op: OpClass) -> u64 {
        match op {
            OpClass::IntAlu | OpClass::CondBranch | OpClass::Jump => 1,
            OpClass::IntMul => self.mul_latency,
            OpClass::IntDiv => self.div_latency,
            OpClass::FpAlu => self.fp_alu_latency,
            OpClass::FpMul => self.fp_mul_latency,
            // address generation; the cache access is added separately
            OpClass::Load | OpClass::Store => 1,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::core1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core1_is_valid_and_paper_shaped() {
        let c = CoreConfig::core1();
        c.validate();
        assert_eq!(c.width, 4);
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.phys_regs, 96);
        assert_eq!(c.l2_latency, 25);
        assert_eq!(c.mem_latency, 240);
        assert_eq!(c.lanes.len(), 4);
    }

    #[test]
    fn lane_capabilities() {
        assert!(LaneKind::SimpleAluBranch.accepts(OpClass::CondBranch));
        assert!(LaneKind::SimpleAluBranch.accepts(OpClass::IntAlu));
        assert!(!LaneKind::SimpleAlu.accepts(OpClass::Load));
        assert!(LaneKind::Complex.accepts(OpClass::IntMul));
        assert!(LaneKind::Complex.accepts(OpClass::FpMul));
        assert!(LaneKind::Mem.accepts(OpClass::Store));
        assert!(!LaneKind::Mem.accepts(OpClass::IntAlu));
    }

    #[test]
    fn exec_latencies() {
        let c = CoreConfig::core1();
        assert_eq!(c.exec_latency(OpClass::IntAlu), 1);
        assert_eq!(c.exec_latency(OpClass::IntMul), 3);
        assert_eq!(c.exec_latency(OpClass::IntDiv), 12);
        assert_eq!(c.exec_latency(OpClass::Load), 1);
    }

    #[test]
    #[should_panic(expected = "issue queue too small")]
    fn invalid_config_panics() {
        let c = CoreConfig {
            iq_entries: 1,
            ..CoreConfig::core1()
        };
        c.validate();
    }
}
