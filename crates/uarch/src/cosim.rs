//! Single-pass multi-scheme co-simulation: one shared frontend feeding
//! N per-scheme timing lanes.
//!
//! PR 2's differential harness proved that every tolerance scheme commits
//! the bit-identical architectural stream — schemes differ in *timing*,
//! never in *work*. A conventional sweep still pays for that work N times:
//! each solo [`Pipeline`] regenerates the trace, re-samples the fault
//! stream, re-runs the 300k-instruction fault-calibration probe, and
//! re-trains an identical branch predictor. [`CoSim`] runs the lanes
//! against one [`SharedFrontend`] instead, so per tuple the sweep pays for
//! trace generation, fault sampling, branch-outcome prediction, and the
//! calibration probe exactly once.
//!
//! # What is shareable, and why
//!
//! Under the default in-situ recovery model ([`RecoveryModel::InSitu`]),
//! replay happens in place: nothing is squashed, so fetch order equals
//! trace order in every lane. That makes the following *scheme-invariant*:
//!
//! * **The instruction stream.** [`TraceInst`] is pre-resolved; the
//!   generator's output depends only on (workload, seed, fast-forward).
//! * **Fault sampling.** [`FaultModel::decide`] is a pure function of
//!   (PC, is-mem, seq) given the model's calibration — and the model
//!   itself depends only on (workload, seed, fast-forward, voltage,
//!   sensor), all of which the lanes share per tuple.
//! * **Branch-predictor outcomes.** The predictor observes the fetch
//!   stream in order and updates deterministically, so its
//!   mispredict/correct verdict per dynamic branch is identical across
//!   lanes.
//!
//! Everything downstream of fetch — queue occupancy clocks, stall
//! ledgers, replay/EP accounting, TEP training (which interleaves
//! predict-at-decode with train-at-retire and is therefore
//! timing-dependent), caches, and the rename/value planes — stays
//! per-lane, untouched.
//!
//! # The bit-identity contract
//!
//! Co-simulation is an optimization, never a semantic fork: every lane's
//! committed stream hash, [`SimStats`], audit verdicts, and oracle
//! verdicts are bit-identical to a solo run of that scheme. The driver
//! guarantees this by construction —
//!
//! * each lane is a full [`Pipeline`] built by the same builder path as a
//!   solo run, differing only in where `fetch` pulls its next
//!   (instruction, fault, branch-verdict) triple;
//! * the shared fault model is built by the same probe code a solo build
//!   runs ([`PipelineBuilder`] internals are reused, not re-implemented);
//! * `run`/`warm_up`/`run_to_halt` set each lane's commit limit once per
//!   phase — exactly as the solo entry points do — and then advance lanes
//!   in bounded chunks toward shared commit milestones, so chunked
//!   stepping executes the very same `step()` sequence a solo run would;
//! * watchdog bookkeeping is carried per lane across chunks, reproducing
//!   the solo watchdog window.
//!
//! `tests/cosim_equiv.rs` pins the contract over a grid of synthetic
//! tuples and every RISC-V builtin.
//!
//! [`RecoveryModel::InSitu`]: crate::config::RecoveryModel::InSitu

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use tv_timing::{FaultModel, PipeStage, Voltage};
use tv_workloads::{OpClass, TraceInst, WorkloadSource, WorkloadSpec};

use crate::branch::BranchPredictor;
use crate::config::RecoveryModel;
use crate::pipeline::{Pipeline, PipelineBuilder, ToleranceMode};
use crate::profile::{stage, timed_stage};
use crate::stats::SimStats;
use crate::watchdog::WatchdogError;

/// Commits each lane advances per interleaving chunk. Large enough that
/// lane switches are rare relative to per-instruction work, small enough
/// that the shared memo buffer stays cache-resident (the lanes' commit
/// points never drift more than a chunk plus the in-flight window apart).
const CHUNK_COMMITS: u64 = 2048;

/// One instruction as fed to a lane's fetch stage: the pre-resolved trace
/// record plus the frontend verdicts that are scheme-invariant.
pub(crate) struct FedInst {
    pub trace: TraceInst,
    /// Sampled timing-violation stage, already `None` for fault-free lanes.
    pub fault: Option<PipeStage>,
    /// Branch-predictor verdict for branches/jumps; `None` means the lane
    /// resolves it against its own predictor (solo mode).
    pub mispred: Option<bool>,
}

/// Where a pipeline's fetch stage gets instructions: its own workload
/// source (solo) or a cursor into a [`SharedFrontend`] (co-sim).
pub(crate) enum Feed {
    Direct(Box<dyn WorkloadSource>),
    Shared(SharedCursor),
}

impl Feed {
    /// Pulls the next instruction plus its frontend verdicts. `fm` is the
    /// lane's fault model; the shared path ignores it (the shared frontend
    /// sampled the stream already).
    #[inline]
    pub(crate) fn next(&mut self, fm: Option<&FaultModel>) -> Option<FedInst> {
        match self {
            Feed::Direct(src) => timed_stage!(stage::FRONTEND, {
                src.next_inst().map(|trace| FedInst {
                    fault: fm.and_then(|m| m.decide(trace.pc, trace.op.is_mem(), trace.seq)),
                    mispred: None,
                    trace,
                })
            }),
            Feed::Shared(cursor) => cursor.next(),
        }
    }
}

/// One memoized frontend record, shared by all lanes.
struct SharedEntry {
    trace: TraceInst,
    fault: Option<PipeStage>,
    mispred: bool,
}

/// The scheme-invariant frontend pass, computed once and memoized until
/// the slowest lane has consumed it.
pub struct SharedFrontend {
    src: Box<dyn WorkloadSource>,
    /// Shared fault model (None when every lane is fault-free).
    fm: Option<FaultModel>,
    /// Shared branch predictor; valid because fetch order is trace order
    /// in every lane under in-situ recovery.
    bp: BranchPredictor,
    buf: VecDeque<SharedEntry>,
    /// Sequence number of `buf[0]`; `u64::MAX` until the first pull.
    base: u64,
    /// Per-cursor next sequence number.
    positions: Vec<u64>,
    /// The source ended; no further entries will ever exist.
    done: bool,
    /// Total instructions pulled from the source (profile/attribution).
    pulled: u64,
}

impl SharedFrontend {
    /// Runs the shared pass for one more instruction; false when the
    /// source is exhausted.
    fn pull_one(&mut self) -> bool {
        timed_stage!(stage::FRONTEND, {
            let Some(trace) = self.src.next_inst() else {
                self.done = true;
                return false;
            };
            if self.base == u64::MAX {
                self.base = trace.seq;
            }
            debug_assert_eq!(trace.seq, self.base + self.buf.len() as u64);
            let fault = self
                .fm
                .as_ref()
                .and_then(|m| m.decide(trace.pc, trace.op.is_mem(), trace.seq));
            // Same prediction/update sequence as Pipeline::fetch runs solo.
            let mispred = match trace.op {
                OpClass::CondBranch => {
                    let actual_taken = trace.taken.expect("branches carry outcomes");
                    let pred = self.bp.predict_cond(trace.pc);
                    let m = pred.taken != actual_taken
                        || (actual_taken && pred.target != trace.target);
                    self.bp.update(trace.pc, actual_taken, trace.target);
                    m
                }
                OpClass::Jump => {
                    let pred = self.bp.predict_jump(trace.pc);
                    let m = pred.target != trace.target;
                    self.bp.update(trace.pc, true, trace.target);
                    m
                }
                _ => false,
            };
            self.pulled += 1;
            self.buf.push_back(SharedEntry { trace, fault, mispred });
            true
        })
    }

    /// Next instruction for cursor `id`; `faulty` lanes see the sampled
    /// fault stream, fault-free lanes see a clean one.
    fn next_for(&mut self, id: usize, faulty: bool) -> Option<FedInst> {
        let seq = self.positions[id];
        while self.base == u64::MAX || seq >= self.base + self.buf.len() as u64 {
            if !self.pull_one() {
                return None;
            }
        }
        let entry = &self.buf[(seq - self.base) as usize];
        self.positions[id] = seq + 1;
        Some(FedInst {
            trace: entry.trace,
            fault: if faulty { entry.fault } else { None },
            mispred: Some(entry.mispred),
        })
    }

    /// Drops memo entries every lane has consumed (called between chunks).
    fn reclaim(&mut self) {
        let min = self.positions.iter().copied().min().unwrap_or(self.base);
        while self.base < min && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }
}

/// One lane's cursor into the shared frontend.
pub(crate) struct SharedCursor {
    shared: Rc<RefCell<SharedFrontend>>,
    id: usize,
    faulty: bool,
}

impl SharedCursor {
    #[inline]
    fn next(&mut self) -> Option<FedInst> {
        self.shared.borrow_mut().next_for(self.id, self.faulty)
    }
}

/// A watchdog trip inside a co-sim, attributed to the lane that stalled.
#[derive(Debug, Clone, PartialEq)]
pub struct CoSimError {
    /// Index of the lane (in `CoSim::build` order) that tripped.
    pub lane: usize,
    /// The solo-identical diagnostic dump.
    pub error: WatchdogError,
}

impl std::fmt::Display for CoSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lane {}: {}", self.lane, self.error)
    }
}

impl std::error::Error for CoSimError {}

struct Lane {
    pipe: Pipeline,
    /// Watchdog bookkeeping carried across chunks; reset at phase starts,
    /// exactly mirroring the locals of a solo `try_run`.
    wd_last_commit_cycle: u64,
    wd_last_committed: u64,
}

/// Drives N per-scheme [`Pipeline`] lanes against one [`SharedFrontend`]
/// in a single interleaved run. See the module docs for the sharing
/// argument and the bit-identity contract.
pub struct CoSim {
    shared: Rc<RefCell<SharedFrontend>>,
    lanes: Vec<Lane>,
}

impl CoSim {
    /// Builds one lane per builder against a shared frontend.
    ///
    /// # Panics
    ///
    /// Panics when the builders are not co-simulable: they must share the
    /// workload, seed, and fast-forward (one stream), use in-situ recovery
    /// (fetch order must equal trace order), and every faulty lane must
    /// resolve to the same voltage, calibration, and sensor (one fault
    /// model). Tolerance mode, select policy, TEP geometry, CT, audit,
    /// and oracle settings are free per lane.
    pub fn build(builders: Vec<PipelineBuilder>) -> CoSim {
        assert!(!builders.is_empty(), "co-sim needs at least one lane");
        let first = &builders[0];
        let (seed, fast_forward) = (first.seed, first.fast_forward);
        let mut fm_params: Option<(Voltage, _, _)> = None;
        for (i, b) in builders.iter().enumerate() {
            assert!(
                same_workload(&first.workload, &b.workload),
                "lane {i}: co-sim lanes must share one workload"
            );
            assert_eq!(b.seed, seed, "lane {i}: co-sim lanes must share one seed");
            assert_eq!(
                b.fast_forward, fast_forward,
                "lane {i}: co-sim lanes must share one fast-forward"
            );
            assert_eq!(
                b.cfg.recovery,
                RecoveryModel::InSitu,
                "lane {i}: co-sim requires in-situ recovery (fetch order must \
                 equal trace order for the frontend to be scheme-invariant)"
            );
            if b.mode != ToleranceMode::FaultFree {
                let params = (b.vdd, b.resolved_calibration(), b.resolved_sensor());
                match &fm_params {
                    None => fm_params = Some(params),
                    Some(p) => assert_eq!(
                        *p, params,
                        "lane {i}: faulty co-sim lanes must share one fault model \
                         (voltage, calibration, sensor)"
                    ),
                }
            }
        }
        // One calibration probe for the whole bundle, via the same builder
        // path a solo build runs — the shared model is bit-identical to
        // each faulty lane's solo one.
        let fm = builders
            .iter()
            .find(|b| b.mode != ToleranceMode::FaultFree)
            .and_then(PipelineBuilder::make_fault_model);
        let mut src = first.workload.source(seed);
        if fast_forward > 0 {
            src.fast_forward(fast_forward);
        }
        let shared = Rc::new(RefCell::new(SharedFrontend {
            src,
            fm: fm.clone(),
            bp: BranchPredictor::default_geometry(),
            buf: VecDeque::new(),
            base: u64::MAX,
            positions: vec![fast_forward; builders.len()],
            done: false,
            pulled: 0,
        }));
        let lanes = builders
            .into_iter()
            .enumerate()
            .map(|(id, b)| {
                let faulty = b.mode != ToleranceMode::FaultFree;
                let lane_fm = if faulty {
                    Some(fm.clone().expect("faulty lane implies a fault model"))
                } else {
                    None
                };
                let cursor = SharedCursor { shared: Rc::clone(&shared), id, faulty };
                Lane {
                    pipe: b.build_with(Feed::Shared(cursor), lane_fm),
                    wd_last_commit_cycle: 0,
                    wd_last_committed: 0,
                }
            })
            .collect();
        CoSim { shared, lanes }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the co-sim has no lanes (never true for a built co-sim).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Lane `i`'s pipeline (reports, stats, end-state accessors).
    pub fn lane(&self, i: usize) -> &Pipeline {
        &self.lanes[i].pipe
    }

    /// The lanes' pipelines, in build order.
    pub fn pipelines(&self) -> impl Iterator<Item = &Pipeline> {
        self.lanes.iter().map(|l| &l.pipe)
    }

    /// Instructions the shared frontend pulled from the source — the work
    /// paid once instead of N times.
    pub fn shared_pulls(&self) -> u64 {
        self.shared.borrow().pulled
    }

    /// Warms every lane by `commits` instructions, then resets statistics —
    /// the co-sim analogue of [`Pipeline::warm_up`].
    ///
    /// # Panics
    ///
    /// Panics if any lane deadlocks.
    pub fn warm_up(&mut self, commits: u64) {
        self.try_warm_up(commits)
            .unwrap_or_else(|e| panic!("pipeline deadlock: {e}"))
    }

    /// Fallible [`warm_up`](CoSim::warm_up).
    ///
    /// # Errors
    ///
    /// Returns the first stalled lane's watchdog dump.
    pub fn try_warm_up(&mut self, commits: u64) -> Result<(), CoSimError> {
        if commits == 0 {
            return Ok(());
        }
        self.drive(commits, false)?;
        for lane in &mut self.lanes {
            // Same sequence as a solo warm_up: run() finalizes, then resets.
            lane.pipe.finish_phase();
            lane.pipe.reset_stats();
        }
        Ok(())
    }

    /// Runs every lane until exactly `commits` more instructions retire
    /// and returns per-lane statistics in build order — the co-sim
    /// analogue of [`Pipeline::run`].
    ///
    /// # Panics
    ///
    /// Panics if any lane deadlocks.
    pub fn run(&mut self, commits: u64) -> Vec<SimStats> {
        self.try_run(commits)
            .unwrap_or_else(|e| panic!("pipeline deadlock: {e}"))
    }

    /// Fallible [`run`](CoSim::run).
    ///
    /// # Errors
    ///
    /// Returns the first stalled lane's watchdog dump.
    pub fn try_run(&mut self, commits: u64) -> Result<Vec<SimStats>, CoSimError> {
        self.drive(commits, false)?;
        Ok(self.finish())
    }

    /// Runs every lane to its workload's halt (or `max_commits`, whichever
    /// comes first) — the co-sim analogue of [`Pipeline::run_to_halt`].
    ///
    /// # Panics
    ///
    /// Panics if any lane deadlocks.
    pub fn run_to_halt(&mut self, max_commits: u64) -> Vec<SimStats> {
        self.try_run_to_halt(max_commits)
            .unwrap_or_else(|e| panic!("pipeline deadlock: {e}"))
    }

    /// Fallible [`run_to_halt`](CoSim::run_to_halt).
    ///
    /// # Errors
    ///
    /// Returns the first stalled lane's watchdog dump.
    pub fn try_run_to_halt(&mut self, max_commits: u64) -> Result<Vec<SimStats>, CoSimError> {
        self.drive(max_commits, true)?;
        Ok(self.finish())
    }

    fn finish(&mut self) -> Vec<SimStats> {
        self.lanes
            .iter_mut()
            .map(|lane| {
                lane.pipe.finish_phase();
                lane.pipe.stats().clone()
            })
            .collect()
    }

    /// One run phase: set every lane's commit limit to the phase-final
    /// target (once — mid-phase clamps would change retire behaviour at
    /// chunk boundaries vs a solo run), then advance lanes in bounded
    /// chunks toward shared commit milestones, reclaiming drained memo
    /// entries between chunks.
    fn drive(&mut self, commits: u64, to_halt: bool) -> Result<(), CoSimError> {
        let start = self.lanes[0].pipe.stats().committed;
        debug_assert!(
            self.lanes.iter().all(|l| l.pipe.stats().committed == start),
            "lanes drift between phases"
        );
        let target = start.saturating_add(commits);
        for lane in &mut self.lanes {
            lane.pipe.set_commit_limit(target);
            lane.wd_last_commit_cycle = lane.pipe.cycle();
            lane.wd_last_committed = lane.pipe.stats().committed;
        }
        let mut milestone = start;
        loop {
            milestone = milestone.saturating_add(CHUNK_COMMITS).min(target);
            let mut all_done = true;
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                lane.pipe
                    .step_toward(
                        milestone,
                        to_halt,
                        &mut lane.wd_last_commit_cycle,
                        &mut lane.wd_last_committed,
                    )
                    .map_err(|error| CoSimError { lane: i, error })?;
                if lane.pipe.stats().committed < target && !(to_halt && lane.pipe.drained()) {
                    all_done = false;
                }
            }
            self.shared.borrow_mut().reclaim();
            if all_done {
                return Ok(());
            }
        }
    }
}

fn same_workload(a: &WorkloadSpec, b: &WorkloadSpec) -> bool {
    match (a, b) {
        (WorkloadSpec::Synthetic(p), WorkloadSpec::Synthetic(q)) => p == q,
        (WorkloadSpec::Riscv(p), WorkloadSpec::Riscv(q)) => Arc::ptr_eq(p, q) || p == q,
        _ => false,
    }
}
