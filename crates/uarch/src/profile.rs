//! Self-profiling for the pipeline hot path.
//!
//! With the `stage-profile` cargo feature enabled, [`Pipeline::step`]
//! accumulates per-stage wall-clock time into process-wide relaxed
//! atomics; [`snapshot`] reads them back for reporting (the bench
//! harnesses append the breakdown to `runner_timing.csv`, `simspeed`
//! prints it). With the feature disabled — the default — every probe
//! compiles to nothing: no `Instant::now`, no atomics, no branches.
//!
//! The counters are global rather than per-`Pipeline` so that fleet runs
//! (many pipelines across worker threads) aggregate into one breakdown
//! without threading profile state through result types, which must stay
//! bit-identical across worker counts.
//!
//! [`Pipeline::step`]: crate::Pipeline::step

/// Pipeline stages instrumented by the profiler, in `step()` order. The
/// `issue.*` entries are sub-phases nested inside `issue` (wakeup walk,
/// priority ordering, lane select + downstream timing). `frontend` is
/// nested inside `fetch`: the scheme-invariant instruction-supply work
/// (trace generation, fault sampling, shared branch-outcome resolution) —
/// in a solo run it is paid per lane, in a co-sim once per bundle, which
/// is the shared-frontend amortization claim made visible.
pub const STAGE_NAMES: [&str; 12] = [
    "events", "retire", "issue", "dispatch", "rename", "decode", "fetch", "audit",
    "issue.wake", "issue.sort", "issue.sel", "frontend",
];

/// Index constants matching [`STAGE_NAMES`].
pub(crate) mod stage {
    pub const EVENTS: usize = 0;
    pub const RETIRE: usize = 1;
    pub const ISSUE: usize = 2;
    pub const DISPATCH: usize = 3;
    pub const RENAME: usize = 4;
    pub const DECODE: usize = 5;
    pub const FETCH: usize = 6;
    pub const AUDIT: usize = 7;
    pub const ISSUE_WAKE: usize = 8;
    pub const ISSUE_SORT: usize = 9;
    pub const ISSUE_SEL: usize = 10;
    pub const FRONTEND: usize = 11;
}

/// One stage's accumulated profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSample {
    /// Stage name (one of [`STAGE_NAMES`]).
    pub name: &'static str,
    /// Total wall-clock nanoseconds spent in the stage.
    pub nanos: u64,
    /// Number of timed stage invocations.
    pub calls: u64,
}

/// Whether the profiler is compiled in.
pub const fn enabled() -> bool {
    cfg!(feature = "stage-profile")
}

#[cfg(feature = "stage-profile")]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};

    const N: usize = super::STAGE_NAMES.len();
    static NANOS: [AtomicU64; N] = [const { AtomicU64::new(0) }; N];
    static CALLS: [AtomicU64; N] = [const { AtomicU64::new(0) }; N];

    #[inline]
    pub fn record(idx: usize, nanos: u64) {
        NANOS[idx].fetch_add(nanos, Ordering::Relaxed);
        CALLS[idx].fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(idx: usize) -> (u64, u64) {
        (
            NANOS[idx].load(Ordering::Relaxed),
            CALLS[idx].load(Ordering::Relaxed),
        )
    }

    pub fn reset() {
        for i in 0..N {
            NANOS[i].store(0, Ordering::Relaxed);
            CALLS[i].store(0, Ordering::Relaxed);
        }
    }
}

/// Records one stage invocation (no-op without the feature; only
/// referenced by `timed_stage!` expansions when profiling is on).
#[inline(always)]
#[allow(unused_variables, dead_code)]
pub(crate) fn record(idx: usize, nanos: u64) {
    #[cfg(feature = "stage-profile")]
    imp::record(idx, nanos);
}

/// The accumulated per-stage profile; empty when the feature is off.
pub fn snapshot() -> Vec<StageSample> {
    #[cfg(feature = "stage-profile")]
    {
        return STAGE_NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                let (nanos, calls) = imp::read(i);
                StageSample { name, nanos, calls }
            })
            .collect();
    }
    #[cfg(not(feature = "stage-profile"))]
    Vec::new()
}

/// Zeroes the counters (between measurement phases).
pub fn reset() {
    #[cfg(feature = "stage-profile")]
    imp::reset();
}

/// Times a stage expression when profiling is compiled in; expands to the
/// bare expression otherwise.
macro_rules! timed_stage {
    ($idx:expr, $e:expr) => {{
        #[cfg(feature = "stage-profile")]
        let __profile_t0 = std::time::Instant::now();
        #[cfg(not(feature = "stage-profile"))]
        let _ = $idx; // keep the index used (and type-checked) when off
        let __r = $e;
        #[cfg(feature = "stage-profile")]
        $crate::profile::record($idx, __profile_t0.elapsed().as_nanos() as u64);
        __r
    }};
}
pub(crate) use timed_stage;

#[cfg(test)]
mod tests {
    #[test]
    fn snapshot_matches_feature_state() {
        let snap = super::snapshot();
        if super::enabled() {
            assert_eq!(snap.len(), super::STAGE_NAMES.len());
        } else {
            assert!(snap.is_empty());
        }
        super::reset(); // must not panic either way
    }
}
