//! Pluggable instruction-selection priority.
//!
//! Every cycle the issue stage gathers the operand-ready issue-queue
//! entries and asks the [`SelectPolicy`] to order them; the pipeline then
//! assigns them greedily to free lanes. The paper's three policies (§3.5)
//! differ only in this ordering:
//!
//! * **ABS** (age-based) — oldest first, via the 6-bit modulo-64 timestamp
//!   ([`AgeBasedSelect`], provided here; also the policy the fault-free and
//!   Error Padding baselines use, §4.2);
//! * **FFS** (faulty-first) — predicted-faulty instructions first, age
//!   otherwise (in `tv-core`);
//! * **CDS** (criticality-driven) — faulty *and critical* first, age
//!   otherwise (in `tv-core`).

use tv_workloads::OpClass;

/// A selection candidate: one operand-ready issue-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueCandidate {
    /// Slab slot of the instruction.
    pub slot: crate::inflight::SlotId,
    /// Dynamic sequence number (true age; unique).
    pub seq: u64,
    /// 6-bit modulo-64 dispatch timestamp (what the ABS hardware compares).
    pub timestamp: u8,
    /// TEP predicted-faulty bit from the issue-queue entry (§3.2.1).
    pub faulty: bool,
    /// CDL criticality bit (§3.5.2).
    pub critical: bool,
    /// Operation class (for lane assignment).
    pub op: OpClass,
}

/// Instruction-selection priority policy.
///
/// Implementations reorder `candidates` in place, highest priority first.
/// The ordering must be a permutation — the pipeline asserts no candidate
/// is lost.
pub trait SelectPolicy {
    /// Short name for reports (e.g. `"ABS"`).
    fn name(&self) -> &'static str;

    /// Orders `candidates`, highest selection priority first.
    fn prioritize(&mut self, candidates: &mut [IssueCandidate]);
}

/// Age-based selection: oldest instruction first.
///
/// Hardware compares 6-bit modulo-64 timestamps; the simulator uses the
/// unique sequence number, which yields the identical order whenever the
/// in-flight age span is below 64 (guaranteed here because timestamps are
/// assigned at dispatch and the issue queue is far smaller than 64).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgeBasedSelect;

impl AgeBasedSelect {
    /// Creates the policy.
    pub fn new() -> Self {
        AgeBasedSelect
    }
}

impl SelectPolicy for AgeBasedSelect {
    fn name(&self) -> &'static str {
        "ABS"
    }

    fn prioritize(&mut self, candidates: &mut [IssueCandidate]) {
        // Unstable sort: `seq` is unique, so the order is total and the
        // result is a pure function of the candidate *set* — and the
        // unstable sort never allocates, keeping the issue stage on the
        // zero-allocation steady-state path.
        candidates.sort_unstable_by_key(|c| c.seq);
    }
}

/// The 6-bit relative age the ABS comparator computes (paper §3.5): the
/// modulo-64 distance from the oldest in-flight timestamp `head` up to
/// `ts`. Ordering candidates by this key reproduces true dispatch order
/// whenever the in-flight age span is below 64 — including across the
/// 63→0 counter wrap — which is what lets the hardware compare 6-bit
/// timestamps instead of full sequence numbers. [`AgeBasedSelect`] sorts
/// by the unique `seq`, which the tests below pin as equivalent.
pub fn mod64_age(ts: u8, head: u8) -> u8 {
    ts.wrapping_sub(head) & 63
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn candidate(seq: u64, faulty: bool, critical: bool) -> IssueCandidate {
        IssueCandidate {
            slot: seq as usize,
            seq,
            timestamp: (seq % 64) as u8,
            faulty,
            critical,
            op: OpClass::IntAlu,
        }
    }

    #[test]
    fn abs_orders_by_age() {
        let mut cands = vec![
            candidate(30, true, true),
            candidate(10, false, false),
            candidate(20, true, false),
        ];
        AgeBasedSelect::new().prioritize(&mut cands);
        let seqs: Vec<u64> = cands.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![10, 20, 30]);
        assert_eq!(AgeBasedSelect::new().name(), "ABS");
    }

    #[test]
    fn abs_ignores_fault_bits() {
        let mut cands = vec![candidate(2, true, true), candidate(1, false, false)];
        AgeBasedSelect::new().prioritize(&mut cands);
        assert_eq!(cands[0].seq, 1);
    }

    #[test]
    fn mod64_age_handles_counter_wraparound() {
        // Head at timestamp 62: the wrap (62, 63, 0, 1) still orders.
        assert_eq!(mod64_age(62, 62), 0);
        assert_eq!(mod64_age(63, 62), 1);
        assert_eq!(mod64_age(0, 62), 2);
        assert_eq!(mod64_age(1, 62), 3);
        // The youngest representable age is head - 1 (mod 64).
        assert_eq!(mod64_age(61, 62), 63);
    }

    #[test]
    fn mod64_age_matches_seq_order_across_wrap() {
        // Any window of in-flight instructions whose age span is < 64
        // orders identically by 6-bit relative age and by unique seq —
        // exercised across every alignment of the 63→0 wrap.
        for start in 0..128u64 {
            let seqs: Vec<u64> = (start..start + 63).rev().collect();
            let head_ts = (start % 64) as u8;
            let mut by_age: Vec<u64> = seqs.clone();
            by_age.sort_by_key(|&s| mod64_age((s % 64) as u8, head_ts));
            let mut by_seq = seqs;
            by_seq.sort_unstable();
            assert_eq!(by_age, by_seq, "window starting at {start}");
        }
    }

    #[test]
    fn abs_seq_sort_equals_hardware_timestamp_sort() {
        // A realistic post-wrap issue-queue snapshot: ages 60..72 mod 64.
        let mut cands: Vec<IssueCandidate> =
            [70, 61, 63, 66, 60, 64, 71, 62].iter().map(|&s| candidate(s, false, false)).collect();
        let head_ts = cands.iter().map(|c| c.timestamp).min_by_key(|&t| mod64_age(t, 60)).unwrap();
        assert_eq!(head_ts, 60 % 64);
        let mut by_hw = cands.clone();
        by_hw.sort_by_key(|c| mod64_age(c.timestamp, head_ts));
        AgeBasedSelect::new().prioritize(&mut cands);
        assert_eq!(by_hw, cands, "ABS order must match the 6-bit comparator");
    }
}
