//! Pluggable instruction-selection priority.
//!
//! Every cycle the issue stage gathers the operand-ready issue-queue
//! entries and asks the [`SelectPolicy`] to order them; the pipeline then
//! assigns them greedily to free lanes. The paper's three policies (§3.5)
//! differ only in this ordering:
//!
//! * **ABS** (age-based) — oldest first, via the 6-bit modulo-64 timestamp
//!   ([`AgeBasedSelect`], provided here; also the policy the fault-free and
//!   Error Padding baselines use, §4.2);
//! * **FFS** (faulty-first) — predicted-faulty instructions first, age
//!   otherwise (in `tv-core`);
//! * **CDS** (criticality-driven) — faulty *and critical* first, age
//!   otherwise (in `tv-core`).

use tv_workloads::OpClass;

/// A selection candidate: one operand-ready issue-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueCandidate {
    /// Slab slot of the instruction.
    pub slot: crate::inflight::SlotId,
    /// Dynamic sequence number (true age; unique).
    pub seq: u64,
    /// 6-bit modulo-64 dispatch timestamp (what the ABS hardware compares).
    pub timestamp: u8,
    /// TEP predicted-faulty bit from the issue-queue entry (§3.2.1).
    pub faulty: bool,
    /// CDL criticality bit (§3.5.2).
    pub critical: bool,
    /// Operation class (for lane assignment).
    pub op: OpClass,
}

/// Instruction-selection priority policy.
///
/// Implementations reorder `candidates` in place, highest priority first.
/// The ordering must be a permutation — the pipeline asserts no candidate
/// is lost.
pub trait SelectPolicy {
    /// Short name for reports (e.g. `"ABS"`).
    fn name(&self) -> &'static str;

    /// Orders `candidates`, highest selection priority first.
    fn prioritize(&mut self, candidates: &mut [IssueCandidate]);
}

/// Age-based selection: oldest instruction first.
///
/// Hardware compares 6-bit modulo-64 timestamps; the simulator uses the
/// unique sequence number, which yields the identical order whenever the
/// in-flight age span is below 64 (guaranteed here because timestamps are
/// assigned at dispatch and the issue queue is far smaller than 64).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgeBasedSelect;

impl AgeBasedSelect {
    /// Creates the policy.
    pub fn new() -> Self {
        AgeBasedSelect
    }
}

impl SelectPolicy for AgeBasedSelect {
    fn name(&self) -> &'static str {
        "ABS"
    }

    fn prioritize(&mut self, candidates: &mut [IssueCandidate]) {
        candidates.sort_by_key(|c| c.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn candidate(seq: u64, faulty: bool, critical: bool) -> IssueCandidate {
        IssueCandidate {
            slot: seq as usize,
            seq,
            timestamp: (seq % 64) as u8,
            faulty,
            critical,
            op: OpClass::IntAlu,
        }
    }

    #[test]
    fn abs_orders_by_age() {
        let mut cands = vec![
            candidate(30, true, true),
            candidate(10, false, false),
            candidate(20, true, false),
        ];
        AgeBasedSelect::new().prioritize(&mut cands);
        let seqs: Vec<u64> = cands.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![10, 20, 30]);
        assert_eq!(AgeBasedSelect::new().name(), "ABS");
    }

    #[test]
    fn abs_ignores_fault_bits() {
        let mut cands = vec![candidate(2, true, true), candidate(1, false, false)];
        AgeBasedSelect::new().prioritize(&mut cands);
        assert_eq!(cands[0].seq, 1);
    }
}
