//! Load/store queue with store-to-load forwarding.
//!
//! The memory stage's CAM search over the store queue is the structure the
//! paper identifies as the other timing-error hotspot besides wakeup/select
//! (§3.3.4: "when the CAM search results in several tag matches, we observe
//! additional delay in this stage"). Searches are counted for the energy
//! model, and the number of address matches in a search is reported so the
//! caller can model match-dependent delay.
//!
//! Ordering model: loads may issue past older stores with unresolved
//! addresses (no memory-dependence predictor and no ordering violations are
//! modelled — the trace carries exact addresses, so a forwarding match
//! against a *resolved* older store is always correct; this optimistic
//! disambiguation is a documented substitution).

use std::collections::VecDeque;

/// One store-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoreEntry {
    seq: u64,
    /// 8-byte-aligned effective address.
    addr: u64,
    /// Cycle the address becomes resolved (AGEN completion).
    resolved_at: u64,
}

/// Result of a load's store-queue search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchResult {
    /// Whether an older resolved store matched (forwarding hit).
    pub forwarded: bool,
    /// Number of CAM address matches observed (≥ 1 when `forwarded`).
    pub matches: u32,
}

/// The load/store queue.
#[derive(Debug, Clone)]
pub struct Lsq {
    stores: VecDeque<StoreEntry>,
    /// Combined occupancy (loads tracked only as a count; loads leave at
    /// completion, stores at retire).
    loads_in_flight: usize,
    capacity: usize,
    /// Total CAM searches performed (energy accounting).
    pub searches: u64,
}

impl Lsq {
    /// Creates an LSQ with `capacity` combined entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LSQ capacity must be positive");
        Lsq {
            stores: VecDeque::new(),
            loads_in_flight: 0,
            capacity,
            searches: 0,
        }
    }

    /// Free entries remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.stores.len() - self.loads_in_flight
    }

    /// Allocates a load entry at dispatch. Returns `false` if full.
    pub fn alloc_load(&mut self) -> bool {
        if self.free() == 0 {
            return false;
        }
        self.loads_in_flight += 1;
        true
    }

    /// Allocates a store entry at dispatch. Returns `false` if full.
    pub fn alloc_store(&mut self, seq: u64) -> bool {
        if self.free() == 0 {
            return false;
        }
        self.stores.push_back(StoreEntry {
            seq,
            addr: u64::MAX,
            resolved_at: u64::MAX,
        });
        true
    }

    /// Records a store's effective address once AGEN completes.
    pub fn resolve_store(&mut self, seq: u64, addr: u64, cycle: u64) {
        if let Some(e) = self.stores.iter_mut().find(|e| e.seq == seq) {
            e.addr = addr & !7;
            e.resolved_at = cycle;
        }
    }

    /// CAM-searches the store queue on behalf of a load (`seq`, `addr`)
    /// executing at `cycle`. Only *older*, *resolved* stores participate.
    pub fn search_for_load(&mut self, seq: u64, addr: u64, cycle: u64) -> SearchResult {
        self.searches += 1;
        let addr = addr & !7;
        let mut matches = 0u32;
        for e in &self.stores {
            if e.seq < seq && e.resolved_at <= cycle && e.addr == addr {
                matches += 1;
            }
        }
        SearchResult {
            forwarded: matches > 0,
            matches,
        }
    }

    /// Releases a completed load.
    ///
    /// # Panics
    ///
    /// Panics if no load is in flight (accounting bug).
    pub fn release_load(&mut self) {
        assert!(self.loads_in_flight > 0, "no load to release");
        self.loads_in_flight -= 1;
    }

    /// Releases a store at retire.
    pub fn retire_store(&mut self, seq: u64) {
        if let Some(pos) = self.stores.iter().position(|e| e.seq == seq) {
            self.stores.remove(pos);
        }
    }

    /// Squashes all entries with `seq > keep_seq` (and in-flight loads are
    /// handled by the caller via [`release_load`](Lsq::release_load)).
    pub fn squash_stores_after(&mut self, keep_seq: u64) {
        self.stores.retain(|e| e.seq <= keep_seq);
    }

    /// Current number of store-queue entries.
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Combined occupancy (loads + stores).
    pub fn occupancy(&self) -> usize {
        self.stores.len() + self.loads_in_flight
    }

    /// Store-queue sequence numbers, oldest first (auditor scan).
    pub fn store_seqs(&self) -> Vec<u64> {
        self.stores.iter().map(|e| e.seq).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_from_older_resolved_store() {
        let mut lsq = Lsq::new(8);
        assert!(lsq.alloc_store(5));
        lsq.resolve_store(5, 0x1000, 10);
        let r = lsq.search_for_load(7, 0x1000, 12);
        assert!(r.forwarded);
        assert_eq!(r.matches, 1);
        assert_eq!(lsq.searches, 1);
    }

    #[test]
    fn younger_or_unresolved_stores_do_not_forward() {
        let mut lsq = Lsq::new(8);
        lsq.alloc_store(9); // younger than the load below
        lsq.resolve_store(9, 0x2000, 1);
        assert!(!lsq.search_for_load(7, 0x2000, 5).forwarded);
        lsq.alloc_store(3); // older but unresolved
        assert!(!lsq.search_for_load(7, 0x3000, 5).forwarded);
        lsq.resolve_store(3, 0x3000, 6);
        assert!(!lsq.search_for_load(7, 0x3000, 5).forwarded, "not resolved yet at 5");
        assert!(lsq.search_for_load(7, 0x3000, 6).forwarded);
    }

    #[test]
    fn capacity_accounting() {
        let mut lsq = Lsq::new(3);
        assert!(lsq.alloc_load());
        assert!(lsq.alloc_store(1));
        assert!(lsq.alloc_load());
        assert_eq!(lsq.free(), 0);
        assert!(!lsq.alloc_load());
        assert!(!lsq.alloc_store(2));
        lsq.release_load();
        assert_eq!(lsq.free(), 1);
        lsq.retire_store(1);
        assert_eq!(lsq.free(), 2);
    }

    #[test]
    fn multiple_matches_counted() {
        let mut lsq = Lsq::new(8);
        for seq in [1, 2, 3] {
            lsq.alloc_store(seq);
            lsq.resolve_store(seq, 0x4000, 1);
        }
        let r = lsq.search_for_load(10, 0x4000, 5);
        assert_eq!(r.matches, 3);
    }

    #[test]
    fn squash_drops_young_stores() {
        let mut lsq = Lsq::new(8);
        for seq in [1, 5, 9] {
            lsq.alloc_store(seq);
        }
        lsq.squash_stores_after(5);
        assert_eq!(lsq.store_count(), 2);
        lsq.squash_stores_after(0);
        assert_eq!(lsq.store_count(), 0);
    }

    #[test]
    #[should_panic(expected = "no load to release")]
    fn release_without_alloc_panics() {
        let mut lsq = Lsq::new(2);
        lsq.release_load();
    }
}
