//! Two-level cache hierarchy (paper §4.2).
//!
//! 32 KB 4-way split L1 I/D at 1-cycle latency; unified 8 MB 16-way L2 at
//! 25 cycles; main memory at 240 cycles. True LRU within each set,
//! write-allocate, and (for simulation-speed reasons) a latency-only miss
//! model: misses return the fill latency rather than modelling MSHR
//! contention.

/// One set-associative cache level.
///
/// Tags live in a single flat array, `ways` consecutive slots per set in
/// LRU order (front = MRU). Keeping each set contiguous and fixed-width
/// makes an access one predictable cache-line touch instead of a pointer
/// chase through per-set heap vectors; LRU maintenance is a short
/// `rotate_right` over at most `ways` words.
#[derive(Debug, Clone)]
struct CacheLevel {
    /// `sets * ways` tags; `u64::MAX` marks a never-filled way.
    tags: Vec<u64>,
    ways: usize,
    set_shift: u32,
    set_mask: u64,
}

/// Sentinel for an invalid way. Real tags are shifted-down addresses and
/// can never reach it.
const INVALID: u64 = u64::MAX;

impl CacheLevel {
    fn new(bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let lines = bytes / line_bytes;
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheLevel {
            tags: vec![INVALID; sets * ways],
            ways,
            set_shift: line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    /// Accesses `addr`; returns `true` on hit. Allocates on miss.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let base = set * self.ways;
        let window = &mut self.tags[base..base + self.ways];
        if let Some(pos) = window.iter().position(|&t| t == tag) {
            window[..=pos].rotate_right(1);
            window[0] = tag;
            true
        } else {
            // Shift everything down one way (the LRU falls off the end —
            // or a trailing INVALID does, while the set is still filling)
            // and install the new line as MRU.
            window.rotate_right(1);
            window[0] = tag;
            false
        }
    }
}

/// Access statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]` (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The split-L1 + unified-L2 hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1i: CacheLevel,
    l1d: CacheLevel,
    l2: CacheLevel,
    l1_latency: u64,
    l2_latency: u64,
    mem_latency: u64,
    /// Stats: [l1i, l1d, l2].
    pub l1i_stats: CacheStats,
    pub l1d_stats: CacheStats,
    pub l2_stats: CacheStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy from a core configuration.
    pub fn new(cfg: &crate::config::CoreConfig) -> Self {
        CacheHierarchy {
            l1i: CacheLevel::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
            l1d: CacheLevel::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
            l2: CacheLevel::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes),
            l1_latency: cfg.l1_latency,
            l2_latency: cfg.l2_latency,
            mem_latency: cfg.mem_latency,
            l1i_stats: CacheStats::default(),
            l1d_stats: CacheStats::default(),
            l2_stats: CacheStats::default(),
        }
    }

    /// Instruction fetch of `pc`; returns access latency in cycles.
    pub fn access_inst(&mut self, pc: u64) -> u64 {
        self.l1i_stats.accesses += 1;
        if self.l1i.access(pc) {
            return self.l1_latency;
        }
        self.l1i_stats.misses += 1;
        self.l2_stats.accesses += 1;
        if self.l2.access(pc) {
            return self.l2_latency;
        }
        self.l2_stats.misses += 1;
        self.mem_latency
    }

    /// Data access of `addr`; returns access latency in cycles.
    pub fn access_data(&mut self, addr: u64) -> u64 {
        self.l1d_stats.accesses += 1;
        if self.l1d.access(addr) {
            return self.l1_latency;
        }
        self.l1d_stats.misses += 1;
        self.l2_stats.accesses += 1;
        if self.l2.access(addr) {
            return self.l2_latency;
        }
        self.l2_stats.misses += 1;
        self.mem_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&CoreConfig::core1())
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = hierarchy();
        assert_eq!(c.access_data(0x1000), 240); // cold: miss everywhere
        assert_eq!(c.access_data(0x1000), 1); // now L1 hit
        assert_eq!(c.access_data(0x1008), 1); // same line
        assert_eq!(c.l1d_stats.accesses, 3);
        assert_eq!(c.l1d_stats.misses, 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut c = hierarchy();
        // Fill one L1 set beyond its associativity: L1 is 32 KB 4-way with
        // 64 B lines ⇒ 128 sets ⇒ stride 128 × 64 = 8 KB maps to one set.
        let stride = 8 * 1024u64;
        for i in 0..5 {
            c.access_data(i * stride);
        }
        // address 0 was evicted from L1 but still lives in L2
        let lat = c.access_data(0);
        assert_eq!(lat, 25, "expected an L2 hit");
    }

    #[test]
    fn instruction_and_data_are_split() {
        let mut c = hierarchy();
        c.access_inst(0x4000);
        // the same address misses on the data side: separate L1s, but the
        // L2 is unified, so it is an L2 hit.
        assert_eq!(c.access_data(0x4000), 25);
    }

    #[test]
    fn streaming_beyond_l2_goes_to_memory() {
        let mut c = hierarchy();
        // touch 16 MB > 8 MB L2 with 64 B stride, then re-touch the start:
        // evicted from L2 ⇒ memory latency again.
        for addr in (0..16 * 1024 * 1024u64).step_by(64) {
            c.access_data(addr);
        }
        assert_eq!(c.access_data(0), 240);
        assert!(c.l2_stats.miss_rate() > 0.9);
    }

    #[test]
    fn miss_rate_of_untouched_cache_is_zero() {
        let c = hierarchy();
        assert_eq!(c.l1d_stats.miss_rate(), 0.0);
    }
}
