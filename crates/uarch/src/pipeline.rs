//! The pipeline driver: fetch → decode → rename → dispatch → issue →
//! register read → execute/memory → writeback → retire.
//!
//! # Modelling notes (substitutions documented in DESIGN.md)
//!
//! * **Trace-driven**: instructions arrive pre-resolved from a
//!   [`WorkloadSource`] — the synthetic
//!   [`TraceGenerator`](tv_workloads::TraceGenerator) or a real RISC-V
//!   program. On a branch misprediction the machine does not
//!   fetch wrong-path instructions; fetch blocks until the branch resolves
//!   and then pays the redirect latency, reproducing the ~10-cycle
//!   misprediction loop of the Core-1 configuration.
//! * **Replay** (Razor-style recovery, paper §2.1.2): an unpredicted
//!   timing violation squashes the faulty instruction and everything
//!   younger, rolls back the rename state, and refetches from the trace.
//!   The replayed instance runs violation-free (the recovery restores the
//!   guard band).
//! * **Error Padding** (paper §5, baseline of [12, 13]): a predicted
//!   violation freezes the whole pipeline for one cycle while the faulty
//!   stage takes its second cycle.
//! * **Violation-aware scheduling** (the contribution, §3): the predicted
//!   faulty instruction takes one extra cycle in its faulty stage; the lane
//!   it occupies is frozen for one cycle (issue-slot management, FUSR,
//!   read-port blocking, writeback-slot recirculation); and its result
//!   broadcast is delayed so dependents are held back exactly one cycle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use tv_audit::{AuditLevel, AuditReport, AuditSnapshot, Auditor};
use tv_tep::{Tep, TepConfig};
use tv_timing::{FaultCalibration, FaultModel, PipeStage, SensorModel, Voltage};
use tv_oracle::Semantics;
use tv_workloads::{Benchmark, OpClass, Profile, TraceInst, WorkloadSpec};

use crate::branch::BranchPredictor;
use crate::cache::CacheHierarchy;
use crate::cosim::{Feed, FedInst};
use crate::config::{CoreConfig, LaneKind, RecoveryModel};
use crate::exec::ExecUnits;
use crate::inflight::{InFlightInst, Slab, SlotId};
use crate::issue_queue::IssueQueue;
use crate::lsq::Lsq;
use crate::policy::{AgeBasedSelect, IssueCandidate, SelectPolicy};
use crate::profile::{stage, timed_stage};
use crate::rename::RenameTable;
use crate::rob::Rob;
use crate::stats::SimStats;
use crate::values::ValuePlane;
use crate::watchdog::{RobHeadDump, WatchdogError};

pub use tv_oracle::OracleReport;

/// How the machine tolerates timing violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToleranceMode {
    /// Golden run at nominal voltage: no faults occur.
    FaultFree,
    /// No prediction; every violation is corrected by instruction replay.
    Razor,
    /// Predicted violations stall the entire pipeline for one cycle
    /// (the baseline scheme of [12, 13]).
    ErrorPadding,
    /// The paper's violation-aware scheduling (VTE + delayed broadcast +
    /// slot freezing); selection priority comes from the [`SelectPolicy`].
    ViolationAware,
    /// Deliberately broken control: faults are injected but *nothing*
    /// tolerates them — no prediction, no stall, no replay. Violations
    /// survive to retirement and corrupt the committed value. Exists to
    /// prove the golden-model oracle detects corruption (it is not a real
    /// scheme and never appears in the paper's figures).
    NoTolerance,
}

impl ToleranceMode {
    /// Whether this mode uses the TEP.
    pub fn uses_predictor(self) -> bool {
        matches!(self, ToleranceMode::ErrorPadding | ToleranceMode::ViolationAware)
    }

    /// Whether this mode corrects violations at all ([`NoTolerance`]
    /// being the sole mode that lets them through).
    ///
    /// [`NoTolerance`]: ToleranceMode::NoTolerance
    pub fn tolerates(self) -> bool {
        self != ToleranceMode::NoTolerance
    }
}

/// Maximum occupancy of each inter-stage buffer.
const FRONT_BUF: usize = 8;
/// Instructions profiled to calibrate the fault model's critical-PC set.
const FAULT_CALIBRATION_PROBE: u64 = 300_000;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A mispredicted branch resolves; fetch may redirect.
    Resolve { slot: SlotId, seq: u64 },
    /// An unpredicted timing violation is detected; replay.
    ReplayFault {
        slot: SlotId,
        seq: u64,
        stage: PipeStage,
    },
}

/// A scheduled [`Event`] in the pipeline's min-heap event queue. The
/// monotonic `order` counter preserves scheduling order among events that
/// fire in the same cycle (the order the old per-cycle `Vec` gave).
#[derive(Debug, Clone, Copy)]
struct ScheduledEvent {
    time: u64,
    order: u64,
    event: Event,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.order == other.order
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.order).cmp(&(other.time, other.order))
    }
}

/// Configures and builds a [`Pipeline`]. Fields are crate-visible so the
/// co-sim driver ([`crate::cosim::CoSim`]) can validate that a bundle of
/// builders is co-simulable and reuse the solo build path per lane.
pub struct PipelineBuilder {
    pub(crate) workload: WorkloadSpec,
    pub(crate) seed: u64,
    pub(crate) cfg: CoreConfig,
    pub(crate) mode: ToleranceMode,
    pub(crate) vdd: Voltage,
    pub(crate) policy: Option<Box<dyn SelectPolicy>>,
    pub(crate) tep_config: TepConfig,
    pub(crate) criticality_threshold: u32,
    pub(crate) sensor: Option<SensorModel>,
    pub(crate) fast_forward: u64,
    pub(crate) calibration: Option<FaultCalibration>,
    pub(crate) audit_level: AuditLevel,
    pub(crate) record_commits: bool,
    pub(crate) oracle: bool,
}

impl PipelineBuilder {
    /// Overrides the machine configuration (default: Core-1).
    pub fn config(mut self, cfg: CoreConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the tolerance mode (default: [`ToleranceMode::FaultFree`]).
    pub fn tolerance(mut self, mode: ToleranceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the supply voltage (default: 1.04 V for faulty modes, nominal
    /// for fault-free).
    pub fn voltage(mut self, vdd: Voltage) -> Self {
        self.vdd = vdd;
        self
    }

    /// Sets the selection policy (default: age-based, ABS).
    pub fn policy(mut self, policy: Box<dyn SelectPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Overrides the TEP geometry.
    pub fn tep_config(mut self, cfg: TepConfig) -> Self {
        self.tep_config = cfg;
        self
    }

    /// Sets the CDL criticality threshold CT (default 8; paper §3.5.2).
    pub fn criticality_threshold(mut self, ct: u32) -> Self {
        self.criticality_threshold = ct;
        self
    }

    /// Installs a thermal/voltage sensor model (default: quiescent).
    pub fn sensor(mut self, sensor: SensorModel) -> Self {
        self.sensor = Some(sensor);
        self
    }

    /// Skips `n` trace instructions before simulation (SimPoint phase
    /// start).
    pub fn fast_forward(mut self, n: u64) -> Self {
        self.fast_forward = n;
        self
    }

    /// Overrides the fault calibration (default: the benchmark profile's
    /// Table 1 rates).
    pub fn calibration(mut self, cal: FaultCalibration) -> Self {
        self.calibration = Some(cal);
        self
    }

    /// Enables the cycle-level invariant auditor (default:
    /// [`AuditLevel::Off`], which costs nothing per cycle).
    pub fn audit(mut self, level: AuditLevel) -> Self {
        self.audit_level = level;
        self
    }

    /// Records the architectural commit stream — `(seq, pc, op)` per
    /// committed instruction — for differential scheme comparison
    /// (default: off).
    pub fn record_commits(mut self, enable: bool) -> Self {
        self.record_commits = enable;
        self
    }

    /// Enables the architectural value plane and golden-model oracle
    /// (default: off, which costs nothing per cycle): every committed
    /// destination value is checked against an independent in-order
    /// reference machine, and untolerated violations corrupt the victim's
    /// committed value so silent-data-corruption escapes are caught. See
    /// [`Pipeline::oracle_report`].
    pub fn oracle(mut self, enable: bool) -> Self {
        self.oracle = enable;
        self
    }

    /// Builds the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid.
    pub fn build(self) -> Pipeline {
        let fault_model = self.make_fault_model();
        let mut gen = self.workload.source(self.seed);
        if self.fast_forward > 0 {
            gen.fast_forward(self.fast_forward);
        }
        self.build_with(Feed::Direct(gen), fault_model)
    }

    /// The fault calibration a build would use (explicit override or the
    /// workload profile's Table 1 rates).
    pub(crate) fn resolved_calibration(&self) -> FaultCalibration {
        self.calibration.unwrap_or_else(|| {
            let (rate_097, rate_104) = self.workload.fault_rates();
            FaultCalibration::from_rates(rate_097, rate_104)
        })
    }

    /// The sensor model a build would use (override or quiescent).
    pub(crate) fn resolved_sensor(&self) -> SensorModel {
        self.sensor.unwrap_or_else(SensorModel::quiescent)
    }

    /// Builds the fault model exactly as [`build`](Self::build) would —
    /// including the calibration probe over a fresh trace stream. The
    /// co-sim driver calls this once per bundle and clones the result into
    /// each faulty lane, so a shared model is bit-identical to a solo one.
    pub(crate) fn make_fault_model(&self) -> Option<FaultModel> {
        if self.mode == ToleranceMode::FaultFree {
            return None;
        }
        let cal = self.resolved_calibration();
        let sensor = self.resolved_sensor();
        // Profile the dynamic PC frequencies once so the critical-PC
        // set can be calibrated to the workload's measured fault rate
        // (the trace is regenerated; the simulated stream is untouched;
        // finite workloads may end before the probe budget runs out).
        let mut probe = self.workload.source(self.seed);
        probe.fast_forward(self.fast_forward);
        let mut weights: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for _ in 0..FAULT_CALIBRATION_PROBE {
            match probe.next_inst() {
                Some(t) => *weights.entry(t.pc).or_default() += 1,
                None => break,
            }
        }
        Some(FaultModel::calibrated(
            cal, self.vdd, self.seed, sensor, weights,
        ))
    }

    /// Builds the pipeline around an explicit instruction feed and fault
    /// model — the shared tail of [`build`](Self::build) (solo, direct
    /// feed) and the co-sim driver (shared-frontend cursor).
    pub(crate) fn build_with(self, gen: Feed, fault_model: Option<FaultModel>) -> Pipeline {
        self.cfg.validate();
        let semantics = match &self.workload {
            WorkloadSpec::Synthetic(_) => Semantics::Synthetic,
            WorkloadSpec::Riscv(program) => Semantics::Riscv(program.clone()),
        };
        let tep = self
            .mode
            .uses_predictor()
            .then(|| Tep::new(self.tep_config));
        let caches = CacheHierarchy::new(&self.cfg);
        let exec = ExecUnits::new(&self.cfg);
        let iq_entries = self.cfg.iq_entries;
        let phys_regs = self.cfg.phys_regs;
        Pipeline {
            rename: RenameTable::new(self.cfg.phys_regs),
            rob: Rob::new(self.cfg.rob_entries),
            iq: IssueQueue::new(self.cfg.iq_entries),
            lsq: Lsq::new(self.cfg.lsq_entries),
            bp: BranchPredictor::default_geometry(),
            policy: self.policy.unwrap_or_else(|| Box::new(AgeBasedSelect::new())),
            criticality_threshold: self.criticality_threshold,
            caches,
            exec,
            slab: Slab::new(),
            gen,
            workload_done: false,
            fault_model,
            tep,
            mode: self.mode,
            cfg: self.cfg,
            cycle: 0,
            fetch_q: VecDeque::new(),
            decode_q: VecDeque::new(),
            rename_q: VecDeque::new(),
            refetch: VecDeque::new(),
            fetch_stall_until: 0,
            fetch_blocked_on: None,
            pending_ep_stalls: 0,
            pending_recovery_stalls: 0,
            stall_skip: 0,
            rename_stall_until: 0,
            dispatch_stall_until: 0,
            retire_stall_until: 0,
            events: BinaryHeap::with_capacity(64),
            event_order: 0,
            next_commit_seq: self.fast_forward,
            timestamp_counter: 0,
            last_fetch_line: u64::MAX,
            commit_limit: u64::MAX,
            stats: SimStats::default(),
            cycle_base: 0,
            freeze_base: 0,
            search_base: 0,
            cache_base: Default::default(),
            audit: self.audit_level.enabled().then(|| Auditor::new(self.audit_level)),
            audit_admits: [0; 3],
            audit_charges: Vec::new(),
            commit_log: self.record_commits.then(Vec::new),
            values: self.oracle.then(|| ValuePlane::new(phys_regs, semantics)),
            cand_buf: Vec::with_capacity(iq_entries),
            lane_blocked: Vec::new(),
            sq_renamed: Vec::new(),
            sq_decoded: Vec::new(),
            sq_fetched: Vec::new(),
            sq_rob: Vec::new(),
            sq_ordered: Vec::new(),
        }
    }
}

/// The cycle-level out-of-order pipeline.
pub struct Pipeline {
    cfg: CoreConfig,
    mode: ToleranceMode,
    gen: Feed,
    /// The workload stream has ended (a finite RISC-V program halted).
    workload_done: bool,
    fault_model: Option<FaultModel>,
    tep: Option<Tep>,
    policy: Box<dyn SelectPolicy>,
    criticality_threshold: u32,
    bp: BranchPredictor,
    caches: CacheHierarchy,
    rename: RenameTable,
    rob: Rob,
    iq: IssueQueue,
    lsq: Lsq,
    exec: ExecUnits,
    slab: Slab,
    cycle: u64,
    /// Fetched, waiting for decode: `(ready_cycle, slot)`.
    fetch_q: VecDeque<(u64, SlotId)>,
    /// Decoded, waiting for rename.
    decode_q: VecDeque<(u64, SlotId)>,
    /// Renamed, waiting for dispatch.
    rename_q: VecDeque<(u64, SlotId)>,
    /// Squashed instructions awaiting refetch; `bool` = fault cleared.
    refetch: VecDeque<(TraceInst, bool)>,
    fetch_stall_until: u64,
    /// Sequence number of an unresolved mispredicted branch blocking fetch.
    fetch_blocked_on: Option<u64>,
    /// Whole-pipeline stall cycles owed by the EP scheme.
    pending_ep_stalls: u64,
    /// Whole-pipeline recovery bubbles owed by in-situ replays.
    pending_recovery_stalls: u64,
    /// Remaining interior cycles of a coalesced stall window whose
    /// timestamp shift was already applied up front (audit-off fast path).
    stall_skip: u64,
    /// TEP-driven stall signals for in-order stages (paper §2.2): the
    /// stage is held so a predicted-faulty instruction completes in two
    /// cycles while the other stages' inputs recirculate.
    rename_stall_until: u64,
    dispatch_stall_until: u64,
    retire_stall_until: u64,
    events: BinaryHeap<Reverse<ScheduledEvent>>,
    /// Monotonic tie-break for same-cycle events.
    event_order: u64,
    next_commit_seq: u64,
    timestamp_counter: u8,
    last_fetch_line: u64,
    /// Retire stops once `committed` reaches this bound (set by `run`).
    commit_limit: u64,
    stats: SimStats,
    /// Measurement-window bases captured by `reset_stats`.
    cycle_base: u64,
    freeze_base: u64,
    search_base: u64,
    cache_base: (crate::cache::CacheStats, crate::cache::CacheStats),
    /// Invariant auditor, when enabled via the builder.
    audit: Option<Auditor>,
    /// Per-cycle stage admission counts [rename, dispatch, retire],
    /// maintained only while auditing.
    audit_admits: [u32; 3],
    /// In-order stall charges this cycle — `(stage, seq, admits at the
    /// charge)` — maintained only while auditing.
    audit_charges: Vec<(PipeStage, u64, u32)>,
    /// Architectural commit stream `(seq, pc, op)`, when recording.
    commit_log: Option<Vec<(u64, u64, u8)>>,
    /// Architectural value plane + golden-model oracle, when enabled via
    /// the builder ([`PipelineBuilder::oracle`]). `None` costs nothing.
    values: Option<ValuePlane>,
    /// Scratch buffers reused across cycles so the steady-state hot path
    /// allocates nothing: issue candidates, the per-lane select mask, and
    /// the squash-path drain/rollback/reorder lists.
    cand_buf: Vec<IssueCandidate>,
    lane_blocked: Vec<bool>,
    sq_renamed: Vec<SlotId>,
    sq_decoded: Vec<SlotId>,
    sq_fetched: Vec<SlotId>,
    sq_rob: Vec<SlotId>,
    sq_ordered: Vec<SlotId>,
}

impl Pipeline {
    /// Starts a builder for one of the paper's SPEC CPU2006 benchmarks.
    pub fn builder(bench: Benchmark, seed: u64) -> PipelineBuilder {
        Self::builder_with_profile(bench.profile(), seed)
    }

    /// Starts a builder for an explicit synthetic workload profile.
    pub fn builder_with_profile(profile: Profile, seed: u64) -> PipelineBuilder {
        Self::builder_with_workload(WorkloadSpec::Synthetic(profile), seed)
    }

    /// Starts a builder for any workload — synthetic or a real RISC-V
    /// program.
    pub fn builder_with_workload(workload: WorkloadSpec, seed: u64) -> PipelineBuilder {
        PipelineBuilder {
            workload,
            seed,
            cfg: CoreConfig::core1(),
            mode: ToleranceMode::FaultFree,
            vdd: Voltage::low_fault(),
            policy: None,
            tep_config: TepConfig::paper_default(),
            criticality_threshold: 8,
            sensor: None,
            fast_forward: 0,
            calibration: None,
            audit_level: AuditLevel::Off,
            record_commits: false,
            oracle: false,
        }
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current occupancy of (issue queue, ROB, front-end buffers) — a
    /// bottleneck-analysis probe.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        (
            self.iq.len(),
            self.rob.len(),
            self.fetch_q.len() + self.decode_q.len() + self.rename_q.len(),
        )
    }

    /// TEP statistics, when a predictor is configured.
    pub fn tep_stats(&self) -> Option<tv_tep::TepStats> {
        self.tep.as_ref().map(|t| t.stats())
    }

    /// Runs until exactly `commits` more instructions have retired, then
    /// returns the final statistics. Retirement stops precisely at the
    /// target so runs of different schemes commit identical work.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant violation).
    /// Campaign-style callers that must survive deadlocks should use
    /// [`try_run`](Pipeline::try_run) instead.
    pub fn run(&mut self, commits: u64) -> SimStats {
        self.try_run(commits)
            .unwrap_or_else(|e| panic!("pipeline deadlock: {e}"))
    }

    /// Like [`run`](Pipeline::run), but when nothing commits for
    /// [`CoreConfig::watchdog_cycles`] cycles the watchdog trips and the
    /// simulation returns a structured [`WatchdogError`] diagnostic dump
    /// instead of panicking — a crash-isolated experiment harness records
    /// it as a per-tuple verdict and carries on.
    ///
    /// # Errors
    ///
    /// Returns the watchdog dump (cycle, ROB-head state, queue occupancy,
    /// active stall state) when the commit watchdog trips.
    pub fn try_run(&mut self, commits: u64) -> Result<SimStats, WatchdogError> {
        let target = self.stats.committed + commits;
        self.commit_limit = target;
        let mut last_commit_cycle = self.cycle;
        let mut last_committed = self.stats.committed;
        let threshold = self.cfg.watchdog_cycles;
        while self.stats.committed < target {
            self.step();
            if self.stats.committed != last_committed {
                last_committed = self.stats.committed;
                last_commit_cycle = self.cycle;
            }
            if self.cycle - last_commit_cycle >= threshold {
                return Err(self.watchdog_error(last_commit_cycle));
            }
        }
        self.finalize_stats();
        Ok(self.stats.clone())
    }

    /// Whether a finite workload has ended *and* every in-flight
    /// instruction has drained: nothing more will ever commit. Synthetic
    /// workloads never drain.
    pub fn drained(&self) -> bool {
        self.workload_done && self.refetch.is_empty() && self.slab.len() == 0
    }

    /// Runs a finite workload to its halt (or until `max_commits` more
    /// instructions retire, whichever comes first) and returns the final
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks; see
    /// [`try_run_to_halt`](Pipeline::try_run_to_halt).
    pub fn run_to_halt(&mut self, max_commits: u64) -> SimStats {
        self.try_run_to_halt(max_commits)
            .unwrap_or_else(|e| panic!("pipeline deadlock: {e}"))
    }

    /// Like [`try_run`](Pipeline::try_run), but also stops — successfully —
    /// once the workload is [`drained`](Pipeline::drained), so real
    /// programs run to their `ecall` halt. The commit watchdog stays
    /// armed throughout.
    ///
    /// # Errors
    ///
    /// Returns the watchdog's diagnostic dump when nothing commits for
    /// [`CoreConfig::watchdog_cycles`] cycles.
    pub fn try_run_to_halt(&mut self, max_commits: u64) -> Result<SimStats, WatchdogError> {
        let target = self.stats.committed.saturating_add(max_commits);
        self.commit_limit = target;
        let mut last_commit_cycle = self.cycle;
        let mut last_committed = self.stats.committed;
        let threshold = self.cfg.watchdog_cycles;
        while self.stats.committed < target && !self.drained() {
            self.step();
            if self.stats.committed != last_committed {
                last_committed = self.stats.committed;
                last_commit_cycle = self.cycle;
            }
            if self.cycle - last_commit_cycle >= threshold {
                return Err(self.watchdog_error(last_commit_cycle));
            }
        }
        self.finalize_stats();
        Ok(self.stats.clone())
    }

    /// Sets the retire-stop bound directly. The co-sim driver sets it to
    /// the phase-final target once per phase — exactly as `try_run` does —
    /// then advances in chunks; setting it per chunk instead would clamp
    /// retire mid-phase and fork the cycle stream from a solo run.
    pub(crate) fn set_commit_limit(&mut self, limit: u64) {
        self.commit_limit = limit;
    }

    /// Advances the machine until `committed` reaches `milestone` (or,
    /// when `stop_at_drain`, the workload drains), carrying the caller's
    /// watchdog window across calls. The loop body is identical to
    /// `try_run`'s, so a chunked run steps the very same cycles.
    pub(crate) fn step_toward(
        &mut self,
        milestone: u64,
        stop_at_drain: bool,
        wd_last_commit_cycle: &mut u64,
        wd_last_committed: &mut u64,
    ) -> Result<(), WatchdogError> {
        let threshold = self.cfg.watchdog_cycles;
        while self.stats.committed < milestone && !(stop_at_drain && self.drained()) {
            self.step();
            if self.stats.committed != *wd_last_committed {
                *wd_last_committed = self.stats.committed;
                *wd_last_commit_cycle = self.cycle;
            }
            if self.cycle - *wd_last_commit_cycle >= threshold {
                return Err(self.watchdog_error(*wd_last_commit_cycle));
            }
        }
        Ok(())
    }

    /// Closes a chunked run phase (the co-sim analogue of the
    /// `finalize_stats` call at the end of `try_run`).
    pub(crate) fn finish_phase(&mut self) {
        self.finalize_stats();
    }

    /// Materializes the watchdog's diagnostic dump of the stuck machine.
    fn watchdog_error(&self, last_commit_cycle: u64) -> WatchdogError {
        let rob_head = self.rob.head().map(|slot| {
            let inst = self.slab.get(slot);
            RobHeadDump {
                seq: inst.seq(),
                pc: inst.trace.pc,
                op: inst.trace.op,
                issue_cycle: inst.issue_cycle,
                complete_cycle: inst.complete_cycle,
                predicted_fault: inst.predicted_fault,
                actual_fault: inst.actual_fault,
            }
        });
        WatchdogError {
            cycle: self.cycle,
            last_commit_cycle,
            threshold: self.cfg.watchdog_cycles,
            committed: self.stats.committed,
            next_commit_seq: self.next_commit_seq,
            rob_head,
            rob_len: self.rob.len(),
            iq_len: self.iq.len(),
            lsq_occupancy: self.lsq.occupancy(),
            frontend_len: self.fetch_q.len() + self.decode_q.len() + self.rename_q.len(),
            pending_ep_stalls: self.pending_ep_stalls,
            pending_recovery_stalls: self.pending_recovery_stalls,
            fetch_blocked_on: self.fetch_blocked_on,
            rename_stall_until: self.rename_stall_until,
            dispatch_stall_until: self.dispatch_stall_until,
            retire_stall_until: self.retire_stall_until,
            fetch_stall_until: self.fetch_stall_until,
        }
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle - self.cycle_base;
        self.stats.slot_freezes = self.exec.slot_freezes - self.freeze_base;
        self.stats.activity.lsq_searches = self.lsq.searches - self.search_base;
        let (l1d0, l20) = self.cache_base;
        let l1d = self.caches.l1d_stats;
        let l2 = self.caches.l2_stats;
        let rate = |acc: u64, miss: u64| if acc == 0 { 0.0 } else { miss as f64 / acc as f64 };
        self.stats.l1d_miss_rate = rate(l1d.accesses - l1d0.accesses, l1d.misses - l1d0.misses);
        self.stats.l2_miss_rate = rate(l2.accesses - l20.accesses, l2.misses - l20.misses);
        self.stats.activity.dcache_accesses = l1d.accesses - l1d0.accesses;
        self.stats.activity.l2_accesses = l2.accesses - l20.accesses;
        self.stats.activity.mem_accesses = l2.misses - l20.misses;
    }

    /// Warms the machine (caches, branch predictor, TEP) by running
    /// `commits` instructions, then resets the statistics so subsequent
    /// measurement excludes cold-start effects — the paper measures warmed
    /// SimPoint phases.
    pub fn warm_up(&mut self, commits: u64) {
        if commits == 0 {
            return;
        }
        let _ = self.run(commits);
        self.reset_stats();
    }

    /// Zeroes the statistics while keeping all machine state; in-flight
    /// instructions remain counted as fetched so the conservation
    /// invariant (`fetched = committed + squashed + in-flight`) holds.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        self.stats.fetched = self.slab.len() as u64;
        self.cycle_base = self.cycle;
        self.freeze_base = self.exec.slot_freezes;
        self.search_base = self.lsq.searches;
        self.cache_base = (self.caches.l1d_stats, self.caches.l2_stats);
    }

    /// Advances the machine one clock cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        let now = self.cycle;
        if self.audit.is_some() {
            self.audit_admits = [0; 3];
            self.audit_charges.clear();
        }
        timed_stage!(stage::EVENTS, self.process_events(now));
        let mut global_stall = false;
        if self.stall_skip > 0 {
            // Interior cycle of a coalesced stall window: the timestamp
            // shift already happened up front, so only the per-cycle
            // stall accounting remains. No event can fire here (the
            // opening cycle's shift pushed them all past the window).
            self.stall_skip -= 1;
            if self.pending_recovery_stalls > 0 {
                self.pending_recovery_stalls -= 1;
                self.stats.recovery_stall_cycles += 1;
            } else {
                self.pending_ep_stalls -= 1;
                self.stats.ep_stall_cycles += 1;
            }
            global_stall = true;
        } else if self.pending_recovery_stalls > 0 || self.pending_ep_stalls > 0 {
            // Razor recovery bubbles / Error Padding: the pipeline
            // recirculates — everything still in flight (pending
            // completions, result broadcasts, lane releases, front-end
            // buffers and scheduled events) slips with the machine.
            //
            // Nothing can shorten or extend the window from inside it
            // (stages are idle and all events sit beyond it), so with the
            // auditor off the whole window's shift is applied in one walk
            // and the remaining cycles only keep the books. The auditor
            // snapshots machine state every cycle, so audited runs keep
            // the cycle-by-cycle shifts.
            if self.pending_recovery_stalls > 0 {
                self.pending_recovery_stalls -= 1;
                self.stats.recovery_stall_cycles += 1;
            } else {
                self.pending_ep_stalls -= 1;
                self.stats.ep_stall_cycles += 1;
            }
            let delta = if self.audit.is_none() {
                self.stall_skip = self.pending_recovery_stalls + self.pending_ep_stalls;
                1 + self.stall_skip
            } else {
                1
            };
            self.apply_global_stall(now, delta);
            global_stall = true;
        } else {
            timed_stage!(stage::RETIRE, self.retire(now));
            timed_stage!(stage::ISSUE, self.issue(now));
            timed_stage!(stage::DISPATCH, self.dispatch(now));
            timed_stage!(stage::RENAME, self.rename_stage(now));
            timed_stage!(stage::DECODE, self.decode(now));
            timed_stage!(stage::FETCH, self.fetch(now));
        }
        if self.audit.is_some() {
            timed_stage!(stage::AUDIT, self.run_audit(now, global_stall));
        }
    }

    /// Publishes this cycle's end-of-cycle snapshot to the auditor.
    fn run_audit(&mut self, now: u64, global_stall: bool) {
        let mut auditor = self.audit.take().expect("caller checked");
        // Hand the cycle's stall charges over instead of cloning them; the
        // buffer is cleared at the top of the next audited cycle anyway.
        let charges = std::mem::take(&mut self.audit_charges);
        let snapshot = self.audit_snapshot(now, global_stall, auditor.level(), charges);
        auditor.observe(snapshot);
        self.audit = Some(auditor);
    }

    /// Materializes the end-of-cycle snapshot. Only called while an
    /// auditor is attached; the Full-only vectors stay empty at Basic so
    /// the per-cycle cost tracks the audit level.
    fn audit_snapshot(
        &self,
        now: u64,
        global_stall: bool,
        level: AuditLevel,
        charges: Vec<(PipeStage, u64, u32)>,
    ) -> AuditSnapshot {
        let full = level == AuditLevel::Full;
        AuditSnapshot {
            cycle: now,
            global_stall,
            fetched: self.stats.fetched,
            committed: self.stats.committed,
            squashed: self.stats.squashed,
            in_flight: self.slab.len() as u64,
            next_commit_seq: self.next_commit_seq,
            rob_head_seq: self.rob.head().map(|s| self.slab.get(s).seq()),
            timestamp_counter: self.timestamp_counter,
            rename_stall_until: self.rename_stall_until,
            dispatch_stall_until: self.dispatch_stall_until,
            retire_stall_until: self.retire_stall_until,
            fetch_stall_until: self.fetch_stall_until,
            rename_admits: self.audit_admits[0],
            dispatch_admits: self.audit_admits[1],
            retire_admits: self.audit_admits[2],
            charges,
            store_seqs: self.lsq.store_seqs(),
            lsq_occupancy: self.lsq.occupancy(),
            lsq_capacity: self.lsq.capacity(),
            rob_seqs: if full {
                self.rob.iter().map(|s| self.slab.get(s).seq()).collect()
            } else {
                Vec::new()
            },
            inflight_timestamps: if full {
                self.rob.iter().map(|s| self.slab.get(s).timestamp).collect()
            } else {
                Vec::new()
            },
            phys_regs: if full { self.rename.audit_phys() } else { Vec::new() },
            event_times: if full {
                let mut times: Vec<u64> =
                    self.events.iter().map(|Reverse(ev)| ev.time).collect();
                times.sort_unstable();
                times
            } else {
                Vec::new()
            },
            queue_ready: if full {
                self.fetch_q
                    .iter()
                    .chain(self.decode_q.iter())
                    .chain(self.rename_q.iter())
                    .map(|&(ready, _)| ready)
                    .collect()
            } else {
                Vec::new()
            },
        }
    }

    /// The auditor's report so far, when auditing is enabled.
    pub fn audit_report(&self) -> Option<AuditReport> {
        self.audit.as_ref().map(|a| a.report())
    }

    /// The recorded architectural commit stream, when enabled.
    pub fn commit_log(&self) -> Option<&[(u64, u64, u8)]> {
        self.commit_log.as_deref()
    }

    /// The golden-model oracle's verdict over everything committed so far
    /// (value mismatches plus the final architectural register file
    /// comparison), when the oracle is enabled via
    /// [`PipelineBuilder::oracle`].
    pub fn oracle_report(&self) -> Option<OracleReport> {
        self.values.as_ref().map(ValuePlane::report)
    }

    /// The committed architectural register file, when the oracle is
    /// enabled. Under RISC-V semantics every entry is a zero-extended
    /// 32-bit value directly comparable with the standalone executor's.
    pub fn arch_regs(&self) -> Option<&[u64; 32]> {
        self.values.as_ref().map(ValuePlane::arch_regs)
    }

    /// The committed memory image as sorted `(address, word)` pairs, when
    /// the oracle is enabled.
    pub fn memory_image(&self) -> Option<Vec<(u64, u64)>> {
        self.values.as_ref().map(|v| v.memory().image())
    }

    /// Slips every pending datapath timestamp by one cycle (the EP global
    /// stall: all pipeline latches recirculate for a cycle).
    /// Slips every pending future timestamp `delta` cycles later.
    ///
    /// `delta == 1` is one recirculation stall cycle. Because each stall
    /// cycle shifts exactly the timestamps still beyond the *original*
    /// stall cycle `now` (a shifted timestamp stays beyond every later
    /// cycle of the window), a run of `delta` back-to-back stall cycles
    /// shifts the same set by `delta` — so the walk can be coalesced into
    /// one pass when the window length is known up front.
    fn apply_global_stall(&mut self, now: u64, delta: u64) {
        for i in 0..self.rob.len() {
            let slot = self.rob.get(i).expect("index in range");
            let inst = self.slab.get_mut(slot);
            if let Some(c) = inst.complete_cycle {
                if c > now {
                    inst.complete_cycle = Some(c + delta);
                }
            }
            if let Some(w) = inst.wake_cycle {
                if w > now {
                    inst.wake_cycle = Some(w + delta);
                }
            }
        }
        self.rename.shift_pending_after(now, delta);
        self.exec.shift_pending_after(now, delta);
        for q in [&mut self.fetch_q, &mut self.decode_q, &mut self.rename_q] {
            for (ready, _) in q.iter_mut() {
                if *ready > now {
                    *ready += delta;
                }
            }
        }
        if self.fetch_stall_until > now {
            self.fetch_stall_until += delta;
        }
        // The in-order stall deadlines recirculate too: a faulty stage's
        // second cycle must not silently elapse inside a global stall.
        for stall in [
            &mut self.rename_stall_until,
            &mut self.dispatch_stall_until,
            &mut self.retire_stall_until,
        ] {
            if *stall > now {
                *stall += delta;
            }
        }
        // Slip every still-pending event with the machine. All pending
        // events are strictly in the future here (this cycle's fired at
        // the top of `step`), and a uniform shift preserves heap order, so
        // the heap's backing vector can be shifted in place.
        let mut pending = std::mem::take(&mut self.events).into_vec();
        for Reverse(ev) in &mut pending {
            if ev.time > now {
                ev.time += delta;
            }
        }
        self.events = BinaryHeap::from(pending);
        // Pending broadcast wakeups slip identically (the rename table's
        // ready cycles just moved): re-arming happens lazily when each
        // stale event pops, so nothing to do for the issue queue here.
    }

    // --- events ------------------------------------------------------------

    fn schedule_event(&mut self, time: u64, event: Event) {
        self.event_order += 1;
        self.events.push(Reverse(ScheduledEvent {
            time,
            order: self.event_order,
            event,
        }));
    }

    fn process_events(&mut self, now: u64) {
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.time > now {
                break;
            }
            debug_assert_eq!(ev.time, now, "event missed its cycle");
            self.events.pop();
            match ev.event {
                Event::Resolve { slot, seq } => self.on_branch_resolve(now, slot, seq),
                Event::ReplayFault { slot, seq, stage } => {
                    self.on_replay_fault(now, slot, seq, stage)
                }
            }
        }
    }

    fn slot_is_live(&self, slot: SlotId, seq: u64) -> bool {
        // A squash may have freed (and reused) the slot; verify identity.
        // Events only target ROB-resident instructions, so a refetched
        // same-seq instance still in the front end must not match.
        self.slab.contains(slot) && {
            let inst = self.slab.get(slot);
            inst.in_rob && inst.seq() == seq
        }
    }

    fn on_branch_resolve(&mut self, now: u64, slot: SlotId, seq: u64) {
        if !self.slot_is_live(slot, seq) {
            return;
        }
        if self.fetch_blocked_on == Some(seq) {
            self.fetch_blocked_on = None;
            self.fetch_stall_until = self
                .fetch_stall_until
                .max(now + self.cfg.redirect_latency);
        }
    }

    fn on_replay_fault(&mut self, now: u64, slot: SlotId, seq: u64, stage: PipeStage) {
        if !self.slot_is_live(slot, seq) {
            return;
        }
        self.stats.replays += 1;
        self.stats.record_fault(stage, false);
        if let (Some(tep), Some(key)) = (self.tep.as_mut(), self.slab.get(slot).tep_key) {
            tep.train_fault_at(key, stage);
        }
        match self.cfg.recovery {
            RecoveryModel::InSitu => {
                // Razor-style in-situ replay: the instruction re-executes
                // with a restored guard band; recovery bubbles stall the
                // pipeline while the stage recovers. Younger independent
                // work is preserved.
                let penalty = self.cfg.replay_penalty;
                let dst;
                {
                    let inst = self.slab.get_mut(slot);
                    inst.actual_fault = None; // corrected by the replay
                    let complete = inst.complete_cycle.map(|c| c.max(now) + penalty);
                    inst.complete_cycle = complete;
                    let wake = inst.wake_cycle.map(|w| w.max(now) + penalty);
                    inst.wake_cycle = wake;
                    dst = inst.dst_phys.zip(wake);
                }
                if let Some((d, wake)) = dst {
                    // The replay slips an already-armed (and possibly
                    // already-fired) broadcast later: consumers that woke
                    // on the original wake must be demoted back to waiting.
                    self.rename.set_ready_cycle(d, wake, false);
                    self.iq.note_delay(&self.rename, d, wake, now);
                }
                self.pending_recovery_stalls += self.cfg.replay_latency;
            }
            RecoveryModel::Flush => {
                self.squash_from(seq);
                self.fetch_stall_until =
                    self.fetch_stall_until.max(now + self.cfg.replay_latency);
            }
        }
    }

    /// Squashes every in-flight instruction with `seq >= seq_min` and
    /// queues them for refetch; the instruction `seq_min` itself is
    /// refetched with its fault cleared (the replay succeeds).
    fn squash_from(&mut self, seq_min: u64) {
        // Scratch buffers live on the Pipeline so repeated squashes do
        // not allocate.
        let mut renamed_squashed = std::mem::take(&mut self.sq_renamed);
        let mut decoded_squashed = std::mem::take(&mut self.sq_decoded);
        let mut fetched_squashed = std::mem::take(&mut self.sq_fetched);
        let mut rob_squashed = std::mem::take(&mut self.sq_rob);
        renamed_squashed.clear();
        decoded_squashed.clear();
        fetched_squashed.clear();
        rob_squashed.clear();

        // 1. Front-end queues, youngest stage first. Only rename_q entries
        //    have rename state to roll back, and they are all younger than
        //    anything in the ROB, so rolling back in this order is
        //    youngest-first overall.
        let drain_frontend =
            |q: &mut VecDeque<(u64, SlotId)>, slab: &Slab, out: &mut Vec<SlotId>| {
                while let Some(&(_, slot)) = q.back() {
                    if slab.get(slot).seq() >= seq_min {
                        out.push(slot);
                        q.pop_back();
                    } else {
                        break;
                    }
                }
            };

        // rename_q is youngest-first from the back.
        drain_frontend(&mut self.rename_q, &self.slab, &mut renamed_squashed);
        drain_frontend(&mut self.decode_q, &self.slab, &mut decoded_squashed);
        drain_frontend(&mut self.fetch_q, &self.slab, &mut fetched_squashed);

        // 2. ROB tail: youngest first.
        let slab_ref = &self.slab;
        self.rob
            .drain_youngest_while_into(|slot| slab_ref.get(slot).seq() >= seq_min, &mut rob_squashed);

        // Roll back rename state youngest-first: rename_q first (younger),
        // then ROB tail entries.
        for &slot in renamed_squashed.iter().chain(rob_squashed.iter()) {
            let inst = self.slab.get(slot);
            if let (Some(dst), Some(new_phys), Some(old_phys)) =
                (inst.trace.dst, inst.dst_phys, inst.old_phys)
            {
                self.rename.rollback(
                    dst,
                    crate::rename::Renamed {
                        new_phys,
                        old_phys,
                    },
                );
            }
        }

        // Release window resources for ROB-resident squashed instructions.
        for &slot in &rob_squashed {
            let inst = self.slab.get(slot);
            self.iq.remove(slot);
            match inst.trace.op {
                OpClass::Load => self.lsq.release_load(),
                OpClass::Store => { /* squash_stores_after handles stores */ }
                _ => {}
            }
            if inst.issue_cycle.is_some() {
                self.stats.activity.wasted_issues += 1;
            }
        }
        self.lsq.squash_stores_after(seq_min.saturating_sub(1));

        // If fetch was blocked on a branch that just got squashed, unblock:
        // the branch will be refetched and re-predicted.
        if let Some(b) = self.fetch_blocked_on {
            if b >= seq_min {
                self.fetch_blocked_on = None;
            }
        }

        // 3. Collect trace instructions in ascending seq order:
        //    ROB part (drained youngest-first → reverse), then frontend
        //    queues (renamed < decoded? No: rename_q holds OLDER
        //    instructions than decode_q, which is older than fetch_q).
        let mut ordered = std::mem::take(&mut self.sq_ordered);
        ordered.clear();
        ordered.extend(rob_squashed.iter().rev());
        ordered.extend(renamed_squashed.iter().rev());
        ordered.extend(decoded_squashed.iter().rev());
        ordered.extend(fetched_squashed.iter().rev());

        self.stats.squashed += ordered.len() as u64;
        // Anything still pending in the refetch queue (left over from an
        // earlier squash) is younger than every in-flight instruction, so
        // the newly squashed batch is prepended, oldest ending up first.
        for (i, slot) in ordered.iter().enumerate().rev() {
            let inst = self.slab.remove(*slot);
            debug_assert_eq!(
                inst.seq(),
                seq_min + i as u64,
                "squashed instructions must be contiguous"
            );
            let cleared = inst.seq() == seq_min;
            self.refetch.push_front((inst.trace, cleared));
        }
        debug_assert!(
            self.refetch
                .iter()
                .zip(self.refetch.iter().skip(1))
                .all(|(a, b)| a.0.seq < b.0.seq),
            "refetch queue out of order"
        );

        // Return the scratch buffers (keeping their capacity).
        self.sq_renamed = renamed_squashed;
        self.sq_decoded = decoded_squashed;
        self.sq_fetched = fetched_squashed;
        self.sq_rob = rob_squashed;
        self.sq_ordered = ordered;
    }

    /// Handles a predicted or actual in-order-engine fault for the
    /// instruction in `slot` as it occupies `stage` (rename, dispatch or
    /// retire — paper §2.2). Returns `true` when the stage must stall one
    /// cycle (predicted fault: the stall signal gives the stage its second
    /// cycle).
    fn handle_in_order_stage(&mut self, now: u64, slot: SlotId, stage: PipeStage) -> bool {
        let (predicted_here, actual, key) = {
            let inst = self.slab.get(slot);
            (
                self.mode.uses_predictor()
                    && !inst.in_order_charged
                    && inst.predicted_fault == Some(stage),
                inst.actual_fault,
                inst.tep_key,
            )
        };
        let mut stall = false;
        if predicted_here {
            self.slab.get_mut(slot).in_order_charged = true;
            // TEP-driven stall signal: the faulty stage completes in two
            // clock cycles (paper §2.2).
            stall = true;
            self.stats.in_order_stalls += 1;
            if self.audit.is_some() {
                // Capture the stage's admission count at the instant the
                // signal fires: older width-group members may already have
                // passed, but nothing may follow.
                let admits_now = match stage {
                    PipeStage::Rename => self.audit_admits[0],
                    PipeStage::Dispatch => self.audit_admits[1],
                    _ => self.audit_admits[2],
                };
                let seq = self.slab.get(slot).seq();
                self.audit_charges.push((stage, seq, admits_now));
            }
            if actual == Some(stage) {
                self.stats.record_fault(stage, true);
                self.slab.get_mut(slot).actual_fault = None;
                if let (Some(tep), Some(key)) = (self.tep.as_mut(), key) {
                    tep.train_fault_at(key, stage);
                }
            } else if actual.is_none() {
                self.stats.false_positives += 1;
                if let (Some(tep), Some(key)) = (self.tep.as_mut(), key) {
                    tep.train_clean_at(key);
                }
            }
        } else if actual == Some(stage) && self.mode.tolerates() {
            // Unpredicted violation in an in-order stage: replay.
            self.replay_in_place(now, slot, stage);
        }
        stall
    }

    /// Razor-style synchronous replay for faults detected before the
    /// instruction enters the window (front-end and in-order stages).
    fn replay_in_place(&mut self, _now: u64, slot: SlotId, stage: PipeStage) {
        self.stats.replays += 1;
        self.stats.record_fault(stage, false);
        let key = {
            let inst = self.slab.get_mut(slot);
            inst.actual_fault = None; // corrected by the replay
            inst.tep_key
        };
        if let (Some(tep), Some(key)) = (self.tep.as_mut(), key) {
            tep.train_fault_at(key, stage);
        }
        self.pending_recovery_stalls += self.cfg.replay_latency;
    }

    // --- retire -------------------------------------------------------------

    fn retire(&mut self, now: u64) {
        if now < self.retire_stall_until {
            return;
        }
        for _ in 0..self.cfg.width {
            if self.stats.committed >= self.commit_limit {
                break;
            }
            let Some(slot) = self.rob.head() else { break };
            let inst = self.slab.get(slot);
            match inst.complete_cycle {
                Some(c) if c <= now => {}
                _ => break,
            }
            if self.handle_in_order_stage(now, slot, PipeStage::Retire) {
                self.retire_stall_until = now + 2;
                break;
            }
            let slot = self.rob.pop_head().expect("head exists");
            let inst = self.slab.remove(slot);
            self.iq.remove(slot); // issued entries are already gone; safety
            assert_eq!(
                inst.seq(),
                self.next_commit_seq,
                "out-of-order or lost commit"
            );
            self.next_commit_seq += 1;
            self.stats.committed += 1;
            self.stats.activity.retires += 1;
            if self.audit.is_some() {
                self.audit_admits[2] += 1;
            }
            if let Some(log) = self.commit_log.as_mut() {
                log.push((inst.seq(), inst.trace.pc, inst.trace.op as u8));
            }
            if self.values.is_some() {
                // A violation that survives to retirement untolerated
                // (only possible under NoTolerance, or an escape bug in a
                // real scheme) latches a corrupted result. Covered faults
                // — predicted OoO violations absorbed by padding — commit
                // clean: the extra stage cycle restored the slack.
                let covered = self.mode.uses_predictor()
                    && inst
                        .actual_fault
                        .filter(|s| s.is_ooo())
                        .is_some_and(|s| inst.predicted_fault == Some(s));
                let corruption = match inst.actual_fault {
                    Some(_) if !covered => self
                        .fault_model
                        .as_ref()
                        .expect("a fault implies a fault model")
                        .corruption_mask(inst.trace.pc, inst.seq()),
                    _ => 0,
                };
                let vp = self.values.as_mut().expect("checked above");
                vp.commit(&inst.trace, inst.src_phys, inst.dst_phys, corruption);
            }

            match inst.trace.op {
                OpClass::Store => {
                    // Write-through of the store buffer at retire.
                    let addr = inst.trace.mem_addr.expect("stores have addresses");
                    let _ = self.caches.access_data(addr);
                    self.lsq.retire_store(inst.seq());
                }
                OpClass::Load => self.lsq.release_load(),
                OpClass::CondBranch => {
                    self.stats.branches += 1;
                    if inst.branch_mispredicted {
                        self.stats.branch_mispredicts += 1;
                    }
                }
                OpClass::Jump => {
                    if inst.branch_mispredicted {
                        self.stats.branch_mispredicts += 1;
                    }
                }
                _ => {}
            }
            if let Some(old) = inst.old_phys {
                self.rename.retire_free(old);
            }

            if self.mode == ToleranceMode::NoTolerance {
                // Control mode: nothing intervened, so any injected fault
                // (any stage) survives to retirement as silent corruption.
                if let Some(stage) = inst.actual_fault {
                    self.stats.record_fault(stage, false);
                    self.stats.untolerated_faults += 1;
                }
            } else {
                // Predictor training with the stage-level detector's
                // verdict.
                let predicted = inst.predicted_fault.filter(|s| s.is_ooo());
                let actual = inst.actual_fault.filter(|s| s.is_ooo());
                match (predicted, actual) {
                    (Some(_), Some(stage)) => {
                        self.stats.record_fault(stage, true);
                        if let (Some(tep), Some(key)) = (self.tep.as_mut(), inst.tep_key) {
                            tep.train_fault_at(key, stage);
                        }
                    }
                    (Some(_), None) => {
                        self.stats.false_positives += 1;
                        if let (Some(tep), Some(key)) = (self.tep.as_mut(), inst.tep_key) {
                            tep.train_clean_at(key);
                        }
                    }
                    (None, Some(_)) => {
                        unreachable!("unpredicted faults are cleared by replay before retire")
                    }
                    (None, None) => {}
                }
            }
        }
    }

    // --- issue (wakeup/select + downstream timing) ---------------------------

    fn issue(&mut self, now: u64) {
        // Wakeup: the issue queue's broadcast index hands back the
        // operand-ready entries; only broadcast-matched entries and the
        // believed-ready list are touched, never the whole queue.
        let mut candidates = std::mem::take(&mut self.cand_buf);
        candidates.clear();
        timed_stage!(
            stage::ISSUE_WAKE,
            self.iq.collect_candidates(&self.rename, now, &mut candidates)
        );
        if candidates.is_empty() {
            self.cand_buf = candidates;
            return;
        }
        #[cfg(debug_assertions)]
        let before: u64 = candidates.iter().map(|c| c.seq).sum();
        timed_stage!(stage::ISSUE_SORT, self.policy.prioritize(&mut candidates));
        #[cfg(debug_assertions)]
        {
            let after: u64 = candidates.iter().map(|c| c.seq).sum();
            debug_assert_eq!(before, after, "policy must permute, not alter");
        }

        // Select: greedy lane assignment in priority order.
        timed_stage!(stage::ISSUE_SEL, {
            let mut blocked = std::mem::take(&mut self.lane_blocked);
            blocked.clear();
            blocked.resize(self.exec.len(), false);
            let mut issued = 0usize;
            for i in 0..candidates.len() {
                if issued == self.cfg.width {
                    break;
                }
                let cand = candidates[i];
                let Some(lane) = self.exec.find_lane(cand.op, now, &blocked) else {
                    continue;
                };
                blocked[lane] = true;
                issued += 1;
                self.issue_one(now, cand.slot, lane);
            }
            self.lane_blocked = blocked;
        });
        self.cand_buf = candidates;
    }

    fn issue_one(&mut self, now: u64, slot: SlotId, lane: usize) {
        self.iq.remove(slot);

        // Criticality Detection Logic: count dependents waiting on this
        // result tag at broadcast (paper §3.5.2), then store the verdict
        // with the TEP so future instances of the PC carry it.
        let (dst_phys, tep_key) = {
            let inst = self.slab.get(slot);
            (inst.dst_phys, inst.tep_key)
        };
        if self.criticality_threshold > 0 {
            if let Some(dst) = dst_phys.filter(|&d| d != 0) {
                let dependents = self.iq.count_dependents(dst);
                let critical = dependents >= self.criticality_threshold;
                if let (Some(tep), Some(key)) = (self.tep.as_mut(), tep_key) {
                    tep.set_criticality_at(key, critical);
                }
            }
        }

        let inst = self.slab.get(slot);
        let op = inst.trace.op;
        let seq = inst.seq();
        let treated_faulty = self.mode.uses_predictor() && inst.treated_as_faulty();
        let predicted_stage = inst.predicted_fault;
        let actual = inst.actual_fault.filter(|s| s.is_ooo());
        let mem_addr = inst.trace.mem_addr;
        let mispredicted = inst.branch_mispredicted;

        // Memory timing: AGEN at now+2, then LSQ search / cache access.
        let exec_lat = self.cfg.exec_latency(op);
        let mut mem_lat = 0;
        if op == OpClass::Load {
            let addr = mem_addr.expect("loads have addresses");
            let agen_done = now + 2;
            let search = self.lsq.search_for_load(seq, addr, agen_done);
            mem_lat = if search.forwarded {
                1
            } else {
                self.caches.access_data(addr)
            };
        } else if op == OpClass::Store {
            let addr = mem_addr.expect("stores have addresses");
            self.lsq.resolve_store(seq, addr, now + 2);
        }

        // The paper's padding: one extra cycle in the predicted faulty
        // stage. Which timelines slip depends on the stage (§3.3):
        // * Issue (wakeup/select): the broadcast into the wakeup lane is
        //   held steady for two cycles, so *dependents* wake a cycle late
        //   and the issue slot freezes, but the instruction's own
        //   execution is not delayed.
        // * RegRead / Execute / Memory: the instruction occupies the stage
        //   one extra cycle — both its result broadcast and its completion
        //   slip by one.
        // * Writeback: completion slips; the result was already bypassed,
        //   so dependents are unaffected.
        // Under Error Padding the global stall itself provides the faulty
        // stage's second cycle — everything (the instruction, its
        // dependents, the rest of the machine) slips together, so no
        // relative padding is applied on top.
        let pad = u64::from(treated_faulty && self.mode == ToleranceMode::ViolationAware);
        let wake_pad = match predicted_stage {
            // Writeback: result already bypassed. Issue: the broadcast
            // delay applies only to already-waiting consumers, handled via
            // the delayed-broadcast flag on the physical register below.
            Some(PipeStage::Writeback) | Some(PipeStage::Issue) => 0,
            _ => pad,
        };
        let complete_pad = match predicted_stage {
            Some(PipeStage::Issue) => 0,
            _ => pad,
        };
        let exec_total = exec_lat + mem_lat;
        let wake = now + exec_total + wake_pad;
        let complete = now + 1 + exec_total + complete_pad;

        // Unpredicted fault ⇒ detection + replay at the stage's latch.
        // The NoTolerance control has no detector: the fault rides through.
        if let Some(stage) = actual.filter(|_| self.mode.tolerates()) {
            let covered = treated_faulty && predicted_stage == Some(stage);
            if !covered {
                let detect = match stage {
                    PipeStage::Issue => now + 1,
                    PipeStage::RegRead => now + 2,
                    PipeStage::Execute => now + 1 + exec_lat,
                    PipeStage::Memory => now + 2 + mem_lat.max(1),
                    _ => complete,
                }
                .min(complete);
                self.schedule_event(detect, Event::ReplayFault { slot, seq, stage });
            }
        }

        // Lane occupancy: FUSR + issue-slot freeze semantics.
        let unpipelined_busy = if op == OpClass::IntDiv {
            self.cfg.div_latency.saturating_sub(1)
        } else {
            0
        };
        let faulty_hold = self.mode == ToleranceMode::ViolationAware && treated_faulty;
        self.exec.occupy(lane, now, unpipelined_busy, faulty_hold);

        // Error Padding: one whole-pipeline stall per predicted fault.
        if self.mode == ToleranceMode::ErrorPadding && treated_faulty {
            self.pending_ep_stalls += 1;
        }

        // Branch resolution event (to unblock fetch after mispredicts).
        if op.is_branch() && mispredicted {
            self.schedule_event(complete, Event::Resolve { slot, seq });
        }

        // Result broadcast. For RegRead/Execute/Memory faults the result
        // itself is late (wake already padded); for Issue faults only the
        // broadcast into the wakeup CAM is held, so consumers already
        // waiting pay one cycle while later arrivals do not (§3.3.1).
        if let Some(dst) = dst_phys {
            let delayed_broadcast = self.mode == ToleranceMode::ViolationAware
                && treated_faulty
                && predicted_stage == Some(PipeStage::Issue);
            // First issue of this tag, or a post-recovery re-issue? A
            // fresh broadcast cannot un-ready anyone; a re-issue can have
            // moved an already-consumed wakeup later and must demote.
            let fresh = self.rename.ready_cycle(dst) == u64::MAX;
            self.rename.set_ready_cycle(dst, wake, delayed_broadcast);
            // Arm the issue queue's wakeup event at the effective time
            // waiting consumers see (one later for a held broadcast).
            let at = wake + u64::from(delayed_broadcast);
            if fresh {
                self.iq.note_broadcast(dst, at);
            } else {
                self.iq.note_delay(&self.rename, dst, at, now);
            }
            if dst != 0 {
                self.stats.activity.broadcasts += 1;
            }
        }

        let inst = self.slab.get_mut(slot);
        inst.issue_cycle = Some(now);
        inst.wake_cycle = Some(wake);
        inst.complete_cycle = Some(complete);

        // Activity accounting.
        self.stats.activity.issues += 1;
        self.stats.activity.regreads += 1;
        match self.exec.kind(lane) {
            LaneKind::SimpleAlu | LaneKind::SimpleAluBranch => {
                self.stats.activity.fu_simple += 1
            }
            LaneKind::Complex => self.stats.activity.fu_complex += 1,
            LaneKind::Mem => self.stats.activity.fu_mem += 1,
        }
    }

    // --- dispatch -------------------------------------------------------------

    fn dispatch(&mut self, now: u64) {
        if now < self.dispatch_stall_until {
            return;
        }
        for _ in 0..self.cfg.width {
            let Some(&(ready, slot)) = self.rename_q.front() else { break };
            if ready > now || self.rob.free() == 0 || self.iq.free() == 0 {
                break;
            }
            let op = self.slab.get(slot).trace.op;
            let seq = self.slab.get(slot).seq();
            // Resource check before the fault is charged: a load/store
            // that cannot allocate its LSQ entry stays in rename_q and
            // must not consume its predicted fault (stall counted, TEP
            // trained) in a cycle where it cannot dispatch.
            if matches!(op, OpClass::Load | OpClass::Store) && self.lsq.free() == 0 {
                break;
            }
            if self.handle_in_order_stage(now, slot, PipeStage::Dispatch) {
                // The stall signal holds the whole stage: the faulty
                // instruction takes its second cycle here, and neither it
                // nor the rest of its width group may dispatch.
                self.dispatch_stall_until = now + 2;
                break;
            }
            match op {
                OpClass::Load => {
                    let ok = self.lsq.alloc_load();
                    debug_assert!(ok, "free checked above");
                }
                OpClass::Store => {
                    let ok = self.lsq.alloc_store(seq);
                    debug_assert!(ok, "free checked above");
                }
                _ => {}
            }
            self.rename_q.pop_front();
            let ts = self.timestamp_counter;
            self.timestamp_counter = (self.timestamp_counter + 1) & 63;
            let inst = self.slab.get_mut(slot);
            inst.timestamp = ts;
            inst.dispatch_cycle = now;
            inst.in_rob = true;
            self.rob.push(slot);
            self.iq.push(&self.rename, &self.slab, slot);
            self.stats.activity.dispatches += 1;
            if self.audit.is_some() {
                self.audit_admits[1] += 1;
            }
        }
    }

    // --- rename ----------------------------------------------------------------

    fn rename_stage(&mut self, now: u64) {
        if now < self.rename_stall_until {
            return;
        }
        for _ in 0..self.cfg.width {
            let Some(&(ready, slot)) = self.decode_q.front() else { break };
            if ready > now || self.rename_q.len() >= FRONT_BUF {
                break;
            }
            if self.handle_in_order_stage(now, slot, PipeStage::Rename) {
                // As in dispatch/retire: a stalled rename stage admits
                // nothing this cycle or the next.
                self.rename_stall_until = now + 2;
                break;
            }
            // Source lookups first (read-before-write within the group is
            // handled by processing instructions in order).
            let trace = self.slab.get(slot).trace;
            let mut src_phys = [None, None];
            for (i, src) in trace.srcs.iter().enumerate() {
                if let Some(r) = src {
                    src_phys[i] = Some(self.rename.lookup(*r));
                }
            }
            let mut dst_phys = None;
            let mut old_phys = None;
            if let Some(dst) = trace.dst {
                match self.rename.rename_dst(dst) {
                    Some(renamed) => {
                        dst_phys = Some(renamed.new_phys);
                        old_phys = Some(renamed.old_phys);
                        self.stats.activity.renames += 1;
                    }
                    None => break, // no free physical register: stall
                }
            }
            self.decode_q.pop_front();
            let inst = self.slab.get_mut(slot);
            inst.src_phys = src_phys;
            inst.dst_phys = dst_phys;
            inst.old_phys = old_phys;
            self.rename_q
                .push_back((now + self.cfg.rename_latency, slot));
            if self.audit.is_some() {
                self.audit_admits[0] += 1;
            }
        }
    }

    // --- decode (TEP access in parallel) -----------------------------------------

    fn decode(&mut self, now: u64) {
        for _ in 0..self.cfg.width {
            let Some(&(ready, slot)) = self.fetch_q.front() else { break };
            if ready > now || self.decode_q.len() >= FRONT_BUF {
                break;
            }
            self.fetch_q.pop_front();
            self.stats.activity.decodes += 1;
            // Fetch/decode violations cannot be mitigated by the TEP —
            // "any violations in these two stages are mitigated using
            // instruction replay" (paper §2.2).
            let front_fault = self
                .slab
                .get(slot)
                .actual_fault
                .filter(|s| s.is_replay_only());
            if let Some(stage) = front_fault {
                if self.mode.tolerates() {
                    self.replay_in_place(now, slot, stage);
                }
            }

            let (pc, op, taken, seq) = {
                let t = &self.slab.get(slot).trace;
                (t.pc, t.op, t.taken, t.seq)
            };
            if let Some(tep) = self.tep.as_mut() {
                let armed = self
                    .fault_model
                    .as_ref()
                    .map(|fm| fm.sensor().armed(seq))
                    .unwrap_or(true);
                let key = tep.lookup_key(pc);
                let pred = tep.predict(pc, armed);
                let inst = self.slab.get_mut(slot);
                inst.tep_key = Some(key);
                if pred.faulty {
                    inst.predicted_fault = pred.stage;
                    inst.predicted_critical = pred.critical;
                }
                if op == OpClass::CondBranch {
                    if let Some(t) = taken {
                        self.tep.as_mut().expect("checked above").record_branch(t);
                    }
                }
            }
            self.decode_q.push_back((now + 1, slot));
        }
    }

    // --- fetch ---------------------------------------------------------------------

    fn fetch(&mut self, now: u64) {
        if self.fetch_blocked_on.is_some() {
            self.stats.activity.fetch_blocked_cycles += 1;
            return;
        }
        if now < self.fetch_stall_until {
            self.stats.activity.fetch_stall_cycles += 1;
            return;
        }
        if self.fetch_q.len() >= FRONT_BUF {
            self.stats.activity.fetch_full_cycles += 1;
        }
        let mut fetched_group = false;
        for _ in 0..self.cfg.width {
            if self.fetch_q.len() >= FRONT_BUF {
                break;
            }
            let (trace, fault, shared_mispred) = match self.refetch.pop_front() {
                // A squashed instruction re-enters with its original fault
                // verdict unless the replay cleared it; re-sampling the
                // model reproduces the verdict (decide is pure). Refetch
                // only happens under flush recovery, which the co-sim
                // forbids, so the lane's own model is always the right one.
                Some((trace, cleared)) => {
                    let fault = if cleared {
                        None
                    } else {
                        self.fault_model
                            .as_ref()
                            .and_then(|fm| fm.decide(trace.pc, trace.op.is_mem(), trace.seq))
                    };
                    (trace, fault, None)
                }
                None => match self.gen.next(self.fault_model.as_ref()) {
                    Some(FedInst { trace, fault, mispred }) => (trace, fault, mispred),
                    None => {
                        // Finite workload exhausted: stop fetching and let
                        // everything in flight drain through retirement.
                        self.workload_done = true;
                        break;
                    }
                },
            };
            let mut inst = InFlightInst::new(trace);
            inst.actual_fault = fault;

            // I-cache: one access per line per group.
            let line = trace.pc / self.cfg.line_bytes as u64;
            let icache_extra = if line != self.last_fetch_line {
                self.last_fetch_line = line;
                if !fetched_group {
                    self.stats.activity.fetch_groups += 1;
                    fetched_group = true;
                }
                self.caches.access_inst(trace.pc).saturating_sub(1)
            } else {
                0
            };
            let ready = now + self.cfg.frontend_latency + icache_extra;

            // Branch prediction against the resolved trace outcome.
            let mut ends_group = false;
            let mut blocks_fetch = false;
            match trace.op {
                OpClass::CondBranch => {
                    let actual_taken = trace.taken.expect("branches carry outcomes");
                    // The co-sim frontend resolved the predictor verdict
                    // once for all lanes; solo lanes consult their own.
                    let mispred = shared_mispred.unwrap_or_else(|| {
                        let pred = self.bp.predict_cond(trace.pc);
                        let m = pred.taken != actual_taken
                            || (actual_taken && pred.target != trace.target);
                        self.bp.update(trace.pc, actual_taken, trace.target);
                        m
                    });
                    inst.branch_mispredicted = mispred;
                    blocks_fetch = mispred;
                    ends_group = actual_taken;
                }
                OpClass::Jump => {
                    let mispred = shared_mispred.unwrap_or_else(|| {
                        let pred = self.bp.predict_jump(trace.pc);
                        let m = pred.target != trace.target;
                        self.bp.update(trace.pc, true, trace.target);
                        m
                    });
                    inst.branch_mispredicted = mispred;
                    blocks_fetch = mispred;
                    ends_group = true;
                }
                _ => {}
            }

            let seq = inst.seq();
            let slot = self.slab.insert(inst);
            self.fetch_q.push_back((ready, slot));
            self.stats.fetched += 1;
            self.stats.activity.fetches += 1;

            if blocks_fetch {
                self.fetch_blocked_on = Some(seq);
                break;
            }
            if ends_group {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_bench(
        bench: Benchmark,
        mode: ToleranceMode,
        vdd: Voltage,
        commits: u64,
    ) -> SimStats {
        Pipeline::builder(bench, 7)
            .tolerance(mode)
            .voltage(vdd)
            .build()
            .run(commits)
    }

    #[test]
    fn fault_free_run_commits_everything() {
        let stats = run_bench(
            Benchmark::Gcc,
            ToleranceMode::FaultFree,
            Voltage::nominal(),
            20_000,
        );
        assert_eq!(stats.committed, 20_000);
        assert_eq!(stats.faults_total(), 0);
        assert_eq!(stats.replays, 0);
        assert_eq!(stats.squashed, 0);
        assert!(stats.ipc() > 0.3, "ipc = {}", stats.ipc());
        assert!(stats.ipc() <= 4.0);
    }

    #[test]
    fn ipc_orders_across_benchmarks() {
        // The memory-bound benchmark must be slower than the ILP-rich one.
        let mcf = run_bench(
            Benchmark::Mcf,
            ToleranceMode::FaultFree,
            Voltage::nominal(),
            30_000,
        );
        let sjeng = run_bench(
            Benchmark::Sjeng,
            ToleranceMode::FaultFree,
            Voltage::nominal(),
            30_000,
        );
        assert!(
            sjeng.ipc() > 1.5 * mcf.ipc(),
            "sjeng {} vs mcf {}",
            sjeng.ipc(),
            mcf.ipc()
        );
    }

    #[test]
    fn razor_pays_for_faults() {
        let clean = run_bench(
            Benchmark::Astar,
            ToleranceMode::FaultFree,
            Voltage::nominal(),
            30_000,
        );
        let razor = run_bench(
            Benchmark::Astar,
            ToleranceMode::Razor,
            Voltage::high_fault(),
            30_000,
        );
        assert!(razor.faults_total() > 0);
        assert_eq!(razor.faults_predicted, 0, "razor never predicts");
        assert_eq!(razor.replays, razor.faults_total());
        assert!(razor.recovery_stall_cycles > 0, "in-situ recovery inserts bubbles");
        assert_eq!(razor.squashed, 0, "in-situ recovery preserves younger work");
        assert!(
            razor.ipc() < clean.ipc(),
            "razor {} must lose to clean {}",
            razor.ipc(),
            clean.ipc()
        );
    }

    #[test]
    fn violation_aware_mostly_predicts() {
        let stats = run_bench(
            Benchmark::Astar,
            ToleranceMode::ViolationAware,
            Voltage::high_fault(),
            50_000,
        );
        assert!(stats.faults_total() > 1_000, "faults = {}", stats.faults_total());
        let predicted_share =
            stats.faults_predicted as f64 / stats.faults_total() as f64;
        assert!(
            predicted_share > 0.8,
            "TEP should catch most faults, got {predicted_share:.2}"
        );
        assert!(stats.slot_freezes > 0);
    }

    #[test]
    fn scheme_ordering_matches_paper() {
        // Razor ≫ EP > VTE in overhead; all lose to fault-free.
        let commits = 60_000;
        let clean = run_bench(
            Benchmark::Bzip2,
            ToleranceMode::FaultFree,
            Voltage::nominal(),
            commits,
        );
        let razor = run_bench(
            Benchmark::Bzip2,
            ToleranceMode::Razor,
            Voltage::high_fault(),
            commits,
        );
        let ep = run_bench(
            Benchmark::Bzip2,
            ToleranceMode::ErrorPadding,
            Voltage::high_fault(),
            commits,
        );
        let vte = run_bench(
            Benchmark::Bzip2,
            ToleranceMode::ViolationAware,
            Voltage::high_fault(),
            commits,
        );
        assert!(razor.ipc() < ep.ipc(), "razor {} !< ep {}", razor.ipc(), ep.ipc());
        assert!(ep.ipc() < vte.ipc(), "ep {} !< vte {}", ep.ipc(), vte.ipc());
        assert!(vte.ipc() <= clean.ipc() * 1.001);
        assert!(ep.ep_stall_cycles > 0);
        assert_eq!(vte.ep_stall_cycles, 0);
    }

    #[test]
    fn fault_rate_tracks_voltage() {
        let lo = run_bench(
            Benchmark::Sjeng,
            ToleranceMode::ViolationAware,
            Voltage::low_fault(),
            40_000,
        );
        let hi = run_bench(
            Benchmark::Sjeng,
            ToleranceMode::ViolationAware,
            Voltage::high_fault(),
            40_000,
        );
        assert!(
            hi.fault_rate() > 2.0 * lo.fault_rate(),
            "hi {} vs lo {}",
            hi.fault_rate(),
            lo.fault_rate()
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run_bench(
            Benchmark::Gobmk,
            ToleranceMode::ViolationAware,
            Voltage::low_fault(),
            15_000,
        );
        let b = run_bench(
            Benchmark::Gobmk,
            ToleranceMode::ViolationAware,
            Voltage::low_fault(),
            15_000,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn branches_are_predicted_reasonably() {
        let stats = run_bench(
            Benchmark::Povray,
            ToleranceMode::FaultFree,
            Voltage::nominal(),
            40_000,
        );
        assert!(stats.branches > 1_000);
        assert!(
            stats.mispredict_rate() < 0.25,
            "mispredict rate {}",
            stats.mispredict_rate()
        );
    }

    #[test]
    fn in_order_faults_are_stalled_when_predicted() {
        // All fault mass in the in-order engine: rename/dispatch/retire
        // are tolerated by stall signals, fetch/decode by replay.
        let cal = tv_timing::FaultCalibration {
            in_order_share: 0.999,
            ..tv_timing::FaultCalibration::from_rates(8.0, 8.0)
        };
        let stats = Pipeline::builder(Benchmark::Gcc, 11)
            .tolerance(ToleranceMode::ViolationAware)
            .voltage(Voltage::high_fault())
            .calibration(cal)
            .build()
            .run(40_000);
        assert!(stats.in_order_stalls > 0, "stall signals must fire");
        assert!(
            stats.faults_in(PipeStage::Rename)
                + stats.faults_in(PipeStage::Dispatch)
                + stats.faults_in(PipeStage::Retire)
                > 0,
            "in-order faults must occur"
        );
        assert!(
            stats.faults_in(PipeStage::Fetch) + stats.faults_in(PipeStage::Decode) > 0,
            "front-end faults must occur"
        );
        // Every fetch/decode violation is replay-corrected.
        assert!(stats.replays > 0);
        // The machine still makes good progress.
        assert!(stats.ipc() > 0.3, "ipc {}", stats.ipc());
    }

    #[test]
    fn in_order_faults_all_replay_under_razor() {
        let cal = tv_timing::FaultCalibration {
            in_order_share: 0.999,
            ..tv_timing::FaultCalibration::from_rates(4.0, 4.0)
        };
        let stats = Pipeline::builder(Benchmark::Gcc, 11)
            .tolerance(ToleranceMode::Razor)
            .voltage(Voltage::high_fault())
            .calibration(cal)
            .build()
            .run(30_000);
        assert_eq!(stats.in_order_stalls, 0, "razor has no predictor");
        assert_eq!(stats.replays, stats.faults_total());
    }

    #[test]
    fn flush_recovery_squashes_and_refetches() {
        let cfg = CoreConfig {
            recovery: crate::config::RecoveryModel::Flush,
            replay_latency: 6,
            ..CoreConfig::core1()
        };
        let stats = Pipeline::builder(Benchmark::Astar, 7)
            .config(cfg)
            .tolerance(ToleranceMode::Razor)
            .voltage(Voltage::high_fault())
            .build()
            .run(30_000);
        assert!(stats.replays > 0);
        assert!(stats.squashed > 0, "flush recovery squashes younger work");
        assert!(stats.activity.wasted_issues > 0);
    }

    #[test]
    fn accounting_is_conserved() {
        let mut pipe = Pipeline::builder(Benchmark::Xalancbmk, 3)
            .tolerance(ToleranceMode::Razor)
            .voltage(Voltage::high_fault())
            .build();
        let stats = pipe.run(25_000);
        // fetched = committed + squashed + still-in-flight
        let in_flight = pipe.slab.len() as u64;
        assert_eq!(stats.fetched, stats.committed + stats.squashed + in_flight);
    }

    /// Builds a ViolationAware pipeline plus one in-flight ALU instruction
    /// predicted faulty in `stage`, parked in the issue queue with its
    /// destination renamed — ready for a direct `issue_one` micro-step.
    fn micro_issue_setup(stage: PipeStage, now: u64) -> (Pipeline, SlotId, u16) {
        use tv_workloads::ArchReg;
        let mut pipe = Pipeline::builder(Benchmark::Gcc, 7)
            .tolerance(ToleranceMode::ViolationAware)
            .voltage(Voltage::high_fault())
            .build();
        let dst = pipe.rename.rename_dst(ArchReg::new(5)).unwrap().new_phys;
        let mut inst = InFlightInst::new(TraceInst {
            seq: 1,
            pc: 0x4000,
            op: OpClass::IntAlu,
            srcs: [None, None],
            dst: None,
            mem_addr: None,
            taken: None,
            target: None,
            operand_values: [0, 0],
        });
        inst.dst_phys = Some(dst);
        inst.predicted_fault = Some(stage);
        inst.dispatch_cycle = now;
        let slot = pipe.slab.insert(inst);
        pipe.iq.push(&pipe.rename, &pipe.slab, slot);
        (pipe, slot, dst)
    }

    #[test]
    fn issue_fault_delays_waiting_consumers_exactly_one_cycle() {
        // Paper §3.3.1: an issue-stage violation holds the tag broadcast —
        // consumers already waiting wake exactly one cycle late, consumers
        // dispatched at/after the settled broadcast pay nothing, and the
        // faulty instruction's own execution is not delayed.
        let now = 100;
        let (mut pipe, slot, dst) = micro_issue_setup(PipeStage::Issue, now);
        pipe.issue_one(now, slot, 0);

        let wake = pipe.slab.get(slot).wake_cycle.unwrap();
        assert_eq!(
            wake,
            now + pipe.cfg.exec_latency(OpClass::IntAlu),
            "own execution unpadded"
        );
        // Early consumer: not ready at the broadcast cycle, ready exactly
        // one cycle later.
        assert!(!pipe.rename.is_ready(dst, wake, now));
        assert!(pipe.rename.is_ready(dst, wake + 1, now));
        // Late-dispatched consumer reads the settled ready bit.
        assert!(pipe.rename.is_ready(dst, wake, wake));
    }

    #[test]
    fn issue_fault_freezes_slot_admitting_no_new_input() {
        // Paper §3.3.3: the slot behind a faulty instruction is frozen for
        // one extra cycle — the lane admits no new input at now+1 and
        // reopens at now+2.
        let now = 100;
        let (mut pipe, slot, _) = micro_issue_setup(PipeStage::Issue, now);
        pipe.issue_one(now, slot, 0);

        let only_lane0 = [false, true, true, true];
        assert_eq!(pipe.exec.find_lane(OpClass::IntAlu, now + 1, &only_lane0), None);
        assert_eq!(
            pipe.exec.find_lane(OpClass::IntAlu, now + 2, &only_lane0),
            Some(0)
        );
        assert_eq!(pipe.exec.slot_freezes, 1);
    }

    #[test]
    fn execute_fault_pads_result_for_all_consumers() {
        // An Execute-stage violation delays the result itself by the one
        // padding cycle: every consumer sees the padded wake cycle, with
        // no extra delayed-broadcast penalty on top.
        let now = 200;
        let (mut pipe, slot, dst) = micro_issue_setup(PipeStage::Execute, now);
        pipe.issue_one(now, slot, 0);

        let wake = pipe.slab.get(slot).wake_cycle.unwrap();
        assert_eq!(
            wake,
            now + pipe.cfg.exec_latency(OpClass::IntAlu) + 1,
            "result slips by exactly the padding cycle"
        );
        assert!(!pipe.rename.is_ready(dst, wake - 1, now));
        assert!(pipe.rename.is_ready(dst, wake, now), "no +1 on top of the pad");
        assert!(pipe.rename.is_ready(dst, wake, wake));
        assert_eq!(pipe.exec.slot_freezes, 1, "slot freeze applies regardless of stage");
    }

    #[test]
    fn slot_freezes_only_under_violation_aware() {
        let razor = run_bench(
            Benchmark::Astar,
            ToleranceMode::Razor,
            Voltage::high_fault(),
            15_000,
        );
        assert_eq!(razor.slot_freezes, 0, "razor replays, never freezes");
        let ep = run_bench(
            Benchmark::Astar,
            ToleranceMode::ErrorPadding,
            Voltage::high_fault(),
            15_000,
        );
        assert_eq!(ep.slot_freezes, 0, "EP stalls the whole machine instead");
        assert!(ep.ep_stall_cycles > 0);
    }

    #[test]
    fn dispatch_timestamps_stay_mod_64() {
        // The ABS timestamp is a 6-bit hardware counter (§3.5): it wraps
        // at 64 and every in-flight instruction carries a 6-bit value even
        // after far more than 64 dispatches.
        let mut pipe = Pipeline::builder(Benchmark::Gcc, 7).build();
        let stats = pipe.run(2_000);
        assert!(stats.committed >= 2_000, "well past many counter wraps");
        assert!(pipe.timestamp_counter < 64);
        for slot in pipe.iq.iter() {
            assert!(pipe.slab.get(slot).timestamp < 64);
        }
    }

    /// Builds a bare in-flight instruction for direct stage micro-tests.
    fn frontend_inst(seq: u64, op: OpClass, predicted: Option<PipeStage>) -> InFlightInst {
        let mut inst = InFlightInst::new(TraceInst {
            seq,
            pc: 0x8000 + seq * 4,
            op,
            srcs: [None, None],
            dst: None,
            mem_addr: matches!(op, OpClass::Load | OpClass::Store).then_some(0x1_0000),
            taken: None,
            target: None,
            operand_values: [0, 0],
        });
        inst.predicted_fault = predicted;
        inst
    }

    fn vte_pipe() -> Pipeline {
        Pipeline::builder(Benchmark::Gcc, 7)
            .tolerance(ToleranceMode::ViolationAware)
            .voltage(Voltage::high_fault())
            .build()
    }

    #[test]
    fn dispatch_stall_holds_faulty_inst_and_width_group() {
        // §2.2 regression: a predicted-Dispatch-fault instruction takes two
        // clock cycles in dispatch, admitting neither itself nor the rest
        // of its width group until the stall signal clears; pre-fix the
        // whole group dispatched in the charge cycle.
        let now = 50;
        let mut pipe = vte_pipe();
        let faulty = pipe
            .slab
            .insert(frontend_inst(1, OpClass::IntAlu, Some(PipeStage::Dispatch)));
        let twin = pipe.slab.insert(frontend_inst(2, OpClass::IntAlu, None));
        pipe.rename_q.push_back((now, faulty));
        pipe.rename_q.push_back((now, twin));

        pipe.dispatch(now);
        assert_eq!(pipe.stats.in_order_stalls, 1, "fault charged at the stall signal");
        assert_eq!(pipe.rob.len(), 0, "nothing dispatches in the charge cycle");
        assert_eq!(pipe.rename_q.len(), 2);
        assert_eq!(pipe.dispatch_stall_until, now + 2);

        pipe.dispatch(now + 1);
        assert_eq!(pipe.rob.len(), 0, "the stage admits nothing in its second cycle");

        pipe.dispatch(now + 2);
        assert_eq!(pipe.rob.len(), 2, "both dispatch once the signal clears");
        assert_eq!(pipe.stats.in_order_stalls, 1, "fault charged exactly once");
    }

    #[test]
    fn rename_stall_holds_faulty_inst_and_width_group() {
        let now = 50;
        let mut pipe = vte_pipe();
        let faulty = pipe
            .slab
            .insert(frontend_inst(1, OpClass::IntAlu, Some(PipeStage::Rename)));
        let twin = pipe.slab.insert(frontend_inst(2, OpClass::IntAlu, None));
        pipe.decode_q.push_back((now, faulty));
        pipe.decode_q.push_back((now, twin));

        pipe.rename_stage(now);
        assert_eq!(pipe.stats.in_order_stalls, 1);
        assert!(pipe.rename_q.is_empty(), "nothing renames in the charge cycle");
        assert_eq!(pipe.rename_stall_until, now + 2);

        pipe.rename_stage(now + 1);
        assert!(pipe.rename_q.is_empty(), "second stall cycle admits nothing");

        pipe.rename_stage(now + 2);
        assert_eq!(pipe.rename_q.len(), 2, "both rename once the signal clears");
        assert_eq!(pipe.stats.in_order_stalls, 1);
    }

    #[test]
    fn global_stall_slips_pending_in_order_stall_deadlines() {
        // An EP stall or recovery bubble recirculates every latch: an
        // in-order stall deadline still pending must slip with the machine
        // instead of silently expiring mid-stall (losing the faulty
        // stage's second cycle). Already-expired deadlines stay put.
        let now = 80;
        let mut pipe = vte_pipe();
        pipe.rename_stall_until = now;
        pipe.dispatch_stall_until = now + 2;
        pipe.retire_stall_until = now + 1;
        pipe.apply_global_stall(now, 1);
        assert_eq!(pipe.rename_stall_until, now, "expired deadline unmoved");
        assert_eq!(pipe.dispatch_stall_until, now + 3);
        assert_eq!(pipe.retire_stall_until, now + 2);
    }

    #[test]
    fn lsq_full_dispatch_does_not_consume_predicted_fault() {
        // The LSQ availability check must come before the fault is charged:
        // a load that cannot allocate its LSQ entry stays in rename_q with
        // its predicted fault intact, and pays the two-cycle stall in the
        // cycle it actually dispatches.
        let now = 50;
        let mut pipe = vte_pipe();
        while pipe.lsq.free() > 0 {
            assert!(pipe.lsq.alloc_load());
        }
        let load = pipe
            .slab
            .insert(frontend_inst(1, OpClass::Load, Some(PipeStage::Dispatch)));
        pipe.rename_q.push_back((now, load));

        pipe.dispatch(now);
        assert_eq!(pipe.stats.in_order_stalls, 0, "no charge while the LSQ blocks dispatch");
        assert!(!pipe.slab.get(load).in_order_charged);
        assert_eq!(pipe.rename_q.len(), 1);

        pipe.lsq.release_load();
        pipe.dispatch(now + 1);
        assert_eq!(pipe.stats.in_order_stalls, 1, "fault charged once dispatch is possible");
        assert_eq!(pipe.dispatch_stall_until, now + 3);

        pipe.dispatch(now + 3);
        assert_eq!(pipe.rob.len(), 1, "load dispatches after its second cycle");
    }

    #[test]
    fn auditor_reports_clean_runs_across_schemes() {
        for mode in [
            ToleranceMode::FaultFree,
            ToleranceMode::Razor,
            ToleranceMode::ErrorPadding,
            ToleranceMode::ViolationAware,
        ] {
            let vdd = if mode == ToleranceMode::FaultFree {
                Voltage::nominal()
            } else {
                Voltage::high_fault()
            };
            let mut pipe = Pipeline::builder(Benchmark::Astar, 7)
                .tolerance(mode)
                .voltage(vdd)
                .audit(AuditLevel::Full)
                .build();
            pipe.warm_up(2_000); // auditing must survive the stats reset
            pipe.run(8_000);
            let report = pipe.audit_report().expect("auditing enabled");
            assert!(report.cycles > 0 && report.checks > report.cycles);
            assert!(
                report.clean(),
                "{mode:?}: {} violations, first: {:?}",
                report.violations_total,
                report.violations.first()
            );
        }
    }

    #[test]
    fn audit_off_has_no_report_and_identical_results() {
        let run = |level: AuditLevel| {
            let mut b = Pipeline::builder(Benchmark::Gobmk, 5)
                .tolerance(ToleranceMode::ViolationAware)
                .voltage(Voltage::high_fault());
            if level.enabled() {
                b = b.audit(level);
            }
            let mut pipe = b.build();
            let stats = pipe.run(10_000);
            (stats, pipe.audit_report())
        };
        let (base, none) = run(AuditLevel::Off);
        let (audited, report) = run(AuditLevel::Full);
        assert!(none.is_none());
        assert!(report.is_some());
        assert_eq!(base, audited, "auditing must not perturb the simulation");
    }

    #[test]
    fn commit_log_records_architectural_stream() {
        let mut pipe = Pipeline::builder(Benchmark::Gcc, 3)
            .record_commits(true)
            .build();
        pipe.run(500);
        let log = pipe.commit_log().expect("recording enabled");
        assert_eq!(log.len(), 500);
        for (i, &(seq, _, _)) in log.iter().enumerate() {
            assert_eq!(seq, i as u64, "commit stream is contiguous from 0");
        }
    }

    #[test]
    fn fast_forward_offsets_commit_stream() {
        let stats = Pipeline::builder(Benchmark::Gcc, 9)
            .fast_forward(5_000)
            .build()
            .run(1_000);
        assert_eq!(stats.committed, 1_000);
    }
}
