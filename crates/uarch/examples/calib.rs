use tv_uarch::{Pipeline, ToleranceMode};
use tv_timing::Voltage;
use tv_workloads::Benchmark;

fn main() {
    println!("{:12} {:>6} {:>6} {:>7} {:>7} {:>7}", "bench", "ipc", "paper", "mispr", "l1d", "l2");
    for b in Benchmark::ALL {
        let stats = Pipeline::builder(b, 42)
            .tolerance(ToleranceMode::FaultFree)
            .voltage(Voltage::nominal())
            .build()
            .run(400_000);
        println!(
            "{:12} {:>6.2} {:>6.2} {:>6.1}% {:>6.1}% {:>6.1}%",
            b.name(), stats.ipc(), b.profile().paper_ipc,
            100.0 * stats.mispredict_rate(),
            100.0 * stats.l1d_miss_rate, 100.0 * stats.l2_miss_rate
        );
    }
}
