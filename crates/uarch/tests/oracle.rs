//! Golden-model oracle end-to-end checks: every real tolerance scheme must
//! commit oracle-clean architectural state under fault injection, the
//! NoTolerance control must be caught corrupting it, and the commit
//! watchdog must report a structured diagnostic instead of spinning.

use tv_timing::{FaultCalibration, Voltage};
use tv_uarch::{CoreConfig, Pipeline, PipelineBuilder, ToleranceMode};
use tv_workloads::Benchmark;

const COMMITS: u64 = 20_000;

fn faulty(bench: Benchmark, mode: ToleranceMode) -> PipelineBuilder {
    Pipeline::builder(bench, 42)
        .tolerance(mode)
        .voltage(Voltage::high_fault())
        .oracle(true)
}

#[test]
fn razor_replays_every_fault_and_commits_oracle_clean_values() {
    // The satellite's contract for the Razor replay path: an unpredicted
    // fault corrupts the in-flight result, the stage latch detects it,
    // replay re-executes violation-free, and the *committed* value is the
    // oracle-correct one.
    let mut pipe = faulty(Benchmark::Gcc, ToleranceMode::Razor).build();
    let stats = pipe.run(COMMITS);
    assert!(stats.replays > 0, "fault injection must trigger replays");
    assert_eq!(
        stats.replays,
        stats.faults_total(),
        "Razor has no predictor: every fault is an unpredicted replay"
    );
    assert_eq!(stats.untolerated_faults, 0);
    // Pin the recovery accounting: each replay owes exactly
    // `replay_latency` whole-pipeline bubbles, and commits only happen
    // with the bubble ledger drained, so over any commit-bounded window
    // the two sides balance exactly.
    assert_eq!(
        stats.recovery_stall_cycles,
        stats.replays * CoreConfig::core1().replay_latency,
        "recovery bubbles must balance replays exactly"
    );
    let report = pipe.oracle_report().expect("oracle enabled");
    assert_eq!(report.checked, COMMITS);
    assert!(report.clean(), "Razor corrupted state: {}", report.summary());
}

#[test]
fn vte_replays_unpredicted_noncritical_faults_clean() {
    // Raise the unpredictable share so plenty of faults strike
    // non-critical PCs the TEP has never flagged — the replay path inside
    // the violation-aware scheme.
    let cal = FaultCalibration {
        unpredictable_share: 0.25,
        ..FaultCalibration::from_rates(6.74, 2.01)
    };
    let mut pipe = faulty(Benchmark::Astar, ToleranceMode::ViolationAware)
        .calibration(cal)
        .build();
    let stats = pipe.run(COMMITS);
    assert!(
        stats.faults_unpredicted > 0,
        "unpredictable share must produce unpredicted faults"
    );
    assert!(stats.replays > 0);
    assert!(stats.faults_predicted > 0, "the TEP still covers hot PCs");
    let report = pipe.oracle_report().expect("oracle enabled");
    assert!(report.clean(), "VTE corrupted state: {}", report.summary());
}

#[test]
fn error_padding_commits_oracle_clean_values() {
    let mut pipe = faulty(Benchmark::Bzip2, ToleranceMode::ErrorPadding).build();
    let stats = pipe.run(COMMITS);
    assert!(stats.faults_total() > 0);
    let report = pipe.oracle_report().expect("oracle enabled");
    assert!(report.clean(), "EP corrupted state: {}", report.summary());
}

#[test]
fn no_tolerance_control_is_caught_corrupting_state() {
    let mut pipe = faulty(Benchmark::Gcc, ToleranceMode::NoTolerance).build();
    let stats = pipe.run(COMMITS);
    assert!(
        stats.untolerated_faults > 0,
        "the control must let faults through"
    );
    assert_eq!(stats.replays, 0, "the control never replays");
    let report = pipe.oracle_report().expect("oracle enabled");
    assert!(
        !report.clean(),
        "oracle failed to flag {} untolerated faults",
        stats.untolerated_faults
    );
    assert!(report.value_mismatches > 0);
    assert!(!report.first_mismatches.is_empty());
}

#[test]
fn oracle_is_purely_observational() {
    // Bit-identical timing and statistics with the oracle on and off.
    let run = |oracle: bool| {
        faulty(Benchmark::Sjeng, ToleranceMode::ViolationAware)
            .oracle(oracle)
            .build()
            .run(10_000)
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn watchdog_returns_structured_dump_instead_of_spinning() {
    // A threshold below the main-memory latency wedges on the first cold
    // L2 miss: the dump must identify the stuck machine state.
    let cfg = CoreConfig {
        watchdog_cycles: 64,
        ..CoreConfig::core1()
    };
    let mut pipe = Pipeline::builder(Benchmark::Mcf, 7).config(cfg).build();
    let err = pipe
        .try_run(50_000)
        .expect_err("a 64-cycle watchdog must trip under 240-cycle memory");
    assert_eq!(err.threshold, 64);
    assert!(err.cycle - err.last_commit_cycle >= 64);
    assert!(err.committed < 50_000);
    assert!(err.rob_len > 0 || err.frontend_len > 0, "machine not empty");
    let line = err.to_string();
    assert!(!line.contains(','), "dump must embed in a CSV field");
}

#[test]
#[should_panic(expected = "pipeline deadlock")]
fn run_still_panics_on_watchdog() {
    let cfg = CoreConfig {
        watchdog_cycles: 64,
        ..CoreConfig::core1()
    };
    let mut pipe = Pipeline::builder(Benchmark::Mcf, 7).config(cfg).build();
    let _ = pipe.run(50_000);
}
