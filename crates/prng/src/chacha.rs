//! ChaCha12 keystream generator, bit-exact with `rand_chacha::ChaCha12Rng`.
//!
//! Two details beyond the textbook block function matter for stream
//! equality with `rand_chacha` 0.3:
//!
//! 1. **Four-block refills.** `rand_chacha` generates four 64-byte ChaCha
//!    blocks per refill (counters `c, c+1, c+2, c+3`) into a 64-word
//!    results buffer.
//! 2. **`BlockRng` word splicing.** `next_u64` normally consumes two
//!    consecutive `u32` words (low word first), but when exactly one word
//!    remains in the buffer it splices that word (as the low half) with
//!    the first word of the *next* refill (as the high half). Workloads
//!    that interleave `next_u32` and `next_u64` draws — ours do — hit this
//!    path, so it must match exactly.

use crate::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// Blocks generated per refill (rand_chacha's `BUFBLOCKS`).
const BUF_BLOCKS: u64 = 4;
const BUF_WORDS: usize = BLOCK_WORDS * BUF_BLOCKS as usize;
/// "expand 32-byte k"
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
/// ChaCha12 = 6 double rounds.
const DOUBLE_ROUNDS: usize = 6;

/// A ChaCha stream cipher RNG with 12 rounds — the `rand` project's
/// recommended balance of speed and security margin, and the generator
/// every deterministic stream in this workspace is calibrated against.
#[derive(Clone)]
pub struct ChaCha12Rng {
    /// Key words (seed bytes, little-endian).
    key: [u32; 8],
    /// 64-bit block counter of the *next* refill (words 12–13).
    counter: u64,
    /// 64-bit stream id (words 14–15); 0 for seeded construction.
    stream: u64,
    /// Buffered output words.
    results: [u32; BUF_WORDS],
    /// Next unread index into `results` (`BUF_WORDS` = empty).
    index: usize,
}

impl std::fmt::Debug for ChaCha12Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Like rand_chacha, hide the key/stream state.
        f.debug_struct("ChaCha12Rng").finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    /// Computes one 64-byte block into `out`.
    fn block(&self, counter: u64, out: &mut [u32]) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
            *o = s.wrapping_add(*i);
        }
    }

    /// Refills the four-block buffer and advances the counter, leaving
    /// `index` at `offset` (rand_core's `generate_and_set`).
    fn generate_and_set(&mut self, offset: usize) {
        for b in 0..BUF_BLOCKS {
            let start = (b as usize) * BLOCK_WORDS;
            let mut block = [0u32; BLOCK_WORDS];
            self.block(self.counter.wrapping_add(b), &mut block);
            self.results[start..start + BLOCK_WORDS].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(BUF_BLOCKS);
        self.index = offset;
    }

    /// The stream id (always 0 for seeded construction).
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            stream: 0,
            results: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
        } else {
            // One word left: splice it with the next buffer's first word.
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// RFC 8439 §2.3.2 test vector, adapted to 12 rounds is not published;
    /// instead pin the structural properties the port depends on and the
    /// known ChaCha20 relationship: with the same state layout, 20-round
    /// output must match RFC 8439 when the round count is raised. The
    /// 12-round keystream itself is pinned against `rand_chacha` via the
    /// workspace golden tests (bench_results CSVs regenerate bit-exactly).
    #[test]
    fn rfc8439_state_layout_matches_chacha20() {
        // Run the RFC 8439 §2.3.2 block with 10 double rounds by locally
        // re-deriving the block function; verifies constants, key/counter/
        // nonce word layout, quarter-round and final add.
        let key_bytes: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (k, chunk) in state[4..12].iter_mut().zip(key_bytes.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        state[12] = 1;
        state[13] = 0x0900_0000;
        state[14] = 0x4a00_0000;
        state[15] = 0;
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(*i);
        }
        // RFC 8439 §2.3.2 expected block (serialized keystream words).
        let expected: [u32; 16] = [
            0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3,
            0xc7f4_d1c7, 0x0368_c033, 0x9aaa_2204, 0x4e6c_d4c3,
            0x4664_82d2, 0x09aa_9f07, 0x05d7_c214, 0xa202_8bd9,
            0xd19c_12b5, 0xb94e_16de, 0xe883_d0cb, 0x4e3c_50a2,
        ];
        assert_eq!(state, expected);
    }

    #[test]
    fn mixed_width_draws_are_reproducible() {
        // The u32/u64 splicing path must be deterministic and stable.
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        for i in 0..1_000 {
            if i % 3 == 0 {
                assert_eq!(a.next_u32(), b.next_u32());
            } else {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn boundary_splice_consumes_one_word_of_next_buffer() {
        // Drain to exactly one remaining word, then draw a u64: the low
        // half must be the last word of the old buffer, the high half the
        // first word of the new one, and the next u32 the second word.
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut probe = rng.clone();
        let mut words = Vec::new();
        for _ in 0..(BUF_WORDS * 2) {
            words.push(probe.next_u32());
        }
        for w in words.iter().take(BUF_WORDS - 1) {
            assert_eq!(rng.next_u32(), *w);
        }
        let spliced = rng.next_u64();
        assert_eq!(spliced as u32, words[BUF_WORDS - 1]);
        assert_eq!((spliced >> 32) as u32, words[BUF_WORDS]);
        assert_eq!(rng.next_u32(), words[BUF_WORDS + 1]);
    }

    #[test]
    fn counter_advances_by_four_blocks_per_refill() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert_eq!(rng.counter, 0);
        let _ = rng.next_u32();
        assert_eq!(rng.counter, 4);
        for _ in 0..BUF_WORDS {
            let _ = rng.next_u32();
        }
        assert_eq!(rng.counter, 8);
        assert_eq!(rng.get_stream(), 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let _: u64 = rng.gen();
        let _ = rng.next_u32();
        let mut snap = rng.clone();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), snap.next_u64());
        }
    }
}
