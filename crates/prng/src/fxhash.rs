//! Deterministic multiply-xor hashing for hot-path hash maps.
//!
//! `std::collections::HashMap`'s default SipHash-1-3 hasher costs tens of
//! nanoseconds per lookup — measurable when the cycle simulator probes a
//! map once or twice per simulated instruction (fault-model PC ranks,
//! trace-generator memory cursors). This hasher is the Firefox `FxHash`
//! construction: one wrapping multiply and a rotate per 8-byte word. It is
//! not DoS-resistant, which is fine for simulator-internal keys, and it is
//! fully deterministic — no per-process random state — so map *lookups*
//! are reproducible everywhere. Iteration order still must not leak into
//! results (that rule predates this hasher: the std default randomizes
//! iteration per process).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by the deterministic [`FxHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Creates an empty [`FastHashMap`].
pub fn fast_map<K, V>() -> FastHashMap<K, V> {
    FastHashMap::default()
}

/// Creates a [`FastHashMap`] with room for `capacity` entries.
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(capacity, Default::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time multiply-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m = fast_map();
        for i in 0..1_000u64 {
            m.insert(i * 8 + 0x1000, i);
        }
        for i in 0..1_000u64 {
            assert_eq!(m.get(&(i * 8 + 0x1000)), Some(&i));
        }
        assert_eq!(m.get(&7), None);
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43), "distinct keys should (here) hash apart");
    }

    #[test]
    fn byte_writes_match_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0, 0, 0, 0]);
        assert_eq!(a.finish(), b.finish(), "remainder is zero-padded");
    }

    #[test]
    fn with_capacity_constructor() {
        let mut m = fast_map_with_capacity::<u64, u64>(64);
        assert!(m.capacity() >= 64);
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
