//! Vendored CRC-32 (IEEE 802.3) for row-level corruption detection.
//!
//! The campaign journal and the result store need a checksum whose job
//! is *error detection*, not fingerprinting: a single flipped bit, a
//! flipped byte, or any burst shorter than 32 bits in a journal row must
//! be caught with certainty so the row can be quarantined and its cell
//! re-executed. FNV-1a (the workspace's content fingerprint) has no such
//! guarantee; the reflected CRC-32 with polynomial `0xEDB88320` detects
//! all single-bit errors, all double-bit errors within the typical row
//! length, all odd numbers of bit errors, and every burst up to 32 bits —
//! which is exactly the fault population the chaos layer injects.
//!
//! Offline-build policy: like the ChaCha12 and FxHash ports in this
//! crate, this is a self-contained implementation (table-driven, one
//! 256-entry table built in `const` context), not a dependency.

/// The reflected CRC-32 polynomial (IEEE 802.3, zlib, PNG).
const POLY: u32 = 0xEDB8_8320;

/// The byte-at-a-time lookup table for [`POLY`].
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// standard zlib/PNG parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// A streaming CRC-32 accumulator, for checksumming without a contiguous
/// buffer (e.g. a store entry read in chunks).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// The checksum of everything updated so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_reference_vectors() {
        // The standard CRC-32 check value and a few well-known vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_one_shot_at_any_split() {
        let data = b"id,scenario,bench,vdd,scheme,seed,verdict";
        let reference = crc32(data);
        for split in 0..=data.len() {
            let mut acc = Crc32::new();
            acc.update(&data[..split]);
            acc.update(&data[split..]);
            assert_eq!(acc.finish(), reference, "split at {split}");
        }
    }

    #[test]
    fn detects_every_single_byte_corruption() {
        // The property the journal quarantine logic relies on: no
        // single-byte change (including to '\t' or '\n') can preserve
        // the checksum.
        let row = b"3/CDS\t3,burst,gcc,0.970,CDS,77,clean,30000,61234,12,8,4,0,12,0,3,0,0,-";
        let reference = crc32(row);
        let mut corrupt = row.to_vec();
        for i in 0..row.len() {
            for flip in [0xFFu8, 0x01, b'\t' ^ row[i], b'\n' ^ row[i]] {
                if flip == 0 {
                    continue;
                }
                corrupt[i] ^= flip;
                assert_ne!(crc32(&corrupt), reference, "offset {i} xor {flip:#x}");
                corrupt[i] = row[i];
            }
        }
    }
}
