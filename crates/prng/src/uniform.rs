//! Uniform range sampling, bit-exact with `rand` 0.8.5's `gen_range`.
//!
//! Integers use the widening-multiply rejection method (`v.wmul(range)`,
//! accept while `lo <= zone`); 8/16-bit types draw a full `u32` and use
//! the modulo zone, wider types use the `range << leading_zeros` zone —
//! exactly the per-type choices `rand` 0.8.5 makes, because each draws a
//! different number of words from the generator. Floats use the
//! `[1, 2)`-mantissa method with 52 random bits and the bit-decrement
//! rescale on the (astronomically rare) `res == high` edge case.

use crate::{Distribution, RngCore, Standard};
use std::ops::{Range, RangeInclusive};

/// Types that [`Rng::gen_range`](crate::Rng::gen_range) can sample
/// uniformly from a range (mirror of `rand::distributions::uniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
        -> Self;
}

/// Range argument accepted by `gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Widening multiply returning `(hi, lo)` halves.
macro_rules! wmul {
    ($a:expr, $b:expr, u32) => {{
        let t = u64::from($a) * u64::from($b);
        ((t >> 32) as u32, t as u32)
    }};
    ($a:expr, $b:expr, u64) => {{
        let t = u128::from($a) * u128::from($b);
        ((t >> 64) as u64, t as u64)
    }};
}

macro_rules! uniform_int_impl {
    ($ty:ty, $uty:ty, $u_large:tt) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = high.wrapping_sub(low) as $uty as $u_large;
                let zone = if <$uty>::MAX <= u16::MAX as $uty {
                    // Small types widen to u32: reject via modulo zone.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = Standard.sample(rng);
                    let (hi, lo) = wmul!(v, range, $u_large);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let range = high.wrapping_sub(low).wrapping_add(1) as $uty as $u_large;
                if range == 0 {
                    // The full type range: every bit pattern is valid.
                    return Standard.sample(rng);
                }
                let zone = if <$uty>::MAX <= u16::MAX as $uty {
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = Standard.sample(rng);
                    let (hi, lo) = wmul!(v, range, $u_large);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(i8, u8, u32);
uniform_int_impl!(u8, u8, u32);
uniform_int_impl!(i16, u16, u32);
uniform_int_impl!(u16, u16, u32);
uniform_int_impl!(i32, u32, u32);
uniform_int_impl!(u32, u32, u32);
uniform_int_impl!(i64, u64, u64);
uniform_int_impl!(u64, u64, u64);
uniform_int_impl!(isize, usize, u64);
uniform_int_impl!(usize, usize, u64);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        debug_assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        let mut scale = high - low;
        loop {
            // 52 random mantissa bits → value in [1, 2), shift to [0, 1).
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            // `res` rounded up to exactly `high`: shrink the scale by one
            // ulp and redraw (rand's `decrease_masked`).
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // Not used by this workspace; the half-open draw is a faithful
        // stand-in for the measure-zero difference.
        Self::sample_single(low, high, rng)
    }
}

impl SampleUniform for f32 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        debug_assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        let mut scale = high - low;
        loop {
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        Self::sample_single(low, high, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaCha12Rng, Rng, SeedableRng};

    #[test]
    fn small_int_types_draw_a_full_u32() {
        // rand 0.8 widens u8/u16 draws to u32; the word-consumption rate
        // and the widening-multiply mapping are part of the stream
        // contract. For range 1..32 the modulo zone rejects ~2^-27 of
        // draws, so with this fixed seed exactly one word is consumed.
        let mut a = ChaCha12Rng::seed_from_u64(21);
        let mut b = a.clone();
        let x: u8 = a.gen_range(1..32);
        let v = b.next_u32();
        let hi = ((u64::from(v) * 31) >> 32) as u8;
        assert_eq!(x, 1 + hi, "widening-multiply mapping");
        assert_eq!(a.next_u64(), b.next_u64(), "exactly one u32 consumed");
    }

    #[test]
    fn inclusive_full_range_returns_raw_draw() {
        let mut a = ChaCha12Rng::seed_from_u64(33);
        let mut b = ChaCha12Rng::seed_from_u64(33);
        let x: u64 = a.gen_range(0..=u64::MAX);
        assert_eq!(x, b.next_u64());
    }

    #[test]
    fn float_draw_matches_mantissa_method() {
        let mut a = ChaCha12Rng::seed_from_u64(8);
        let mut b = ChaCha12Rng::seed_from_u64(8);
        let x = a.gen_range(0.0..10.0);
        let bits = b.next_u64() >> 12;
        let expect = (f64::from_bits(bits | (1023u64 << 52)) - 1.0) * 10.0;
        assert_eq!(x, expect);
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = ChaCha12Rng::seed_from_u64(55);
        for _ in 0..5_000 {
            let x = rng.gen_range(-0.08..0.08);
            assert!((-0.08..0.08).contains(&x));
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = ChaCha12Rng::seed_from_u64(1).gen_range(5..5);
    }
}
