//! Vendored deterministic PRNG for offline builds.
//!
//! The workspace originally depended on the `rand` 0.8 and `rand_chacha`
//! 0.3 crates. Those cannot be fetched in the offline environments this
//! repository must build in, so this crate ports — **bit-exactly** — the
//! slice of their API the workspace uses:
//!
//! * [`ChaCha12Rng`] with `rand_chacha`'s four-block output buffering and
//!   `rand_core`'s `BlockRng` word-splicing semantics, so mixed
//!   `next_u32`/`next_u64` call sequences reproduce the identical stream;
//! * [`SeedableRng::seed_from_u64`] with `rand_core` 0.6's PCG32-based
//!   seed expansion;
//! * [`Rng::gen`] for `u8`–`u64`/`usize`/`i32`/`i64`/`f64` with `rand`'s
//!   `Standard` distribution (53-bit multiply for `f64`);
//! * [`Rng::gen_range`] with `rand` 0.8.5's widening-multiply rejection
//!   sampling for integers and the `[1, 2)`-mantissa method for floats;
//! * [`Rng::gen_bool`] with `rand`'s fixed-point `Bernoulli`.
//!
//! Bit-exactness matters: every calibrated constant in `tv-workloads` and
//! `tv-timing`, every tolerance in the test suite, and every golden CSV in
//! `bench_results/` was produced under the original crates' streams. The
//! regenerated tables/figures match the committed artifacts bit-for-bit,
//! which is how this port was validated (see `tests/golden.rs` at the
//! workspace root).

mod chacha;
mod crc32;
mod fxhash;
mod uniform;

pub use chacha::ChaCha12Rng;
pub use crc32::{crc32, Crc32};
pub use fxhash::{fast_map, fast_map_with_capacity, FastHashMap, FxHasher};
pub use uniform::{SampleRange, SampleUniform};

/// A source of random 32/64-bit words (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from raw bytes or a `u64` (mirror of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with `rand_core` 0.6's PCG32
    /// stream and builds the generator — bit-identical to
    /// `rand::SeedableRng::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A distribution over values of `T` (mirror of
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The `rand::distributions::Standard` distribution: full-range integers,
/// `[0, 1)` floats via the 53-bit multiply method.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int_32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*};
}
macro_rules! standard_int_64 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int_32!(u8, u16, u32, i8, i16, i32);
standard_int_64!(u64, i64, usize, isize);

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8's Open01-free default: 53 significant bits, multiply.
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> (32 - 24);
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing sampling methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive),
    /// reproducing `rand` 0.8.5's `gen_range` draw sequence.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`, reproducing
    /// `rand::Rng::gen_bool` (`p == 1.0` consumes no randomness).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0.0, 1.0]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if !(0.0..1.0).contains(&p) {
            assert!(p == 1.0, "gen_bool: p = {p} is outside [0.0, 1.0]");
            return true;
        }
        // rand's Bernoulli: 64-bit fixed point, SCALE = 2^64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_expansion_is_stable() {
        // The PCG32 expansion must be a pure function of the input seed.
        let a = ChaCha12Rng::seed_from_u64(42);
        let b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let (mut a, mut b) = (a, b);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            ChaCha12Rng::seed_from_u64(42).next_u64(),
            c.next_u64(),
            "different seeds must diverge"
        );
    }

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=8usize);
            assert!((2..=8).contains(&y));
            let z = rng.gen_range(-0.08..0.08);
            assert!((-0.08..0.08).contains(&z));
            let w = rng.gen_range(0..1u64 << 40);
            assert!(w < 1 << 40);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha12Rng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    #[should_panic(expected = "outside [0.0, 1.0]")]
    fn gen_bool_rejects_bad_p() {
        let _ = ChaCha12Rng::seed_from_u64(1).gen_bool(1.5);
    }
}
