//! Timing Error Predictor (TEP).
//!
//! The paper's TEP (§2.1.1) "combines features from the Most Recent Entry
//! (MRE) predictor proposed by Xin et al. with the Timing Violation
//! Predictor (TVP) proposed by Roy et al.":
//!
//! * a table of entries indexed by "a combination of bits in the PC and the
//!   recent branch outcomes";
//! * each entry holds a 2-byte tag obtained from the PC, a 2-bit saturating
//!   counter ("a non-zero value ... indicates a possible timing
//!   violation"), and the faulty pipe stage associated with the error;
//! * the criticality verdict of the CDL is also "store\[d\] ... with the
//!   timing error predictor" (§3.5.2);
//! * predictions "consider favorable conditions for timing errors through
//!   the use of thermal and voltage sensors" — the `armed` argument of
//!   [`Tep::predict`].
//!
//! The predictor is accessed in parallel with decode; the prediction is
//! carried with the instruction's meta-data down the pipe.
//!
//! # Example
//!
//! ```
//! use tv_tep::{Tep, TepConfig};
//! use tv_timing::PipeStage;
//!
//! let mut tep = Tep::new(TepConfig::default());
//! assert!(!tep.predict(0x1040, true).faulty); // cold
//! tep.train_fault(0x1040, PipeStage::Issue);
//! let p = tep.predict(0x1040, true);
//! assert!(p.faulty);
//! assert_eq!(p.stage, Some(PipeStage::Issue));
//! ```

use tv_timing::PipeStage;

/// Geometry and behaviour of the predictor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TepConfig {
    /// Number of table entries (must be a power of two).
    pub entries: usize,
    /// Tag width in bits (paper: 2 bytes).
    pub tag_bits: u32,
    /// Number of recent branch outcomes folded into the index; `0`
    /// disables branch-history mixing entirely (a purely PC-indexed
    /// table).
    pub history_bits: u32,
    /// Saturating-counter ceiling (paper: 2-bit ⇒ 3).
    pub counter_max: u8,
    /// Increment applied when a violation is observed (fast learn).
    pub train_up: u8,
    /// Decrement applied when a predicted instruction completes cleanly
    /// (slow forget).
    pub train_down: u8,
    /// Halve all counters every this many lookups, adapting the table to
    /// temperature/voltage epochs. `0` disables decay.
    pub decay_interval: u64,
}

impl TepConfig {
    /// The paper-faithful configuration: 4096 entries, 16-bit tags, one
    /// bit of branch history folded into the index, 2-bit counters that
    /// saturate on the first observed violation (a violation is a strong
    /// signal — the sensitized paths of future instances are ≈90 %
    /// identical, §S1).
    pub fn paper_default() -> Self {
        TepConfig {
            entries: 4096,
            tag_bits: 16,
            history_bits: 1,
            counter_max: 3,
            train_up: 3,
            train_down: 1,
            decay_interval: 1 << 20,
        }
    }

    fn validate(&self) {
        assert!(
            self.entries.is_power_of_two() && self.entries >= 2,
            "entries must be a power of two ≥ 2"
        );
        assert!(self.tag_bits >= 1 && self.tag_bits <= 32, "tag bits out of range");
        assert!(
            self.history_bits <= 16,
            "history_bits must be in 0..=16 (0 disables history mixing)"
        );
        assert!(self.counter_max >= 1, "counter max must be at least 1");
        assert!(self.train_up >= 1, "train_up must be at least 1");
    }
}

impl Default for TepConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One prediction, produced at decode and carried with the instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Whether a timing violation is predicted.
    pub faulty: bool,
    /// The predicted faulty pipe stage (present iff `faulty`).
    pub stage: Option<PipeStage>,
    /// Whether the CDL has marked this instruction critical (used by CDS).
    pub critical: bool,
}

impl Prediction {
    /// A clean (no-fault) prediction.
    pub fn clean() -> Self {
        Prediction {
            faulty: false,
            stage: None,
            critical: false,
        }
    }
}

/// A captured table coordinate: the index/tag pair a decode-time lookup
/// resolved to.
///
/// The index mixes in the branch-history register, which keeps shifting as
/// the instruction flows down the pipe; training through the key therefore
/// hits exactly the entry the prediction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LookupKey {
    index: u32,
    tag: u32,
}

/// Event counters for predictor introspection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TepStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that matched a live (tag-hit, non-zero-counter) entry.
    pub hits: u64,
    /// Lookups returning a faulty prediction.
    pub predictions: u64,
    /// Fault-training events.
    pub faults_trained: u64,
    /// Clean-training events.
    pub cleans_trained: u64,
    /// Entry allocations (cold or tag-conflict).
    pub allocations: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u32,
    counter: u8,
    stage: PipeStage,
    critical: bool,
}

/// The Timing Error Predictor table.
#[derive(Debug, Clone)]
pub struct Tep {
    config: TepConfig,
    table: Vec<Option<Entry>>,
    /// Shift register of recent branch outcomes (LSB = most recent).
    history: u32,
    stats: TepStats,
}

impl Tep {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`TepConfig`] fields).
    pub fn new(config: TepConfig) -> Self {
        config.validate();
        Tep {
            config,
            table: vec![None; config.entries],
            history: 0,
            stats: TepStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TepConfig {
        &self.config
    }

    /// Event counters.
    pub fn stats(&self) -> TepStats {
        self.stats
    }

    /// Shifts a resolved branch outcome into the history register. A
    /// no-op when `history_bits == 0`: a history-free predictor keeps its
    /// register pinned at zero so the index is a pure PC hash.
    pub fn record_branch(&mut self, taken: bool) {
        if self.config.history_bits == 0 {
            return;
        }
        let mask = (1u32 << self.config.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u32) & mask;
    }

    fn index_of(&self, pc: u64) -> usize {
        let word = pc >> 2;
        // History occupies the top index bits: nearby PCs (which are the
        // common simultaneous-fault case) never alias through the history
        // contribution.
        let index_bits = self.config.entries.trailing_zeros();
        let shift = index_bits.saturating_sub(self.config.history_bits);
        let hashed = word ^ (word >> 13) ^ ((self.history as u64) << shift);
        (hashed as usize) & (self.config.entries - 1)
    }

    fn tag_of(&self, pc: u64) -> u32 {
        // Tag from bits above the index to reduce index/tag redundancy.
        let word = pc >> 2;
        ((word >> 7) ^ (word << 1)) as u32 & ((1u32 << self.config.tag_bits) - 1)
    }

    /// The table coordinate `pc` resolves to under the *current* branch
    /// history; capture it at decode and train through it later.
    pub fn lookup_key(&self, pc: u64) -> LookupKey {
        LookupKey {
            index: self.index_of(pc) as u32,
            tag: self.tag_of(pc),
        }
    }

    /// Looks up `pc` at decode. `armed` is the sensor gate: when the
    /// thermal/voltage sensors report unfavourable-for-errors conditions
    /// the predictor returns a clean prediction regardless of table state.
    pub fn predict(&mut self, pc: u64, armed: bool) -> Prediction {
        self.stats.lookups += 1;
        if self.config.decay_interval > 0 && self.stats.lookups % self.config.decay_interval == 0 {
            self.decay();
        }
        let idx = self.index_of(pc);
        let tag = self.tag_of(pc);
        match self.table[idx] {
            Some(e) if e.tag == tag && e.counter > 0 => {
                self.stats.hits += 1;
                if armed {
                    self.stats.predictions += 1;
                    Prediction {
                        faulty: true,
                        stage: Some(e.stage),
                        critical: e.critical,
                    }
                } else {
                    Prediction::clean()
                }
            }
            _ => Prediction::clean(),
        }
    }

    /// Trains the predictor with an observed timing violation of `pc` in
    /// `stage` (called on replay recovery or on a tolerated predicted
    /// fault re-confirmed by the stage-level detector).
    pub fn train_fault(&mut self, pc: u64, stage: PipeStage) {
        let key = self.lookup_key(pc);
        self.train_fault_at(key, stage);
    }

    /// [`train_fault`](Tep::train_fault) through a captured decode-time key.
    pub fn train_fault_at(&mut self, key: LookupKey, stage: PipeStage) {
        self.stats.faults_trained += 1;
        let idx = key.index as usize & (self.config.entries - 1);
        let tag = key.tag;
        let cfg = self.config;
        match &mut self.table[idx] {
            Some(e) if e.tag == tag => {
                e.counter = e.counter.saturating_add(cfg.train_up).min(cfg.counter_max);
                e.stage = stage;
            }
            slot => {
                // Most-recent-entry allocation: conflicting or empty slots
                // are overwritten by the newest faulting instruction.
                self.stats.allocations += 1;
                *slot = Some(Entry {
                    tag,
                    counter: cfg.train_up.min(cfg.counter_max),
                    stage,
                    critical: false,
                });
            }
        }
    }

    /// Trains the predictor with a clean completion of a *predicted* `pc`
    /// (the stage-level detector saw no late transition in the padded
    /// cycle), weakening the entry.
    pub fn train_clean(&mut self, pc: u64) {
        let key = self.lookup_key(pc);
        self.train_clean_at(key);
    }

    /// [`train_clean`](Tep::train_clean) through a captured decode-time key.
    pub fn train_clean_at(&mut self, key: LookupKey) {
        self.stats.cleans_trained += 1;
        let idx = key.index as usize & (self.config.entries - 1);
        if let Some(e) = &mut self.table[idx] {
            if e.tag == key.tag {
                e.counter = e.counter.saturating_sub(self.config.train_down);
            }
        }
    }

    /// Stores the CDL criticality verdict for `pc` (paper §3.5.2: "we store
    /// this information with the timing error predictor"). A no-op if the
    /// PC has no live entry.
    pub fn set_criticality(&mut self, pc: u64, critical: bool) {
        let key = self.lookup_key(pc);
        self.set_criticality_at(key, critical);
    }

    /// [`set_criticality`](Tep::set_criticality) through a captured key.
    pub fn set_criticality_at(&mut self, key: LookupKey, critical: bool) {
        let idx = key.index as usize & (self.config.entries - 1);
        if let Some(e) = &mut self.table[idx] {
            if e.tag == key.tag {
                e.critical = critical;
            }
        }
    }

    /// Number of live (non-zero-counter) entries.
    pub fn live_entries(&self) -> usize {
        self.table
            .iter()
            .filter(|e| e.map(|e| e.counter > 0).unwrap_or(false))
            .count()
    }

    fn decay(&mut self) {
        for e in self.table.iter_mut().flatten() {
            e.counter >>= 1;
        }
    }

    /// Hardware cost of this configuration in bits (tag + counter + stage
    /// field + criticality per entry), for the overhead accounting.
    pub fn storage_bits(&self) -> usize {
        // 2-bit counter modelled by counter_max, 3-bit stage code + 1-bit
        // critical = the paper's 4-bit error-prediction field (§3.2.1).
        let counter_bits = 8 - (self.config.counter_max.leading_zeros() as usize % 8);
        self.config.entries * (self.config.tag_bits as usize + counter_bits + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tep() -> Tep {
        Tep::new(TepConfig::paper_default())
    }

    #[test]
    fn cold_predictor_predicts_clean() {
        let mut t = tep();
        for pc in (0x1000..0x2000).step_by(4) {
            assert_eq!(t.predict(pc, true), Prediction::clean());
        }
        assert_eq!(t.stats().predictions, 0);
        assert_eq!(t.live_entries(), 0);
    }

    #[test]
    fn learns_after_one_fault() {
        let mut t = tep();
        t.train_fault(0x1040, PipeStage::Memory);
        let p = t.predict(0x1040, true);
        assert!(p.faulty);
        assert_eq!(p.stage, Some(PipeStage::Memory));
        assert_eq!(t.live_entries(), 1);
    }

    #[test]
    fn sensor_gating_suppresses_prediction() {
        let mut t = tep();
        t.train_fault(0x1040, PipeStage::Issue);
        assert!(!t.predict(0x1040, false).faulty);
        assert!(t.predict(0x1040, true).faulty);
        // suppressed lookups still count as hits
        assert_eq!(t.stats().hits, 2);
        assert_eq!(t.stats().predictions, 1);
    }

    #[test]
    fn counter_saturates_and_weakens() {
        let mut t = tep();
        for _ in 0..10 {
            t.train_fault(0x2000, PipeStage::Issue);
        }
        // saturated at counter_max = 3; two clean trainings (down 1 each)
        // leave it live, a third clears it.
        t.train_clean(0x2000);
        t.train_clean(0x2000);
        assert!(t.predict(0x2000, true).faulty);
        t.train_clean(0x2000);
        assert!(!t.predict(0x2000, true).faulty);
    }

    #[test]
    fn criticality_round_trips() {
        let mut t = tep();
        t.train_fault(0x3000, PipeStage::Execute);
        assert!(!t.predict(0x3000, true).critical);
        t.set_criticality(0x3000, true);
        assert!(t.predict(0x3000, true).critical);
        t.set_criticality(0x3000, false);
        assert!(!t.predict(0x3000, true).critical);
    }

    #[test]
    fn history_changes_index() {
        let cfg = TepConfig::paper_default();
        let mut t = Tep::new(cfg);
        let pc = 0x4444;
        let idx0 = t.index_of(pc);
        t.record_branch(true);
        let idx1 = t.index_of(pc);
        assert_ne!(idx0, idx1, "branch history must perturb the index");
    }

    #[test]
    fn history_register_is_bounded() {
        let mut t = tep();
        for _ in 0..100 {
            t.record_branch(true);
        }
        assert!(t.history < (1 << t.config().history_bits));
    }

    #[test]
    fn zero_history_bits_disables_history_mixing() {
        // Regression: `history_bits: 0` used to clamp to one live history
        // bit (`.max(1)` in record_branch/index_of), so a "history-free"
        // predictor still perturbed its index after a branch and violated
        // the `history < 1 << history_bits` bound.
        let cfg = TepConfig {
            history_bits: 0,
            ..TepConfig::paper_default()
        };
        let mut t = Tep::new(cfg);
        let pcs: Vec<u64> = (0x1000..0x1100).step_by(4).collect();
        let before: Vec<usize> = pcs.iter().map(|&pc| t.index_of(pc)).collect();
        for i in 0..100 {
            t.record_branch(i % 2 == 0);
        }
        assert!(
            t.history < (1 << cfg.history_bits),
            "history must stay bounded: {} >= 1",
            t.history
        );
        let after: Vec<usize> = pcs.iter().map(|&pc| t.index_of(pc)).collect();
        assert_eq!(before, after, "0 history bits: branches must not move indices");
        // Trained entries stay findable across any branch pattern.
        t.train_fault(0x2040, PipeStage::Execute);
        t.record_branch(true);
        t.record_branch(false);
        assert!(t.predict(0x2040, true).faulty);
    }

    #[test]
    fn conflicting_pc_evicts_most_recent_entry_style() {
        let cfg = TepConfig {
            entries: 2,
            history_bits: 0,
            ..TepConfig::paper_default()
        };
        let mut t = Tep::new(cfg);
        // find two PCs with same index, different tags
        let pc_a = 0x1000u64;
        let idx_a = t.index_of(pc_a);
        let pc_b = (0x1000..0x100000)
            .step_by(4)
            .find(|&pc| t.index_of(pc) == idx_a && t.tag_of(pc) != t.tag_of(pc_a))
            .expect("conflicting pc exists");
        t.train_fault(pc_a, PipeStage::Issue);
        assert!(t.predict(pc_a, true).faulty);
        t.train_fault(pc_b, PipeStage::Issue);
        assert!(t.predict(pc_b, true).faulty, "newest entry wins the slot");
        assert!(!t.predict(pc_a, true).faulty, "old entry evicted");
        assert_eq!(t.stats().allocations, 2);
    }

    #[test]
    fn decay_halves_counters() {
        let cfg = TepConfig {
            decay_interval: 8,
            ..TepConfig::paper_default()
        };
        let mut t = Tep::new(cfg);
        t.train_fault(0x5000, PipeStage::Issue); // counter = 2
        // 7 lookups, the 8th triggers decay (2 -> 1), still live
        for _ in 0..8 {
            let _ = t.predict(0x5000, true);
        }
        assert!(t.predict(0x5000, true).faulty);
        // next decay: 1 -> 0, entry dies
        for _ in 0..8 {
            let _ = t.predict(0x5000, true);
        }
        assert!(!t.predict(0x5000, true).faulty);
    }

    #[test]
    fn storage_bits_matches_geometry() {
        let t = tep();
        // 4096 × (16-bit tag + 2-bit counter + 4-bit fault field)
        assert_eq!(t.storage_bits(), 4096 * (16 + 2 + 4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_entries_panics() {
        let _ = Tep::new(TepConfig {
            entries: 100,
            ..TepConfig::paper_default()
        });
    }

    #[test]
    fn stats_accumulate() {
        let mut t = tep();
        t.train_fault(0x6000, PipeStage::Issue);
        let _ = t.predict(0x6000, true);
        let _ = t.predict(0x6004, true);
        t.train_clean(0x6000);
        let s = t.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.predictions, 1);
        assert_eq!(s.faults_trained, 1);
        assert_eq!(s.cleans_trained, 1);
    }
}
