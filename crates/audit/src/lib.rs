//! Cycle-level invariant auditor for the pipeline simulator.
//!
//! The paper's schemes rest on *exact* one-cycle accounting: the §2.2
//! stall signals, delayed tag broadcast and issue-slot freezing must each
//! cost precisely one cycle, and an Error-Padding global stall must slip
//! every pending timestamp together. This crate checks those properties
//! continuously instead of trusting end-of-run statistics.
//!
//! The pipeline publishes an [`AuditSnapshot`] at the end of every cycle;
//! each [`Invariant`] compares the current snapshot (and the previous one,
//! for transition invariants) and reports [`Violation`]s. The auditor is
//! behind a builder flag and costs nothing when off.
//!
//! Invariant catalogue:
//! * instruction conservation — `fetched = committed + squashed +
//!   in-flight` every cycle;
//! * ROB age-ordering and contiguous-seq commit;
//! * physical-register ready-bit monotonicity within a broadcast epoch;
//! * LSQ load/store ordering and occupancy;
//! * mod-64 ABS timestamp bounds (§3.5);
//! * stall-signal exclusivity — a stage stalled by a TEP stall signal
//!   admits zero instructions that cycle and the next;
//! * EP global-stall closure — every pending deadline slips together,
//!   including the in-order stall deadlines.

use tv_timing::PipeStage;

/// How much state the pipeline snapshots for the auditor each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditLevel {
    /// No auditing; the pipeline takes no snapshots at all.
    #[default]
    Off,
    /// Scalar counters and deadlines only (cheap; suitable for CI sweeps).
    Basic,
    /// Everything in `Basic` plus full structure scans (ROB contents,
    /// physical-register file, event queue, front-end buffers).
    Full,
}

impl AuditLevel {
    /// Whether any auditing happens at this level.
    pub fn enabled(self) -> bool {
        self != AuditLevel::Off
    }
}

/// One invariant violation, timestamped with the cycle it was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle at which the violating snapshot was taken.
    pub cycle: u64,
    /// Name of the invariant that failed.
    pub invariant: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
}

/// End-of-cycle pipeline state published to the auditor.
///
/// Scalar fields are filled at every level; the `Vec` fields are filled
/// only at [`AuditLevel::Full`] (empty otherwise) except where noted.
#[derive(Debug, Clone, Default)]
pub struct AuditSnapshot {
    /// Cycle this snapshot was taken (end of cycle).
    pub cycle: u64,
    /// Whether this cycle was an EP stall or recovery bubble (every latch
    /// recirculated; no stage ran).
    pub global_stall: bool,

    /// Cumulative instructions fetched.
    pub fetched: u64,
    /// Cumulative instructions committed.
    pub committed: u64,
    /// Cumulative instructions squashed.
    pub squashed: u64,
    /// Instructions currently in flight (slab occupancy).
    pub in_flight: u64,

    /// Next sequence number expected at commit.
    pub next_commit_seq: u64,
    /// Sequence number at the ROB head, if any.
    pub rob_head_seq: Option<u64>,

    /// The 6-bit ABS dispatch timestamp counter.
    pub timestamp_counter: u8,

    /// In-order stall deadline for rename (stage runs when `now >= deadline`).
    pub rename_stall_until: u64,
    /// In-order stall deadline for dispatch.
    pub dispatch_stall_until: u64,
    /// In-order stall deadline for retire.
    pub retire_stall_until: u64,
    /// Fetch stall deadline (redirects/replays).
    pub fetch_stall_until: u64,

    /// Instructions the rename stage admitted this cycle.
    pub rename_admits: u32,
    /// Instructions the dispatch stage admitted this cycle.
    pub dispatch_admits: u32,
    /// Instructions the retire stage committed this cycle.
    pub retire_admits: u32,
    /// In-order stall signals charged this cycle: `(stage, seq, stage
    /// admissions at the instant the signal fired)`. Older width-group
    /// members may pass before the signal, but nothing may follow it.
    pub charges: Vec<(PipeStage, u64, u32)>,

    /// Store-queue sequence numbers, oldest first (all levels).
    pub store_seqs: Vec<u64>,
    /// Combined LSQ occupancy (loads + stores).
    pub lsq_occupancy: usize,
    /// LSQ capacity.
    pub lsq_capacity: usize,

    /// ROB contents as sequence numbers, oldest first (`Full` only).
    pub rob_seqs: Vec<u64>,
    /// ABS timestamps of every ROB-resident instruction (`Full` only).
    pub inflight_timestamps: Vec<u8>,
    /// Per-physical-register `(broadcast_epoch, ready_cycle)` (`Full` only).
    pub phys_regs: Vec<(u64, u64)>,
    /// Scheduled event times, ascending (`Full` only).
    pub event_times: Vec<u64>,
    /// Ready times of all front-end queue entries, fetch→rename order
    /// (`Full` only).
    pub queue_ready: Vec<u64>,
}

/// A checkable pipeline invariant.
///
/// `prev` is `None` on the first audited cycle. Implementations may keep
/// internal state (hence `&mut self`), but most derive everything from the
/// two snapshots.
pub trait Invariant {
    /// Stable name used in reports and CSV output.
    fn name(&self) -> &'static str;
    /// Checks the transition `prev → cur`, appending any violations.
    fn check(&mut self, prev: Option<&AuditSnapshot>, cur: &AuditSnapshot, out: &mut Vec<Violation>);
}

/// Cap on stored violation records; further violations are only counted.
const MAX_STORED_VIOLATIONS: usize = 256;

/// Summary of an audited run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Cycles audited.
    pub cycles: u64,
    /// Individual invariant checks performed.
    pub checks: u64,
    /// Total violations observed (may exceed `violations.len()`).
    pub violations_total: u64,
    /// First [`MAX_STORED_VIOLATIONS`] violation records.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the run was violation-free.
    pub fn clean(&self) -> bool {
        self.violations_total == 0
    }
}

/// Drives a set of invariants over the per-cycle snapshot stream.
pub struct Auditor {
    level: AuditLevel,
    invariants: Vec<Box<dyn Invariant>>,
    prev: Option<AuditSnapshot>,
    cycles: u64,
    checks: u64,
    violations_total: u64,
    violations: Vec<Violation>,
}

impl Auditor {
    /// Creates an auditor with the standard invariant set for `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is [`AuditLevel::Off`] — an off auditor should
    /// not exist at all.
    pub fn new(level: AuditLevel) -> Self {
        assert!(level.enabled(), "AuditLevel::Off has no auditor");
        let mut invariants: Vec<Box<dyn Invariant>> = vec![
            Box::new(InstructionConservation),
            Box::new(RobCommitOrder),
            Box::new(LsqOrder),
            Box::new(TimestampBounds),
            Box::new(StallExclusivity),
            Box::new(GlobalStallClosure),
        ];
        if level == AuditLevel::Full {
            invariants.push(Box::new(ReadyBitMonotonic));
        }
        Auditor {
            level,
            invariants,
            prev: None,
            cycles: 0,
            checks: 0,
            violations_total: 0,
            violations: Vec::new(),
        }
    }

    /// Creates an auditor with a custom invariant set (used by unit tests).
    pub fn with_invariants(level: AuditLevel, invariants: Vec<Box<dyn Invariant>>) -> Self {
        assert!(level.enabled(), "AuditLevel::Off has no auditor");
        Auditor {
            level,
            invariants,
            prev: None,
            cycles: 0,
            checks: 0,
            violations_total: 0,
            violations: Vec::new(),
        }
    }

    /// The configured audit level.
    pub fn level(&self) -> AuditLevel {
        self.level
    }

    /// Checks one end-of-cycle snapshot against every invariant.
    pub fn observe(&mut self, snapshot: AuditSnapshot) {
        self.cycles += 1;
        let mut found = Vec::new();
        for inv in &mut self.invariants {
            inv.check(self.prev.as_ref(), &snapshot, &mut found);
            self.checks += 1;
        }
        self.violations_total += found.len() as u64;
        let room = MAX_STORED_VIOLATIONS.saturating_sub(self.violations.len());
        self.violations.extend(found.into_iter().take(room));
        self.prev = Some(snapshot);
    }

    /// Snapshot of the report so far.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            cycles: self.cycles,
            checks: self.checks,
            violations_total: self.violations_total,
            violations: self.violations.clone(),
        }
    }
}

// --- invariants --------------------------------------------------------------

/// `fetched = committed + squashed + in-flight`, every cycle.
pub struct InstructionConservation;

impl Invariant for InstructionConservation {
    fn name(&self) -> &'static str {
        "instruction-conservation"
    }

    fn check(&mut self, _prev: Option<&AuditSnapshot>, cur: &AuditSnapshot, out: &mut Vec<Violation>) {
        let accounted = cur.committed + cur.squashed + cur.in_flight;
        if cur.fetched != accounted {
            out.push(Violation {
                cycle: cur.cycle,
                invariant: self.name(),
                detail: format!(
                    "fetched {} != committed {} + squashed {} + in-flight {}",
                    cur.fetched, cur.committed, cur.squashed, cur.in_flight
                ),
            });
        }
    }
}

/// ROB entries are age-ordered with contiguous sequence numbers, the head
/// is the next instruction to commit, and commits advance `next_commit_seq`
/// in lock-step.
pub struct RobCommitOrder;

impl Invariant for RobCommitOrder {
    fn name(&self) -> &'static str {
        "rob-commit-order"
    }

    fn check(&mut self, prev: Option<&AuditSnapshot>, cur: &AuditSnapshot, out: &mut Vec<Violation>) {
        let mut fail = |detail: String| {
            out.push(Violation {
                cycle: cur.cycle,
                invariant: "rob-commit-order",
                detail,
            })
        };
        if let Some(head) = cur.rob_head_seq {
            if head != cur.next_commit_seq {
                fail(format!(
                    "ROB head seq {head} != next commit seq {}",
                    cur.next_commit_seq
                ));
            }
        }
        if let Some(prev) = prev {
            // Tolerate the measurement-window stats reset (committed drops
            // to 0 while next_commit_seq keeps counting).
            if cur.committed >= prev.committed {
                let commits = cur.committed - prev.committed;
                let seq_advance = cur.next_commit_seq - prev.next_commit_seq;
                if commits != seq_advance {
                    fail(format!(
                        "{commits} commits advanced next_commit_seq by {seq_advance}"
                    ));
                }
            }
        }
        // Full level: the whole window must be contiguous and age-ordered.
        for w in cur.rob_seqs.windows(2) {
            if w[1] != w[0] + 1 {
                fail(format!("ROB seqs not contiguous/ordered: {} then {}", w[0], w[1]));
                break;
            }
        }
        if let (Some(&first), Some(head)) = (cur.rob_seqs.first(), cur.rob_head_seq) {
            if first != head {
                fail(format!("ROB scan head {first} != reported head {head}"));
            }
        }
    }
}

/// Store-queue entries stay in program order and the LSQ never exceeds its
/// capacity.
pub struct LsqOrder;

impl Invariant for LsqOrder {
    fn name(&self) -> &'static str {
        "lsq-order"
    }

    fn check(&mut self, _prev: Option<&AuditSnapshot>, cur: &AuditSnapshot, out: &mut Vec<Violation>) {
        for w in cur.store_seqs.windows(2) {
            if w[1] <= w[0] {
                out.push(Violation {
                    cycle: cur.cycle,
                    invariant: self.name(),
                    detail: format!("store queue out of order: seq {} then {}", w[0], w[1]),
                });
                break;
            }
        }
        if cur.lsq_occupancy > cur.lsq_capacity {
            out.push(Violation {
                cycle: cur.cycle,
                invariant: self.name(),
                detail: format!(
                    "LSQ occupancy {} exceeds capacity {}",
                    cur.lsq_occupancy, cur.lsq_capacity
                ),
            });
        }
    }
}

/// The ABS dispatch timestamp is a 6-bit hardware counter (§3.5): the
/// counter and every in-flight timestamp stay below 64.
pub struct TimestampBounds;

impl Invariant for TimestampBounds {
    fn name(&self) -> &'static str {
        "timestamp-mod64"
    }

    fn check(&mut self, _prev: Option<&AuditSnapshot>, cur: &AuditSnapshot, out: &mut Vec<Violation>) {
        if cur.timestamp_counter >= 64 {
            out.push(Violation {
                cycle: cur.cycle,
                invariant: self.name(),
                detail: format!("timestamp counter {} >= 64", cur.timestamp_counter),
            });
        }
        if let Some(&ts) = cur.inflight_timestamps.iter().find(|&&t| t >= 64) {
            out.push(Violation {
                cycle: cur.cycle,
                invariant: self.name(),
                detail: format!("in-flight timestamp {ts} >= 64"),
            });
        }
    }
}

/// A stage stalled by a TEP stall signal (§2.2) admits zero instructions
/// that cycle and the next: from the instant a fault is charged the stage
/// admits nothing more (older width-group members may already have
/// passed), and a still-pending deadline from an earlier cycle keeps the
/// stage closed.
pub struct StallExclusivity;

impl StallExclusivity {
    fn check_stage(
        cur: &AuditSnapshot,
        prev: Option<&AuditSnapshot>,
        stage: PipeStage,
        deadline: u64,
        prev_deadline: Option<u64>,
        admits: u32,
        out: &mut Vec<Violation>,
    ) {
        if let Some(&(_, seq, admits_at_charge)) =
            cur.charges.iter().find(|&&(s, _, _)| s == stage)
        {
            if admits != admits_at_charge {
                out.push(Violation {
                    cycle: cur.cycle,
                    invariant: "stall-exclusivity",
                    detail: format!(
                        "{stage:?} admitted {} instructions after its stall signal fired for seq {seq}",
                        admits - admits_at_charge.min(admits)
                    ),
                });
            }
            if deadline != cur.cycle + 2 {
                out.push(Violation {
                    cycle: cur.cycle,
                    invariant: "stall-exclusivity",
                    detail: format!(
                        "{stage:?} charged a fault but deadline is {deadline}, expected {}",
                        cur.cycle + 2
                    ),
                });
            }
        }
        if prev.is_some() {
            if let Some(pd) = prev_deadline {
                // The deadline covered this cycle: the stage was closed.
                if pd > cur.cycle && admits != 0 {
                    out.push(Violation {
                        cycle: cur.cycle,
                        invariant: "stall-exclusivity",
                        detail: format!(
                            "{stage:?} admitted {admits} instructions under an active stall (deadline {pd})"
                        ),
                    });
                }
            }
        }
    }
}

impl Invariant for StallExclusivity {
    fn name(&self) -> &'static str {
        "stall-exclusivity"
    }

    fn check(&mut self, prev: Option<&AuditSnapshot>, cur: &AuditSnapshot, out: &mut Vec<Violation>) {
        let stages = [
            (PipeStage::Rename, cur.rename_stall_until, prev.map(|p| p.rename_stall_until), cur.rename_admits),
            (PipeStage::Dispatch, cur.dispatch_stall_until, prev.map(|p| p.dispatch_stall_until), cur.dispatch_admits),
            (PipeStage::Retire, cur.retire_stall_until, prev.map(|p| p.retire_stall_until), cur.retire_admits),
        ];
        for (stage, deadline, prev_deadline, admits) in stages {
            Self::check_stage(cur, prev, stage, deadline, prev_deadline, admits, out);
        }
    }
}

/// During an EP global stall or recovery bubble every latch recirculates:
/// no stage admits anything, no fault is charged, and every pending
/// in-order stall deadline slips by exactly one cycle (an expired deadline
/// stays put). At `Full` level the event queue and front-end buffer ready
/// times must slip in lock-step too.
pub struct GlobalStallClosure;

impl Invariant for GlobalStallClosure {
    fn name(&self) -> &'static str {
        "global-stall-closure"
    }

    fn check(&mut self, prev: Option<&AuditSnapshot>, cur: &AuditSnapshot, out: &mut Vec<Violation>) {
        if !cur.global_stall {
            return;
        }
        let mut fail = |detail: String| {
            out.push(Violation {
                cycle: cur.cycle,
                invariant: "global-stall-closure",
                detail,
            })
        };
        if cur.rename_admits + cur.dispatch_admits + cur.retire_admits != 0 {
            fail("stage admitted instructions during a global stall".to_string());
        }
        if !cur.charges.is_empty() {
            fail("in-order fault charged during a global stall".to_string());
        }
        let Some(prev) = prev else { return };
        let deadlines = [
            ("rename", prev.rename_stall_until, cur.rename_stall_until),
            ("dispatch", prev.dispatch_stall_until, cur.dispatch_stall_until),
            ("retire", prev.retire_stall_until, cur.retire_stall_until),
        ];
        for (label, before, after) in deadlines {
            let expected = if before > cur.cycle { before + 1 } else { before };
            if after != expected {
                fail(format!(
                    "{label} stall deadline {before} became {after} across a global stall, expected {expected}"
                ));
            }
        }
        // Full-level closure: scheduled events and front-end ready times
        // slip with the machine (events due this cycle are consumed).
        if !prev.event_times.is_empty() || !cur.event_times.is_empty() {
            let expected: Vec<u64> = prev
                .event_times
                .iter()
                .filter(|&&t| t > cur.cycle)
                .map(|&t| t + 1)
                .collect();
            if cur.event_times != expected {
                fail(format!(
                    "event times {:?} after global stall, expected {:?}",
                    cur.event_times, expected
                ));
            }
        }
        if !prev.queue_ready.is_empty() || !cur.queue_ready.is_empty() {
            let expected: Vec<u64> = prev
                .queue_ready
                .iter()
                .map(|&t| if t > cur.cycle { t + 1 } else { t })
                .collect();
            if cur.queue_ready != expected {
                fail(format!(
                    "front-end ready times {:?} after global stall, expected {:?}",
                    cur.queue_ready, expected
                ));
            }
        }
    }
}

/// Within one broadcast epoch a physical register's readiness is monotone:
/// a ready bit never un-sets, and a pending ready cycle only slips later
/// (global-stall recirculation). Any other movement requires a new
/// broadcast (epoch bump).
pub struct ReadyBitMonotonic;

impl Invariant for ReadyBitMonotonic {
    fn name(&self) -> &'static str {
        "ready-bit-monotonic"
    }

    fn check(&mut self, prev: Option<&AuditSnapshot>, cur: &AuditSnapshot, out: &mut Vec<Violation>) {
        let Some(prev) = prev else { return };
        if prev.phys_regs.len() != cur.phys_regs.len() {
            return;
        }
        for (phys, (&(pe, prc), &(ce, crc))) in
            prev.phys_regs.iter().zip(cur.phys_regs.iter()).enumerate()
        {
            if pe != ce {
                continue; // new broadcast epoch: no relation required
            }
            let was_ready = prc <= prev.cycle;
            let violated = if was_ready { crc != prc } else { crc < prc };
            if violated {
                out.push(Violation {
                    cycle: cur.cycle,
                    invariant: self.name(),
                    detail: format!(
                        "phys {phys} ready cycle moved {prc} -> {crc} within epoch {pe}"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_snapshot(cycle: u64) -> AuditSnapshot {
        AuditSnapshot {
            cycle,
            fetched: 10,
            committed: 4,
            squashed: 2,
            in_flight: 4,
            next_commit_seq: 4,
            rob_head_seq: Some(4),
            lsq_capacity: 16,
            ..AuditSnapshot::default()
        }
    }

    fn run_one(inv: &mut dyn Invariant, prev: Option<&AuditSnapshot>, cur: &AuditSnapshot) -> Vec<Violation> {
        let mut out = Vec::new();
        inv.check(prev, cur, &mut out);
        out
    }

    #[test]
    fn conservation_catches_lost_instruction() {
        let mut inv = InstructionConservation;
        let good = base_snapshot(5);
        assert!(run_one(&mut inv, None, &good).is_empty());
        let mut bad = base_snapshot(5);
        bad.in_flight = 3; // one instruction vanished
        let v = run_one(&mut inv, None, &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "instruction-conservation");
    }

    #[test]
    fn rob_order_catches_head_and_commit_mismatch() {
        let mut inv = RobCommitOrder;
        let prev = base_snapshot(5);
        let mut cur = base_snapshot(6);
        cur.committed = 6;
        cur.next_commit_seq = 6;
        cur.rob_head_seq = Some(6);
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());

        // Head not the next commit seq.
        let mut bad = cur.clone();
        bad.rob_head_seq = Some(9);
        assert_eq!(run_one(&mut inv, Some(&prev), &bad).len(), 1);

        // Commit count and seq advance disagree (a lost or double commit).
        let mut bad = cur.clone();
        bad.next_commit_seq = 7;
        bad.rob_head_seq = Some(7);
        assert_eq!(run_one(&mut inv, Some(&prev), &bad).len(), 1);

        // Non-contiguous ROB scan.
        let mut bad = cur.clone();
        bad.rob_seqs = vec![6, 7, 9];
        assert_eq!(run_one(&mut inv, Some(&prev), &bad).len(), 1);
    }

    #[test]
    fn rob_order_tolerates_stats_reset() {
        let mut inv = RobCommitOrder;
        let mut prev = base_snapshot(5);
        prev.committed = 100;
        let mut cur = base_snapshot(6);
        cur.committed = 0; // reset_stats mid-run
        cur.next_commit_seq = prev.next_commit_seq + 3;
        cur.rob_head_seq = Some(cur.next_commit_seq);
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());
    }

    #[test]
    fn lsq_order_catches_out_of_order_stores_and_overflow() {
        let mut inv = LsqOrder;
        let mut cur = base_snapshot(5);
        cur.store_seqs = vec![3, 7, 9];
        cur.lsq_occupancy = 5;
        assert!(run_one(&mut inv, None, &cur).is_empty());
        cur.store_seqs = vec![3, 9, 7];
        assert_eq!(run_one(&mut inv, None, &cur).len(), 1);
        cur.store_seqs = vec![3, 7];
        cur.lsq_occupancy = 17;
        assert_eq!(run_one(&mut inv, None, &cur).len(), 1);
    }

    #[test]
    fn timestamp_bounds_catch_counter_and_inflight_overflow() {
        let mut inv = TimestampBounds;
        let mut cur = base_snapshot(5);
        cur.timestamp_counter = 63;
        cur.inflight_timestamps = vec![0, 63, 12];
        assert!(run_one(&mut inv, None, &cur).is_empty());
        cur.timestamp_counter = 64;
        assert_eq!(run_one(&mut inv, None, &cur).len(), 1);
        cur.timestamp_counter = 1;
        cur.inflight_timestamps = vec![0, 64];
        assert_eq!(run_one(&mut inv, None, &cur).len(), 1);
    }

    #[test]
    fn stall_exclusivity_catches_admission_in_charge_cycle() {
        // The pre-fix dispatch bug: the stall signal fires but the width
        // group dispatches in the same cycle.
        let mut inv = StallExclusivity;
        let prev = base_snapshot(9);
        let mut cur = base_snapshot(10);
        // One older width-group member passed before the signal fired;
        // two more followed it — the pre-fix failure mode.
        cur.charges = vec![(PipeStage::Dispatch, 42, 1)];
        cur.dispatch_stall_until = 12;
        cur.dispatch_admits = 3;
        let v = run_one(&mut inv, Some(&prev), &cur);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("Dispatch"));

        cur.dispatch_admits = 1;
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());
    }

    #[test]
    fn stall_exclusivity_catches_admission_under_active_deadline() {
        // The second stall cycle: the deadline from the charge cycle still
        // covers this cycle, so the stage must admit nothing.
        let mut inv = StallExclusivity;
        let mut prev = base_snapshot(10);
        prev.retire_stall_until = 12;
        let mut cur = base_snapshot(11);
        cur.retire_stall_until = 12;
        cur.retire_admits = 1;
        let v = run_one(&mut inv, Some(&prev), &cur);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("Retire"));

        cur.retire_admits = 0;
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());
    }

    #[test]
    fn stall_exclusivity_requires_two_cycle_deadline() {
        let mut inv = StallExclusivity;
        let mut cur = base_snapshot(10);
        cur.charges = vec![(PipeStage::Rename, 7, 0)];
        cur.rename_stall_until = 11; // should be 12
        let v = run_one(&mut inv, None, &cur);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("deadline"));
    }

    #[test]
    fn global_stall_closure_catches_unslipped_deadline() {
        // The pre-fix apply_global_stall bug: pending in-order deadlines
        // silently expire inside the stall.
        let mut inv = GlobalStallClosure;
        let mut prev = base_snapshot(10);
        prev.dispatch_stall_until = 12;
        let mut cur = base_snapshot(11);
        cur.global_stall = true;
        cur.dispatch_stall_until = 12; // must have slipped to 13
        let v = run_one(&mut inv, Some(&prev), &cur);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("dispatch"));

        cur.dispatch_stall_until = 13;
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());
    }

    #[test]
    fn global_stall_closure_checks_events_and_queues() {
        let mut inv = GlobalStallClosure;
        let mut prev = base_snapshot(10);
        prev.event_times = vec![11, 15];
        prev.queue_ready = vec![9, 12];
        let mut cur = base_snapshot(11);
        cur.global_stall = true;
        cur.event_times = vec![16]; // 11 consumed, 15 slipped
        cur.queue_ready = vec![9, 13]; // 9 expired stays, 12 slips
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());

        cur.event_times = vec![15]; // failed to slip
        assert_eq!(run_one(&mut inv, Some(&prev), &cur).len(), 1);
        cur.event_times = vec![16];
        cur.queue_ready = vec![9, 12]; // failed to slip
        assert_eq!(run_one(&mut inv, Some(&prev), &cur).len(), 1);
    }

    #[test]
    fn global_stall_closure_ignores_normal_cycles() {
        let mut inv = GlobalStallClosure;
        let mut prev = base_snapshot(10);
        prev.dispatch_stall_until = 12;
        let mut cur = base_snapshot(11);
        cur.dispatch_stall_until = 12; // fine: not a stall cycle
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());
    }

    #[test]
    fn ready_bit_monotonic_catches_unsetting_and_backsliding() {
        let mut inv = ReadyBitMonotonic;
        let mut prev = base_snapshot(10);
        prev.phys_regs = vec![(1, 5), (2, 20), (3, u64::MAX)];
        let mut cur = base_snapshot(11);
        cur.phys_regs = vec![(1, 5), (2, 21), (3, u64::MAX)];
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());

        // Ready bit un-set without a new epoch.
        cur.phys_regs = vec![(1, 30), (2, 21), (3, u64::MAX)];
        assert_eq!(run_one(&mut inv, Some(&prev), &cur).len(), 1);

        // Pending ready cycle moved earlier without a new epoch.
        cur.phys_regs = vec![(1, 5), (2, 15), (3, u64::MAX)];
        assert_eq!(run_one(&mut inv, Some(&prev), &cur).len(), 1);

        // Epoch bump legitimises any movement.
        cur.phys_regs = vec![(2, 30), (2, 21), (4, 3)];
        assert!(run_one(&mut inv, Some(&prev), &cur).is_empty());
    }

    #[test]
    fn auditor_accumulates_and_caps_reports() {
        let mut auditor = Auditor::new(AuditLevel::Basic);
        auditor.observe(base_snapshot(1));
        let mut bad = base_snapshot(2);
        bad.in_flight = 0;
        auditor.observe(bad);
        let report = auditor.report();
        assert_eq!(report.cycles, 2);
        assert!(report.checks >= 12, "6 invariants x 2 cycles");
        assert_eq!(report.violations_total, 1);
        assert!(!report.clean());
    }

    #[test]
    fn full_level_adds_phys_reg_invariant() {
        let basic = Auditor::new(AuditLevel::Basic);
        let full = Auditor::new(AuditLevel::Full);
        assert_eq!(basic.invariants.len() + 1, full.invariants.len());
    }
}
