//! Real-ISA workload frontend: an RV32I+M subset.
//!
//! The synthetic Markov-CFG workloads exercise the pipeline with
//! *statistically* realistic streams; this module feeds it *real*
//! control and data flow instead. [`asm`] assembles a small RISC-V dialect
//! into a [`RiscvProgram`], [`isa`] models the instructions (decode,
//! encode, disassembly and pure value semantics), and [`exec`] runs the
//! program on a deterministic in-order architectural machine that emits
//! the pipeline's [`TraceInst`](crate::TraceInst) stream — resolved branch
//! outcomes, effective addresses and real operand values — until the
//! program's `ecall` halt.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tv_workloads::riscv::{assemble, RiscvMachine};
//!
//! let program = assemble("li a0, 2\nadd a0, a0, a0\necall\n").unwrap();
//! let mut m = RiscvMachine::new(Arc::new(program));
//! m.run_to_halt(1_000);
//! assert_eq!(m.regs()[10], 4);
//! ```

pub mod asm;
pub mod exec;
pub mod isa;

pub use asm::{assemble, assemble_at, AsmError, DEFAULT_BASE};
pub use exec::{RiscvMachine, DEFAULT_STEP_LIMIT};
pub use isa::{Action, DecodeError, Format, Inst, MemWidth, Op, RiscvProgram};
