//! A two-pass RV32I+M assembler with labels and line-numbered errors.
//!
//! # Grammar
//!
//! ```text
//! line    := [label ':'] [inst] [comment]
//! comment := '#' ... | '//' ...
//! inst    := mnemonic operand (',' operand)*
//! operand := reg | imm | imm '(' reg ')' | label
//! reg     := 'x0'..'x31' | ABI name (zero ra sp gp tp t0-t6 s0-s11 a0-a7 fp)
//! imm     := ['-'] digits | ['-'] '0x' hexdigits
//! ```
//!
//! Pass 1 resolves label addresses (accounting for multi-word `li`
//! expansions, whose length depends only on the literal); pass 2 encodes.
//! Branch/jump operands accept a label or a numeric byte offset, so the
//! canonical disassembly of [`RiscvProgram`] re-assembles verbatim.
//!
//! Pseudo-instructions: `nop`, `mv rd, rs`, `li rd, imm` (expands to
//! `lui`+`addi` when the immediate exceeds 12 bits), `j label`, `ret`,
//! `beqz rs, label`, `bnez rs, label`.

use std::fmt;

use tv_prng::FastHashMap;

use super::isa::{Format, Inst, Op, RiscvProgram};

/// Default base PC for assembled programs (matches the synthetic
/// workloads' hot-code region start, so TEP geometry sees familiar PCs).
pub const DEFAULT_BASE: u32 = 0x1000;

/// An assembly failure, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, msg: msg.into() })
}

/// Assembles `src` at [`DEFAULT_BASE`].
///
/// # Errors
///
/// Returns the first [`AsmError`] with its source line number.
pub fn assemble(src: &str) -> Result<RiscvProgram, AsmError> {
    assemble_at(src, DEFAULT_BASE)
}

/// Assembles `src` with an explicit base PC.
///
/// # Errors
///
/// Returns the first [`AsmError`] with its source line number.
pub fn assemble_at(src: &str, base: u32) -> Result<RiscvProgram, AsmError> {
    let mut labels: FastHashMap<String, u32> = FastHashMap::default();
    let mut word = 0u32;
    // Pass 1: label addresses. `li` is the only statement whose word count
    // varies, and its length is a pure function of the literal.
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let (label, rest) = split_label(raw, line)?;
        if let Some(name) = label {
            if labels.insert(name.clone(), base + 4 * word).is_some() {
                return err(line, format!("duplicate label \"{name}\""));
            }
        }
        if let Some(stmt) = rest {
            word += statement_words(&stmt, line)?;
        }
    }

    // Pass 2: encode.
    let mut insts = Vec::with_capacity(word as usize);
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let (_, rest) = split_label(raw, line)?;
        if let Some(stmt) = rest {
            let pc = base + 4 * insts.len() as u32;
            encode_statement(&stmt, pc, &labels, line, &mut insts)?;
        }
    }
    Ok(RiscvProgram::new(base, insts))
}

/// Strips the comment and splits an optional leading `label:` from the
/// statement text. Returns `(label, statement)`.
fn split_label(raw: &str, line: usize) -> Result<(Option<String>, Option<String>), AsmError> {
    let mut text = raw;
    if let Some((code, _)) = text.split_once('#') {
        text = code;
    }
    if let Some((code, _)) = text.split_once("//") {
        text = code;
    }
    let text = text.trim();
    if text.is_empty() {
        return Ok((None, None));
    }
    if let Some((label, rest)) = text.split_once(':') {
        let label = label.trim();
        if label.is_empty() || !is_ident(label) {
            return err(line, format!("invalid label \"{label}\""));
        }
        let rest = rest.trim();
        let stmt = (!rest.is_empty()).then(|| rest.to_string());
        return Ok((Some(label.to_string()), stmt));
    }
    Ok((None, Some(text.to_string())))
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// How many instruction words a statement expands to.
fn statement_words(stmt: &str, line: usize) -> Result<u32, AsmError> {
    let (mnemonic, operands) = split_statement(stmt);
    if mnemonic == "li" {
        if operands.len() != 2 {
            return err(line, "li expects: li rd, imm");
        }
        let imm = parse_int(&operands[1], line)?;
        return Ok(li_words(imm));
    }
    Ok(1)
}

/// `li` expansion length for an immediate.
fn li_words(imm: i64) -> u32 {
    if (-2048..=2047).contains(&imm) {
        1
    } else if (imm as i32) & 0xfff == 0 {
        1 // bare lui
    } else {
        2 // lui + addi
    }
}

fn split_statement(stmt: &str) -> (String, Vec<String>) {
    let mut parts = stmt.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("").to_ascii_lowercase();
    let operands = parts
        .next()
        .map(|rest| {
            rest.split(',')
                .map(|o| o.trim().to_string())
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    (mnemonic, operands)
}

/// Parses one statement into `insts` (pseudo-ops may push two words).
fn encode_statement(
    stmt: &str,
    pc: u32,
    labels: &FastHashMap<String, u32>,
    line: usize,
    insts: &mut Vec<Inst>,
) -> Result<(), AsmError> {
    let (mnemonic, ops) = split_statement(stmt);
    let argc = |want: usize| -> Result<(), AsmError> {
        if ops.len() == want {
            Ok(())
        } else {
            err(
                line,
                format!("{mnemonic} expects {want} operand(s), got {}", ops.len()),
            )
        }
    };

    // Pseudo-instructions first.
    match mnemonic.as_str() {
        "nop" => {
            argc(0)?;
            insts.push(Inst::nop());
            return Ok(());
        }
        "mv" => {
            argc(2)?;
            let rd = reg(&ops[0], line)?;
            let rs1 = reg(&ops[1], line)?;
            insts.push(Inst { op: Op::Addi, rd, rs1, rs2: 0, imm: 0 });
            return Ok(());
        }
        "li" => {
            argc(2)?;
            let rd = reg(&ops[0], line)?;
            let imm = parse_int(&ops[1], line)?;
            if !(-(1i64 << 31)..(1i64 << 32)).contains(&imm) {
                return err(line, format!("li immediate {imm} exceeds 32 bits"));
            }
            let v = imm as i32;
            if li_words(imm) == 1 && (-2048..=2047).contains(&imm) {
                insts.push(Inst { op: Op::Addi, rd, rs1: 0, rs2: 0, imm: v });
            } else {
                let lo = (v << 20) >> 20; // sign-extended low 12 bits
                let hi = (v.wrapping_sub(lo) as u32 >> 12) & 0xfffff;
                insts.push(Inst { op: Op::Lui, rd, rs1: 0, rs2: 0, imm: hi as i32 });
                if lo != 0 {
                    insts.push(Inst { op: Op::Addi, rd, rs1: rd, rs2: 0, imm: lo });
                }
            }
            return Ok(());
        }
        "j" => {
            argc(1)?;
            let imm = target(&ops[0], pc, labels, line, 20)?;
            insts.push(Inst { op: Op::Jal, rd: 0, rs1: 0, rs2: 0, imm });
            return Ok(());
        }
        "ret" => {
            argc(0)?;
            insts.push(Inst { op: Op::Jalr, rd: 0, rs1: 1, rs2: 0, imm: 0 });
            return Ok(());
        }
        "beqz" | "bnez" => {
            argc(2)?;
            let rs1 = reg(&ops[0], line)?;
            let imm = target(&ops[1], pc, labels, line, 12)?;
            let op = if mnemonic == "beqz" { Op::Beq } else { Op::Bne };
            insts.push(Inst { op, rd: 0, rs1, rs2: 0, imm });
            return Ok(());
        }
        _ => {}
    }

    let Some(op) = op_by_mnemonic(&mnemonic) else {
        return err(line, format!("unknown mnemonic \"{mnemonic}\""));
    };
    let inst = match op.format() {
        Format::R => {
            argc(3)?;
            Inst {
                op,
                rd: reg(&ops[0], line)?,
                rs1: reg(&ops[1], line)?,
                rs2: reg(&ops[2], line)?,
                imm: 0,
            }
        }
        Format::I => {
            argc(3)?;
            Inst {
                op,
                rd: reg(&ops[0], line)?,
                rs1: reg(&ops[1], line)?,
                rs2: 0,
                imm: imm_range(&ops[2], line, -2048, 2047)?,
            }
        }
        Format::Shift => {
            argc(3)?;
            Inst {
                op,
                rd: reg(&ops[0], line)?,
                rs1: reg(&ops[1], line)?,
                rs2: 0,
                imm: imm_range(&ops[2], line, 0, 31)?,
            }
        }
        Format::Load => {
            argc(2)?;
            let (imm, rs1) = base_offset(&ops[1], line)?;
            Inst { op, rd: reg(&ops[0], line)?, rs1, rs2: 0, imm }
        }
        Format::Store => {
            argc(2)?;
            let (imm, rs1) = base_offset(&ops[1], line)?;
            Inst { op, rd: 0, rs1, rs2: reg(&ops[0], line)?, imm }
        }
        Format::Branch => {
            argc(3)?;
            Inst {
                op,
                rd: 0,
                rs1: reg(&ops[0], line)?,
                rs2: reg(&ops[1], line)?,
                imm: target(&ops[2], pc, labels, line, 12)?,
            }
        }
        Format::Jal => {
            let (rd, t) = match ops.len() {
                1 => (1, &ops[0]),
                2 => (reg(&ops[0], line)?, &ops[1]),
                n => return err(line, format!("jal expects 1 or 2 operands, got {n}")),
            };
            Inst { op, rd, rs1: 0, rs2: 0, imm: target(t, pc, labels, line, 20)? }
        }
        Format::Jalr => {
            let (rd, rs1, imm) = match ops.len() {
                1 => (1, reg(&ops[0], line)?, 0),
                3 => (
                    reg(&ops[0], line)?,
                    reg(&ops[1], line)?,
                    imm_range(&ops[2], line, -2048, 2047)?,
                ),
                n => return err(line, format!("jalr expects 1 or 3 operands, got {n}")),
            };
            Inst { op, rd, rs1, rs2: 0, imm }
        }
        Format::Upper => {
            argc(2)?;
            Inst {
                op,
                rd: reg(&ops[0], line)?,
                rs1: 0,
                rs2: 0,
                imm: imm_range(&ops[1], line, 0, 0xf_ffff)?,
            }
        }
        Format::Sys => {
            argc(0)?;
            Inst { op, rd: 0, rs1: 0, rs2: 0, imm: 0 }
        }
    };
    insts.push(inst);
    Ok(())
}

fn op_by_mnemonic(m: &str) -> Option<Op> {
    Op::ALL.iter().copied().find(|op| op.mnemonic() == m)
}

/// Parses a register operand: `x0`–`x31` or an ABI name.
fn reg(tok: &str, line: usize) -> Result<u8, AsmError> {
    const ABI: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
        "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
        "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
    ];
    let tok_l = tok.to_ascii_lowercase();
    if let Some(rest) = tok_l.strip_prefix('x') {
        if let Ok(n) = rest.parse::<u8>() {
            if n < 32 {
                return Ok(n);
            }
        }
    }
    if tok_l == "fp" {
        return Ok(8);
    }
    if let Some(i) = ABI.iter().position(|&a| a == tok_l) {
        return Ok(i as u8);
    }
    err(line, format!("invalid register \"{tok}\""))
}

/// Parses a signed integer literal (decimal or `0x` hex).
fn parse_int(tok: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let parsed = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match parsed {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("invalid integer \"{tok}\"")),
    }
}

fn imm_range(tok: &str, line: usize, lo: i64, hi: i64) -> Result<i32, AsmError> {
    let v = parse_int(tok, line)?;
    if !(lo..=hi).contains(&v) {
        return err(line, format!("immediate {v} out of range [{lo}, {hi}]"));
    }
    Ok(v as i32)
}

/// Parses `imm(reg)` (the memory operand).
fn base_offset(tok: &str, line: usize) -> Result<(i32, u8), AsmError> {
    let Some((off, rest)) = tok.split_once('(') else {
        return err(line, format!("expected offset(reg), got \"{tok}\""));
    };
    let Some(base) = rest.strip_suffix(')') else {
        return err(line, format!("expected offset(reg), got \"{tok}\""));
    };
    let off = off.trim();
    let imm = if off.is_empty() {
        0
    } else {
        imm_range(off, line, -2048, 2047)?
    };
    Ok((imm, reg(base.trim(), line)?))
}

/// Resolves a branch/jump target: a label, or a numeric byte offset
/// relative to the instruction's own PC. `bits` is the signed offset
/// width (12 for branches, 20 for `jal`).
fn target(
    tok: &str,
    pc: u32,
    labels: &FastHashMap<String, u32>,
    line: usize,
    bits: u32,
) -> Result<i32, AsmError> {
    let offset = if let Some(&addr) = labels.get(tok) {
        i64::from(addr) - i64::from(pc)
    } else if is_ident(tok) {
        return err(line, format!("undefined label \"{tok}\""));
    } else {
        parse_int(tok, line)?
    };
    let limit = 1i64 << bits;
    if offset % 2 != 0 {
        return err(line, format!("branch offset {offset} is odd"));
    }
    if !(-limit..limit).contains(&offset) {
        return err(
            line,
            format!("branch offset {offset} exceeds {bits}+1 bits"),
        );
    }
    Ok(offset as i32)
}
