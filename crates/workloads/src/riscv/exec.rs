//! Deterministic in-order architectural executor for RISC-V programs.
//!
//! [`RiscvMachine`] runs a [`RiscvProgram`] instruction by instruction and
//! emits the fully-resolved [`TraceInst`] stream the pipeline consumes:
//! branch outcomes, effective addresses and real operand values. It is
//! also the reference machine of `tests/riscv_diff.rs` — after a pipeline
//! run halts, its committed register file and memory image must be
//! bit-identical to this executor's end state.
//!
//! Memory is a sparse map of 32-bit words (byte/half accesses
//! read-modify-write their containing word) that starts all-zero, so
//! programs must initialize their own data with stores.

use std::sync::Arc;

use tv_prng::FastHashMap;

use super::isa::{
    load_from_word, store_into_word, word_addr, Action, Inst, RiscvProgram,
};
use crate::inst::{ArchReg, TraceInst};
use crate::source::WorkloadSource;

/// Upper bound on architectural steps before [`RiscvMachine::run_to_halt`]
/// declares the program runaway.
pub const DEFAULT_STEP_LIMIT: u64 = 50_000_000;

/// The in-order architectural executor.
#[derive(Debug, Clone)]
pub struct RiscvMachine {
    program: Arc<RiscvProgram>,
    regs: [u32; 32],
    /// Sparse word memory, keyed by word-aligned byte address.
    mem: FastHashMap<u32, u32>,
    pc: u32,
    seq: u64,
    halted: bool,
    /// The program counter walked outside the program without an `ecall`.
    fell_off: bool,
}

impl RiscvMachine {
    /// A reset machine at the program's base PC: registers and memory all
    /// zero.
    pub fn new(program: Arc<RiscvProgram>) -> Self {
        let pc = program.base();
        RiscvMachine {
            program,
            regs: [0; 32],
            mem: FastHashMap::default(),
            pc,
            seq: 0,
            halted: false,
            fell_off: false,
        }
    }

    /// The program under execution.
    pub fn program(&self) -> &Arc<RiscvProgram> {
        &self.program
    }

    /// Whether the program has halted (via `ecall`, or by walking off the
    /// program — see [`fell_off`](RiscvMachine::fell_off)).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the halt was a walk off the end of the program rather than
    /// an `ecall` (almost always an assembly bug).
    pub fn fell_off(&self) -> bool {
        self.fell_off
    }

    /// Dynamic instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.seq
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The architectural register file.
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// The touched memory image as sorted `(word address, word)` pairs.
    pub fn mem_image(&self) -> Vec<(u32, u32)> {
        let mut image: Vec<(u32, u32)> = self.mem.iter().map(|(&a, &w)| (a, w)).collect();
        image.sort_unstable();
        image
    }

    fn reg(&self, idx: u8) -> u32 {
        self.regs[idx as usize]
    }

    fn set_reg(&mut self, idx: u8, value: u32) {
        if idx != 0 {
            self.regs[idx as usize] = value;
        }
    }

    fn load_word(&self, addr: u32) -> u32 {
        self.mem.get(&word_addr(addr)).copied().unwrap_or(0)
    }

    /// Executes one instruction and returns its resolved [`TraceInst`];
    /// `None` once the machine has halted. The halting `ecall` itself is
    /// emitted (as a no-operand ALU op) before the stream ends.
    pub fn step(&mut self) -> Option<TraceInst> {
        if self.halted {
            return None;
        }
        let Some(&inst) = self.program.inst_at(u64::from(self.pc)) else {
            // Fell off the program: halt without emitting.
            self.halted = true;
            self.fell_off = true;
            return None;
        };
        let pc = self.pc;
        let a = self.reg(inst.rs1);
        let b = self.reg(inst.rs2);

        let mut next_pc = pc.wrapping_add(4);
        let mut mem_addr = None;
        let mut taken = None;
        let mut target = None;
        match inst.eval(pc, a, b) {
            Action::Alu(v) => self.set_reg(inst.rd, v),
            Action::Load { addr, width, signed } => {
                mem_addr = Some(u64::from(addr));
                let v = load_from_word(self.load_word(addr), addr, width, signed);
                self.set_reg(inst.rd, v);
            }
            Action::Store { addr, width, data } => {
                mem_addr = Some(u64::from(addr));
                let wa = word_addr(addr);
                let word = store_into_word(self.load_word(addr), addr, width, data);
                self.mem.insert(wa, word);
            }
            Action::Branch { taken: t, target: tgt } => {
                taken = Some(t);
                if t {
                    target = Some(u64::from(tgt));
                    next_pc = tgt;
                }
            }
            Action::Jump { target: tgt, link } => {
                self.set_reg(inst.rd, link);
                taken = Some(true);
                target = Some(u64::from(tgt));
                next_pc = tgt;
            }
            Action::Halt => {
                self.halted = true;
            }
        }

        let trace = trace_inst(&inst, self.seq, pc, [a, b], mem_addr, taken, target);
        self.seq += 1;
        self.pc = next_pc;
        Some(trace)
    }

    /// Runs to the halting `ecall` (or the step limit) and returns the
    /// number of instructions executed.
    pub fn run_to_halt(&mut self, max_steps: u64) -> u64 {
        let start = self.seq;
        while !self.halted && self.seq - start < max_steps {
            let _ = self.step();
        }
        self.seq - start
    }
}

/// Renders one executed instruction as the pipeline's [`TraceInst`].
///
/// Source slots are positional — slot 0 is `rs1`, slot 1 is `rs2` — and a
/// slot is `None` when the instruction does not read it *or* when it reads
/// `x0` (whose value is always zero, matching the empty slot's semantics).
/// The destination is `None` for `rd = x0`.
fn trace_inst(
    inst: &Inst,
    seq: u64,
    pc: u32,
    operand_values: [u32; 2],
    mem_addr: Option<u64>,
    taken: Option<bool>,
    target: Option<u64>,
) -> TraceInst {
    let src = |used: bool, r: u8| {
        (used && r != 0).then(|| ArchReg::new(r))
    };
    TraceInst {
        seq,
        pc: u64::from(pc),
        op: inst.op.op_class(),
        srcs: [
            src(inst.op.uses_rs1(), inst.rs1),
            src(inst.op.uses_rs2(), inst.rs2),
        ],
        dst: (inst.op.writes_rd() && inst.rd != 0).then(|| ArchReg::new(inst.rd)),
        mem_addr,
        taken,
        target,
        operand_values: [u64::from(operand_values[0]), u64::from(operand_values[1])],
    }
}

impl WorkloadSource for RiscvMachine {
    fn next_inst(&mut self) -> Option<TraceInst> {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::riscv::asm::assemble;

    fn run(src: &str) -> RiscvMachine {
        let program = Arc::new(assemble(src).expect("assembles"));
        let mut m = RiscvMachine::new(program);
        let steps = m.run_to_halt(1_000_000);
        assert!(m.halted(), "program must halt");
        assert!(!m.fell_off(), "program must halt via ecall");
        assert!(steps > 0);
        m
    }

    #[test]
    fn arithmetic_and_branches() {
        // sum 1..=10 into a0
        let m = run("
            li a0, 0
            li t0, 1
            li t1, 11
        loop:
            add a0, a0, t0
            addi t0, t0, 1
            bne t0, t1, loop
            ecall
        ");
        assert_eq!(m.regs()[10], 55);
    }

    #[test]
    fn memory_round_trip_and_subword() {
        let m = run("
            li t0, 0x2000
            li t1, 0x12345678
            sw t1, 0(t0)
            lw a0, 0(t0)
            lbu a1, 1(t0)
            lb a2, 3(t0)
            lhu a3, 2(t0)
            sb zero, 0(t0)
            lw a4, 0(t0)
            ecall
        ");
        assert_eq!(m.regs()[10], 0x1234_5678);
        assert_eq!(m.regs()[11], 0x56);
        assert_eq!(m.regs()[12], 0x12);
        assert_eq!(m.regs()[13], 0x1234);
        assert_eq!(m.regs()[14], 0x1234_5600);
        assert_eq!(m.mem_image(), vec![(0x2000, 0x1234_5600)]);
    }

    #[test]
    fn division_edge_cases_follow_riscv() {
        let m = run("
            li t0, -8
            li t1, 0
            div a0, t0, t1     # div by zero -> -1
            rem a1, t0, t1     # rem by zero -> dividend
            li t2, 0x80000000
            li t3, -1
            div a2, t2, t3     # overflow -> i32::MIN
            rem a3, t2, t3     # overflow -> 0
            ecall
        ");
        assert_eq!(m.regs()[10], u32::MAX);
        assert_eq!(m.regs()[11] as i32, -8);
        assert_eq!(m.regs()[12], 0x8000_0000);
        assert_eq!(m.regs()[13], 0);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        let m = run("
            li a0, 5
            jal ra, double
            mv a1, a0
            ecall
        double:
            add a0, a0, a0
            ret
        ");
        assert_eq!(m.regs()[10], 10);
        assert_eq!(m.regs()[11], 10);
    }

    #[test]
    fn trace_stream_is_consistent_control_flow() {
        let program = Arc::new(
            assemble("
                li t0, 0
                li t1, 3
            loop:
                addi t0, t0, 1
                bne t0, t1, loop
                ecall
            ")
            .unwrap(),
        );
        let mut m = RiscvMachine::new(program);
        let mut prev: Option<TraceInst> = None;
        let mut seq = 0;
        while let Some(t) = m.step() {
            assert_eq!(t.seq, seq);
            seq += 1;
            if let Some(p) = prev {
                let expect = match p.taken {
                    Some(true) => p.target.expect("taken carries target"),
                    _ => p.next_pc(),
                };
                assert_eq!(t.pc, expect, "control flow inconsistent");
            }
            prev = Some(t);
        }
        assert!(m.halted());
        // Re-running a fresh machine yields the identical stream.
        let mut a = RiscvMachine::new(m.program().clone());
        let mut b = RiscvMachine::new(m.program().clone());
        loop {
            let (x, y) = (a.step(), b.step());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn x0_never_appears_as_operand_slot_or_dst() {
        let program = Arc::new(
            assemble("
                addi x0, x0, 7   # write to x0 is discarded
                add t0, zero, x0
                beq zero, zero, done
                nop
            done:
                ecall
            ")
            .unwrap(),
        );
        let mut m = RiscvMachine::new(program);
        while let Some(t) = m.step() {
            for s in t.srcs.iter().flatten() {
                assert!(!s.is_zero(), "x0 sources must be empty slots");
            }
            if let Some(d) = t.dst {
                assert!(!d.is_zero(), "x0 destinations must be None");
            }
        }
        assert_eq!(m.regs()[0], 0);
        assert_eq!(m.regs()[5], 0);
    }

    #[test]
    fn falling_off_the_program_halts_with_flag() {
        let program = Arc::new(assemble("nop\nnop\n").unwrap());
        let mut m = RiscvMachine::new(program);
        m.run_to_halt(100);
        assert!(m.halted());
        assert!(m.fell_off());
        assert_eq!(m.steps(), 2);
    }
}
