//! RV32I(+M) instruction model: decode, encode, disassembly and semantics.
//!
//! The subset covers the integer core the frontend needs: register and
//! immediate ALU ops, the M-extension multiply/divide group, byte/half/word
//! loads and stores, conditional branches, `jal`/`jalr`, `lui`/`auipc` and
//! `ecall` (which this environment defines as *halt*). Every instruction
//! has a full 32-bit encoding and a pure [`Inst::eval`] semantics shared by
//! the standalone architectural executor and the pipeline's value plane, so
//! the two machines can only disagree when real corruption is injected.

use std::fmt;

use crate::inst::OpClass;

/// One RISC-V mnemonic of the supported RV32I+M subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the mnemonics are the documentation
pub enum Op {
    // R-type (opcode 0x33)
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    // M extension (opcode 0x33, funct7 0000001)
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    // I-type ALU (opcode 0x13)
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    // Loads (opcode 0x03)
    Lb, Lh, Lw, Lbu, Lhu,
    // Stores (opcode 0x23)
    Sb, Sh, Sw,
    // Conditional branches (opcode 0x63)
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Control transfer + upper immediates
    Jal, Jalr, Lui, Auipc,
    // System: halt the program
    Ecall,
}

/// Encoding/operand format of an [`Op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `op rd, rs1, rs2`
    R,
    /// `op rd, rs1, imm12`
    I,
    /// `op rd, rs1, shamt`
    Shift,
    /// `op rd, imm12(rs1)`
    Load,
    /// `op rs2, imm12(rs1)`
    Store,
    /// `op rs1, rs2, offset`
    Branch,
    /// `jal rd, offset`
    Jal,
    /// `jalr rd, rs1, imm12`
    Jalr,
    /// `op rd, imm20`
    Upper,
    /// `ecall`
    Sys,
}

impl Op {
    /// Every supported mnemonic (used by the round-trip property test).
    pub const ALL: [Op; 46] = [
        Op::Add, Op::Sub, Op::Sll, Op::Slt, Op::Sltu, Op::Xor, Op::Srl,
        Op::Sra, Op::Or, Op::And, Op::Mul, Op::Mulh, Op::Mulhsu, Op::Mulhu,
        Op::Div, Op::Divu, Op::Rem, Op::Remu, Op::Addi, Op::Slti, Op::Sltiu,
        Op::Xori, Op::Ori, Op::Andi, Op::Slli, Op::Srli, Op::Srai, Op::Lb,
        Op::Lh, Op::Lw, Op::Lbu, Op::Lhu, Op::Sb, Op::Sh, Op::Sw, Op::Beq,
        Op::Bne, Op::Blt, Op::Bge, Op::Bltu, Op::Bgeu, Op::Jal, Op::Jalr,
        Op::Lui, Op::Auipc, Op::Ecall,
    ];

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Add => "add", Op::Sub => "sub", Op::Sll => "sll",
            Op::Slt => "slt", Op::Sltu => "sltu", Op::Xor => "xor",
            Op::Srl => "srl", Op::Sra => "sra", Op::Or => "or",
            Op::And => "and", Op::Mul => "mul", Op::Mulh => "mulh",
            Op::Mulhsu => "mulhsu", Op::Mulhu => "mulhu", Op::Div => "div",
            Op::Divu => "divu", Op::Rem => "rem", Op::Remu => "remu",
            Op::Addi => "addi", Op::Slti => "slti", Op::Sltiu => "sltiu",
            Op::Xori => "xori", Op::Ori => "ori", Op::Andi => "andi",
            Op::Slli => "slli", Op::Srli => "srli", Op::Srai => "srai",
            Op::Lb => "lb", Op::Lh => "lh", Op::Lw => "lw", Op::Lbu => "lbu",
            Op::Lhu => "lhu", Op::Sb => "sb", Op::Sh => "sh", Op::Sw => "sw",
            Op::Beq => "beq", Op::Bne => "bne", Op::Blt => "blt",
            Op::Bge => "bge", Op::Bltu => "bltu", Op::Bgeu => "bgeu",
            Op::Jal => "jal", Op::Jalr => "jalr", Op::Lui => "lui",
            Op::Auipc => "auipc", Op::Ecall => "ecall",
        }
    }

    /// Operand/encoding format.
    pub fn format(self) -> Format {
        use Op::*;
        match self {
            Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And | Mul
            | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu => Format::R,
            Addi | Slti | Sltiu | Xori | Ori | Andi => Format::I,
            Slli | Srli | Srai => Format::Shift,
            Lb | Lh | Lw | Lbu | Lhu => Format::Load,
            Sb | Sh | Sw => Format::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => Format::Branch,
            Jal => Format::Jal,
            Jalr => Format::Jalr,
            Lui | Auipc => Format::Upper,
            Ecall => Format::Sys,
        }
    }

    /// The pipeline operation class this mnemonic maps onto.
    pub fn op_class(self) -> OpClass {
        use Op::*;
        match self {
            Mul | Mulh | Mulhsu | Mulhu => OpClass::IntMul,
            Div | Divu | Rem | Remu => OpClass::IntDiv,
            Lb | Lh | Lw | Lbu | Lhu => OpClass::Load,
            Sb | Sh | Sw => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => OpClass::CondBranch,
            Jal | Jalr => OpClass::Jump,
            // `ecall` retires on a simple-ALU lane like a no-op.
            _ => OpClass::IntAlu,
        }
    }

    /// Whether the instruction reads `rs1`.
    pub fn uses_rs1(self) -> bool {
        !matches!(self.format(), Format::Jal | Format::Upper | Format::Sys)
    }

    /// Whether the instruction reads `rs2`.
    pub fn uses_rs2(self) -> bool {
        matches!(self.format(), Format::R | Format::Store | Format::Branch)
    }

    /// Whether the instruction writes `rd`.
    pub fn writes_rd(self) -> bool {
        !matches!(
            self.format(),
            Format::Store | Format::Branch | Format::Sys
        )
    }
}

/// Memory access width of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemWidth {
    /// 8-bit access (`lb`/`lbu`/`sb`).
    Byte,
    /// 16-bit access (`lh`/`lhu`/`sh`).
    Half,
    /// 32-bit access (`lw`/`sw`).
    Word,
}

/// The word-aligned address containing `addr` (memory is kept as a sparse
/// map of 32-bit words; sub-word accesses read-modify-write their word).
pub fn word_addr(addr: u32) -> u32 {
    addr & !3
}

/// Byte shift of a sub-word access within its 32-bit word. Half accesses
/// ignore bit 0 and byte accesses use both low bits, so a misaligned
/// address wraps deterministically instead of trapping — both machines
/// share this function, so they stay bit-identical either way.
fn sub_shift(addr: u32, width: MemWidth) -> u32 {
    match width {
        MemWidth::Byte => (addr & 3) * 8,
        MemWidth::Half => (addr & 2) * 8,
        MemWidth::Word => 0,
    }
}

/// Extracts a load result from the 32-bit `word` holding it.
pub fn load_from_word(word: u32, addr: u32, width: MemWidth, signed: bool) -> u32 {
    let shift = sub_shift(addr, width);
    match (width, signed) {
        (MemWidth::Byte, false) => (word >> shift) & 0xff,
        (MemWidth::Byte, true) => ((word >> shift) & 0xff) as u8 as i8 as i32 as u32,
        (MemWidth::Half, false) => (word >> shift) & 0xffff,
        (MemWidth::Half, true) => ((word >> shift) & 0xffff) as u16 as i16 as i32 as u32,
        (MemWidth::Word, _) => word,
    }
}

/// Merges a store's `data` into the 32-bit `word` it lands in.
pub fn store_into_word(word: u32, addr: u32, width: MemWidth, data: u32) -> u32 {
    let shift = sub_shift(addr, width);
    match width {
        MemWidth::Byte => (word & !(0xff << shift)) | ((data & 0xff) << shift),
        MemWidth::Half => (word & !(0xffff << shift)) | ((data & 0xffff) << shift),
        MemWidth::Word => data,
    }
}

/// The architectural effect of one instruction, given its operand values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `rd` receives this value.
    Alu(u32),
    /// Load from `addr`; `rd` receives the extracted value.
    Load {
        /// Effective byte address.
        addr: u32,
        /// Access width.
        width: MemWidth,
        /// Sign-extend the loaded value.
        signed: bool,
    },
    /// Store `data` at `addr`.
    Store {
        /// Effective byte address.
        addr: u32,
        /// Access width.
        width: MemWidth,
        /// Value to store (low `width` bits significant).
        data: u32,
    },
    /// Conditional branch outcome.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
        /// Target PC when taken.
        target: u32,
    },
    /// Unconditional jump; `rd` receives `link`.
    Jump {
        /// Resolved target PC.
        target: u32,
        /// Return address (`pc + 4`).
        link: u32,
    },
    /// `ecall`: halt the program.
    Halt,
}

/// One decoded instruction.
///
/// `imm` is the sign-extended immediate; for `lui`/`auipc` it holds the raw
/// 20-bit field (`0..0x100000`), for shifts the 5-bit shift amount.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Mnemonic.
    pub op: Op,
    /// Destination register index (0 when unused).
    pub rd: u8,
    /// First source register index (0 when unused).
    pub rs1: u8,
    /// Second source register index (0 when unused).
    pub rs2: u8,
    /// Immediate (see type docs for per-format conventions).
    pub imm: i32,
}

/// Why a 32-bit word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x} in the RV32I+M subset", self.word)
    }
}

impl std::error::Error for DecodeError {}

impl Inst {
    /// A canonical `nop` (`addi x0, x0, 0`).
    pub fn nop() -> Inst {
        Inst { op: Op::Addi, rd: 0, rs1: 0, rs2: 0, imm: 0 }
    }

    /// Encodes to the standard 32-bit RISC-V word.
    pub fn encode(&self) -> u32 {
        let rd = u32::from(self.rd) << 7;
        let rs1 = u32::from(self.rs1) << 15;
        let rs2 = u32::from(self.rs2) << 20;
        let f3 = |f: u32| f << 12;
        let f7 = |f: u32| f << 25;
        use Op::*;
        let (opcode, funct3, funct7) = match self.op {
            Add => (0x33, 0, 0), Sub => (0x33, 0, 0x20), Sll => (0x33, 1, 0),
            Slt => (0x33, 2, 0), Sltu => (0x33, 3, 0), Xor => (0x33, 4, 0),
            Srl => (0x33, 5, 0), Sra => (0x33, 5, 0x20), Or => (0x33, 6, 0),
            And => (0x33, 7, 0),
            Mul => (0x33, 0, 1), Mulh => (0x33, 1, 1), Mulhsu => (0x33, 2, 1),
            Mulhu => (0x33, 3, 1), Div => (0x33, 4, 1), Divu => (0x33, 5, 1),
            Rem => (0x33, 6, 1), Remu => (0x33, 7, 1),
            Addi => (0x13, 0, 0), Slti => (0x13, 2, 0), Sltiu => (0x13, 3, 0),
            Xori => (0x13, 4, 0), Ori => (0x13, 6, 0), Andi => (0x13, 7, 0),
            Slli => (0x13, 1, 0), Srli => (0x13, 5, 0), Srai => (0x13, 5, 0x20),
            Lb => (0x03, 0, 0), Lh => (0x03, 1, 0), Lw => (0x03, 2, 0),
            Lbu => (0x03, 4, 0), Lhu => (0x03, 5, 0),
            Sb => (0x23, 0, 0), Sh => (0x23, 1, 0), Sw => (0x23, 2, 0),
            Beq => (0x63, 0, 0), Bne => (0x63, 1, 0), Blt => (0x63, 4, 0),
            Bge => (0x63, 5, 0), Bltu => (0x63, 6, 0), Bgeu => (0x63, 7, 0),
            Jal => (0x6f, 0, 0), Jalr => (0x67, 0, 0),
            Lui => (0x37, 0, 0), Auipc => (0x17, 0, 0),
            Ecall => (0x73, 0, 0),
        };
        let imm = self.imm as u32;
        match self.op.format() {
            Format::R => opcode | rd | f3(funct3) | rs1 | rs2 | f7(funct7),
            Format::I | Format::Load | Format::Jalr => {
                opcode | rd | f3(funct3) | rs1 | (imm & 0xfff) << 20
            }
            Format::Shift => {
                opcode | rd | f3(funct3) | rs1 | (imm & 0x1f) << 20 | f7(funct7)
            }
            Format::Store => {
                opcode
                    | f3(funct3)
                    | rs1
                    | rs2
                    | (imm & 0x1f) << 7
                    | ((imm >> 5) & 0x7f) << 25
            }
            Format::Branch => {
                opcode
                    | f3(funct3)
                    | rs1
                    | rs2
                    | ((imm >> 11) & 1) << 7
                    | ((imm >> 1) & 0xf) << 8
                    | ((imm >> 5) & 0x3f) << 25
                    | ((imm >> 12) & 1) << 31
            }
            Format::Jal => {
                opcode
                    | rd
                    | ((imm >> 12) & 0xff) << 12
                    | ((imm >> 11) & 1) << 20
                    | ((imm >> 1) & 0x3ff) << 21
                    | ((imm >> 20) & 1) << 31
            }
            Format::Upper => opcode | rd | (imm & 0xfffff) << 12,
            Format::Sys => opcode,
        }
    }

    /// Decodes a standard 32-bit RISC-V word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the word is not a valid instruction of
    /// the supported subset.
    pub fn decode(word: u32) -> Result<Inst, DecodeError> {
        let err = Err(DecodeError { word });
        let opcode = word & 0x7f;
        let rd = ((word >> 7) & 0x1f) as u8;
        let funct3 = (word >> 12) & 7;
        let rs1 = ((word >> 15) & 0x1f) as u8;
        let rs2 = ((word >> 20) & 0x1f) as u8;
        let funct7 = word >> 25;
        let imm_i = (word as i32) >> 20;
        use Op::*;
        let (op, rd, rs1, rs2, imm) = match opcode {
            0x33 => {
                let op = match (funct7, funct3) {
                    (0, 0) => Add, (0x20, 0) => Sub, (0, 1) => Sll,
                    (0, 2) => Slt, (0, 3) => Sltu, (0, 4) => Xor,
                    (0, 5) => Srl, (0x20, 5) => Sra, (0, 6) => Or,
                    (0, 7) => And,
                    (1, 0) => Mul, (1, 1) => Mulh, (1, 2) => Mulhsu,
                    (1, 3) => Mulhu, (1, 4) => Div, (1, 5) => Divu,
                    (1, 6) => Rem, (1, 7) => Remu,
                    _ => return err,
                };
                (op, rd, rs1, rs2, 0)
            }
            0x13 => match funct3 {
                1 | 5 => {
                    let op = match (funct3, funct7) {
                        (1, 0) => Slli,
                        (5, 0) => Srli,
                        (5, 0x20) => Srai,
                        _ => return err,
                    };
                    (op, rd, rs1, 0, (rs2 as i32))
                }
                _ => {
                    let op = match funct3 {
                        0 => Addi, 2 => Slti, 3 => Sltiu,
                        4 => Xori, 6 => Ori, 7 => Andi,
                        _ => return err,
                    };
                    (op, rd, rs1, 0, imm_i)
                }
            },
            0x03 => {
                let op = match funct3 {
                    0 => Lb, 1 => Lh, 2 => Lw, 4 => Lbu, 5 => Lhu,
                    _ => return err,
                };
                (op, rd, rs1, 0, imm_i)
            }
            0x23 => {
                let op = match funct3 {
                    0 => Sb, 1 => Sh, 2 => Sw,
                    _ => return err,
                };
                let imm = ((word as i32) >> 25 << 5) | ((word >> 7) & 0x1f) as i32;
                (op, 0, rs1, rs2, imm)
            }
            0x63 => {
                let op = match funct3 {
                    0 => Beq, 1 => Bne, 4 => Blt, 5 => Bge, 6 => Bltu,
                    7 => Bgeu,
                    _ => return err,
                };
                let imm = ((word as i32) >> 31 << 12)
                    | (((word >> 7) & 1) << 11) as i32
                    | (((word >> 25) & 0x3f) << 5) as i32
                    | (((word >> 8) & 0xf) << 1) as i32;
                (op, 0, rs1, rs2, imm)
            }
            0x6f => {
                let imm = ((word as i32) >> 31 << 20)
                    | (((word >> 12) & 0xff) << 12) as i32
                    | (((word >> 20) & 1) << 11) as i32
                    | (((word >> 21) & 0x3ff) << 1) as i32;
                (Jal, rd, 0, 0, imm)
            }
            0x67 if funct3 == 0 => (Jalr, rd, rs1, 0, imm_i),
            0x37 => (Lui, rd, 0, 0, ((word >> 12) & 0xfffff) as i32),
            0x17 => (Auipc, rd, 0, 0, ((word >> 12) & 0xfffff) as i32),
            0x73 if word == 0x73 => (Ecall, 0, 0, 0, 0),
            _ => return err,
        };
        Ok(Inst { op, rd, rs1, rs2, imm })
    }

    /// Evaluates the instruction's architectural effect. Pure: given the
    /// same `(pc, rs1, rs2)` inputs it always yields the same [`Action`].
    pub fn eval(&self, pc: u32, rs1: u32, rs2: u32) -> Action {
        let imm = self.imm as u32;
        let simm = self.imm;
        use Op::*;
        let alu = |v: u32| Action::Alu(v);
        match self.op {
            Add => alu(rs1.wrapping_add(rs2)),
            Sub => alu(rs1.wrapping_sub(rs2)),
            Sll => alu(rs1 << (rs2 & 31)),
            Slt => alu(((rs1 as i32) < (rs2 as i32)) as u32),
            Sltu => alu((rs1 < rs2) as u32),
            Xor => alu(rs1 ^ rs2),
            Srl => alu(rs1 >> (rs2 & 31)),
            Sra => alu(((rs1 as i32) >> (rs2 & 31)) as u32),
            Or => alu(rs1 | rs2),
            And => alu(rs1 & rs2),
            Mul => alu(rs1.wrapping_mul(rs2)),
            Mulh => alu(((i64::from(rs1 as i32) * i64::from(rs2 as i32)) >> 32) as u32),
            Mulhsu => alu(((i64::from(rs1 as i32)).wrapping_mul(rs2 as i64) >> 32) as u32),
            Mulhu => alu(((u64::from(rs1) * u64::from(rs2)) >> 32) as u32),
            Div => alu(match (rs1 as i32, rs2 as i32) {
                (_, 0) => u32::MAX,
                (i32::MIN, -1) => i32::MIN as u32,
                (a, b) => (a / b) as u32,
            }),
            Divu => alu(if rs2 == 0 { u32::MAX } else { rs1 / rs2 }),
            Rem => alu(match (rs1 as i32, rs2 as i32) {
                (a, 0) => a as u32,
                (i32::MIN, -1) => 0,
                (a, b) => (a % b) as u32,
            }),
            Remu => alu(if rs2 == 0 { rs1 } else { rs1 % rs2 }),
            Addi => alu(rs1.wrapping_add(imm)),
            Slti => alu(((rs1 as i32) < simm) as u32),
            Sltiu => alu((rs1 < imm) as u32),
            Xori => alu(rs1 ^ imm),
            Ori => alu(rs1 | imm),
            Andi => alu(rs1 & imm),
            Slli => alu(rs1 << (imm & 31)),
            Srli => alu(rs1 >> (imm & 31)),
            Srai => alu(((rs1 as i32) >> (imm & 31)) as u32),
            Lui => alu(imm << 12),
            Auipc => alu(pc.wrapping_add(imm << 12)),
            Lb => self.load(rs1, MemWidth::Byte, true),
            Lh => self.load(rs1, MemWidth::Half, true),
            Lw => self.load(rs1, MemWidth::Word, false),
            Lbu => self.load(rs1, MemWidth::Byte, false),
            Lhu => self.load(rs1, MemWidth::Half, false),
            Sb => self.store(rs1, rs2, MemWidth::Byte),
            Sh => self.store(rs1, rs2, MemWidth::Half),
            Sw => self.store(rs1, rs2, MemWidth::Word),
            Beq => self.branch(pc, rs1 == rs2),
            Bne => self.branch(pc, rs1 != rs2),
            Blt => self.branch(pc, (rs1 as i32) < (rs2 as i32)),
            Bge => self.branch(pc, (rs1 as i32) >= (rs2 as i32)),
            Bltu => self.branch(pc, rs1 < rs2),
            Bgeu => self.branch(pc, rs1 >= rs2),
            Jal => Action::Jump {
                target: pc.wrapping_add(imm),
                link: pc.wrapping_add(4),
            },
            Jalr => Action::Jump {
                target: rs1.wrapping_add(imm) & !1,
                link: pc.wrapping_add(4),
            },
            Ecall => Action::Halt,
        }
    }

    fn branch(&self, pc: u32, taken: bool) -> Action {
        Action::Branch {
            taken,
            target: pc.wrapping_add(self.imm as u32),
        }
    }

    fn load(&self, rs1: u32, width: MemWidth, signed: bool) -> Action {
        Action::Load {
            addr: rs1.wrapping_add(self.imm as u32),
            width,
            signed,
        }
    }

    fn store(&self, rs1: u32, rs2: u32, width: MemWidth) -> Action {
        Action::Store {
            addr: rs1.wrapping_add(self.imm as u32),
            width,
            data: rs2,
        }
    }
}

impl fmt::Display for Inst {
    /// Canonical disassembly, re-parsable by the assembler (branch and
    /// jump offsets print as numeric byte offsets).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        let (rd, rs1, rs2, imm) = (self.rd, self.rs1, self.rs2, self.imm);
        match self.op.format() {
            Format::R => write!(f, "{m} x{rd}, x{rs1}, x{rs2}"),
            Format::I | Format::Shift => write!(f, "{m} x{rd}, x{rs1}, {imm}"),
            Format::Load => write!(f, "{m} x{rd}, {imm}(x{rs1})"),
            Format::Store => write!(f, "{m} x{rs2}, {imm}(x{rs1})"),
            Format::Branch => write!(f, "{m} x{rs1}, x{rs2}, {imm}"),
            Format::Jal => write!(f, "{m} x{rd}, {imm}"),
            Format::Jalr => write!(f, "{m} x{rd}, x{rs1}, {imm}"),
            Format::Upper => write!(f, "{m} x{rd}, {imm}"),
            Format::Sys => f.write_str(m),
        }
    }
}

/// A decoded program: a base PC plus a dense instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiscvProgram {
    base: u32,
    insts: Vec<Inst>,
}

impl RiscvProgram {
    /// Wraps decoded instructions at `base` (must be 4-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics on a misaligned base.
    pub fn new(base: u32, insts: Vec<Inst>) -> Self {
        assert_eq!(base % 4, 0, "program base must be word-aligned");
        RiscvProgram { base, insts }
    }

    /// First instruction's PC.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The decoded instructions in PC order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// One past the last instruction's PC.
    pub fn end_pc(&self) -> u32 {
        self.base + 4 * self.insts.len() as u32
    }

    /// The static instruction at `pc`, if the PC lies inside the program.
    pub fn inst_at(&self, pc: u64) -> Option<&Inst> {
        let pc = u32::try_from(pc).ok()?;
        if pc < self.base || pc % 4 != 0 {
            return None;
        }
        self.insts.get(((pc - self.base) / 4) as usize)
    }

    /// The 32-bit encoding of every instruction.
    pub fn encode_words(&self) -> Vec<u32> {
        self.insts.iter().map(Inst::encode).collect()
    }

    /// Decodes a word image back into a program.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`].
    pub fn decode_words(base: u32, words: &[u32]) -> Result<Self, DecodeError> {
        let insts = words
            .iter()
            .map(|&w| Inst::decode(w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(base, insts))
    }

    /// Canonical disassembly listing, one instruction per line.
    pub fn disassemble(&self) -> String {
        self.insts
            .iter()
            .map(|i| format!("{i}\n"))
            .collect()
    }
}
