//! Synthetic SPEC-like workload generation for the timing-violation study.
//!
//! The paper evaluates on SPEC CPU2006 phases (extracted with SimPoint) run
//! under WindRiver Simics, plus SPEC2000-int inputs for the gate-level
//! path-sensitization study. Neither benchmark suite nor simulator is
//! redistributable, so this crate rebuilds the *workload* layer from scratch:
//!
//! * [`profile`] — per-benchmark parameter sets (instruction mix, dependence
//!   distance, working-set shape, branch bias) tuned so that the observable
//!   characteristics the paper reports (fault-free IPC, data-stall proneness,
//!   inherent ILP) are preserved;
//! * [`program`] — a deterministic *static program*: weighted basic blocks of
//!   typed instructions with architectural register dependences, connected by
//!   a Markov control-flow graph. Recurring static PCs are the property the
//!   Timing Error Predictor exploits, so the program is finite and looped;
//! * [`generate`] — walks the static program to emit a dynamic instruction
//!   trace ([`TraceInst`]);
//! * [`simpoint`] — basic-block-vector clustering in the style of Sherwood et
//!   al. (PACT 2001) to pick representative execution phases;
//! * [`values`] — per-PC operand value streams with benchmark-specific value
//!   locality, feeding the gate-level sensitization study (paper §S1).
//!
//! # Example
//!
//! ```
//! use tv_workloads::{Benchmark, TraceGenerator};
//!
//! let mut gen = TraceGenerator::for_benchmark(Benchmark::Astar, 42);
//! let inst = gen.next_inst();
//! assert!(inst.pc >= 0x1000);
//! ```

pub mod generate;
pub mod inst;
pub mod profile;
pub mod program;
pub mod riscv;
pub mod simpoint;
pub mod source;
pub mod values;

pub use generate::TraceGenerator;
pub use inst::{ArchReg, OpClass, TraceInst};
pub use profile::{Benchmark, Profile, Spec2000};
pub use program::{BasicBlock, StaticInst, StaticProgram};
pub use riscv::{RiscvMachine, RiscvProgram};
pub use simpoint::{Phase, SimPoint};
pub use source::{WorkloadSource, WorkloadSpec};
pub use values::{ValueSample, ValueStream};
