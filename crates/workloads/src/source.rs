//! The workload abstraction the pipeline is driven by.
//!
//! [`WorkloadSource`] is the stream interface: the synthetic
//! [`TraceGenerator`] yields instructions forever, while the RISC-V
//! [`RiscvMachine`](crate::riscv::RiscvMachine) runs a real program to its
//! `ecall` halt and then ends the stream. [`WorkloadSpec`] is the
//! *recipe* — a cloneable description a pipeline builder can instantiate
//! any number of times (the simulated stream and the fault-calibration
//! probe walk two independent instances).

use std::sync::Arc;

use crate::generate::TraceGenerator;
use crate::inst::TraceInst;
use crate::profile::Profile;
use crate::riscv::{RiscvMachine, RiscvProgram};

/// A stream of resolved dynamic instructions feeding the pipeline.
///
/// Implementations must be deterministic: two sources built from the same
/// spec and seed yield identical streams.
pub trait WorkloadSource: Send {
    /// The next dynamic instruction, or `None` once the workload has
    /// halted (synthetic workloads never halt).
    fn next_inst(&mut self) -> Option<TraceInst>;

    /// Skips up to `n` instructions (stops early at a halt).
    fn fast_forward(&mut self, n: u64) {
        for _ in 0..n {
            if self.next_inst().is_none() {
                break;
            }
        }
    }
}

impl WorkloadSource for TraceGenerator {
    fn next_inst(&mut self) -> Option<TraceInst> {
        Some(TraceGenerator::next_inst(self))
    }

    fn fast_forward(&mut self, n: u64) {
        TraceGenerator::fast_forward(self, n);
    }
}

/// Default Table-1-style fault rates for RISC-V programs, which carry no
/// benchmark profile: faults per 10k instructions at 0.97 V / 1.04 V,
/// in the range spanned by the paper's SPEC profiles.
pub const RISCV_FAULT_RATES: (f64, f64) = (6.0, 2.0);

/// A cloneable workload recipe; [`source`](WorkloadSpec::source) mints
/// independent instruction streams from it.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// A synthetic Markov-CFG workload described by a benchmark profile.
    Synthetic(Profile),
    /// A real RISC-V program, run to its `ecall` halt.
    Riscv(Arc<RiscvProgram>),
}

impl WorkloadSpec {
    /// Instantiates a fresh instruction stream. `seed` drives synthetic
    /// generation; RISC-V execution is seed-independent (the program *is*
    /// the stream).
    pub fn source(&self, seed: u64) -> Box<dyn WorkloadSource> {
        match self {
            WorkloadSpec::Synthetic(profile) => {
                Box::new(TraceGenerator::new(profile.clone(), seed))
            }
            WorkloadSpec::Riscv(program) => Box::new(RiscvMachine::new(program.clone())),
        }
    }

    /// The `(0.97 V, 1.04 V)` fault rates calibrating the fault model.
    pub fn fault_rates(&self) -> (f64, f64) {
        match self {
            WorkloadSpec::Synthetic(p) => (p.fault_rate_097, p.fault_rate_104),
            WorkloadSpec::Riscv(_) => RISCV_FAULT_RATES,
        }
    }

    /// Whether the stream ends on its own (a real program halting).
    pub fn is_finite(&self) -> bool {
        matches!(self, WorkloadSpec::Riscv(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use crate::riscv::assemble;

    #[test]
    fn synthetic_source_is_endless_and_seeded() {
        let spec = WorkloadSpec::Synthetic(Benchmark::Gcc.profile());
        assert!(!spec.is_finite());
        let mut a = spec.source(5);
        let mut b = spec.source(5);
        for _ in 0..500 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
        let mut c = spec.source(6);
        let diverges = (0..500).any(|_| a.next_inst() != c.next_inst());
        assert!(diverges, "seed must matter");
    }

    #[test]
    fn riscv_source_halts_and_is_seed_independent() {
        let program = Arc::new(assemble("li a0, 1\nadd a0, a0, a0\necall\n").unwrap());
        let spec = WorkloadSpec::Riscv(program);
        assert!(spec.is_finite());
        let mut a = spec.source(1);
        let mut b = spec.source(99);
        let mut n = 0;
        loop {
            let (x, y) = (a.next_inst(), b.next_inst());
            assert_eq!(x, y, "riscv streams are seed-independent");
            if x.is_none() {
                break;
            }
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(a.next_inst(), None, "stream stays ended");
    }

    #[test]
    fn fast_forward_stops_at_halt() {
        let program = Arc::new(assemble("nop\necall\n").unwrap());
        let mut src = WorkloadSpec::Riscv(program).source(0);
        src.fast_forward(1_000);
        assert_eq!(src.next_inst(), None);
    }
}
