//! Per-benchmark workload profiles.
//!
//! Each profile is a parameter set for the synthetic program generator that
//! reproduces the *observable* characteristics the paper reports for the
//! corresponding SPEC benchmark: fault-free IPC (Table 1, column 2),
//! susceptibility to data stalls (libquantum, mcf), inherent instruction-level
//! parallelism (sjeng, povray), and the fault rates measured at the two
//! studied supply voltages (Table 1, FR columns).
//!
//! Fault-rate targets are carried here because the paper observes that fault
//! rates are *program dependent* ("depending on specific paths sensitized
//! during program execution, different benchmark programs exhibit different
//! fault rates while operating at the same supply voltage", §5.1); the
//! `tv-timing` crate constructs a per-static-instruction slack distribution
//! that reproduces these rates at the calibration voltages and interpolates
//! in between.

use crate::inst::OpClass;

/// The twelve SPEC CPU2006 benchmarks evaluated in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    Astar,
    Bzip2,
    Gcc,
    Gobmk,
    Libquantum,
    Mcf,
    Perlbench,
    Povray,
    Sjeng,
    Sphinx3,
    Tonto,
    Xalancbmk,
}

impl Benchmark {
    /// All benchmarks in the order used by the paper's tables and figures.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Astar,
        Benchmark::Bzip2,
        Benchmark::Gcc,
        Benchmark::Gobmk,
        Benchmark::Libquantum,
        Benchmark::Mcf,
        Benchmark::Perlbench,
        Benchmark::Povray,
        Benchmark::Sjeng,
        Benchmark::Sphinx3,
        Benchmark::Tonto,
        Benchmark::Xalancbmk,
    ];

    /// Lower-case benchmark name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Astar => "astar",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Gcc => "gcc",
            Benchmark::Gobmk => "gobmk",
            Benchmark::Libquantum => "libquantum",
            Benchmark::Mcf => "mcf",
            Benchmark::Perlbench => "perlbench",
            Benchmark::Povray => "povray",
            Benchmark::Sjeng => "sjeng",
            Benchmark::Sphinx3 => "sphinx3",
            Benchmark::Tonto => "tonto",
            Benchmark::Xalancbmk => "xalancbmk",
        }
    }

    /// The workload profile for this benchmark.
    pub fn profile(self) -> Profile {
        profile_2006(self)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The six SPEC2000 integer benchmarks used for the gate-level
/// path-sensitization study (paper §S1, Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Spec2000 {
    Bzip,
    Gap,
    Gzip,
    Mcf,
    Parser,
    Vortex,
}

impl Spec2000 {
    /// All SPEC2000 benchmarks in the order of Figure 7's legend.
    pub const ALL: [Spec2000; 6] = [
        Spec2000::Bzip,
        Spec2000::Gap,
        Spec2000::Gzip,
        Spec2000::Mcf,
        Spec2000::Parser,
        Spec2000::Vortex,
    ];

    /// Lower-case benchmark name as printed in Figure 7.
    pub fn name(self) -> &'static str {
        match self {
            Spec2000::Bzip => "bzip",
            Spec2000::Gap => "gap",
            Spec2000::Gzip => "gzip",
            Spec2000::Mcf => "mcf",
            Spec2000::Parser => "parser",
            Spec2000::Vortex => "vortex",
        }
    }

    /// Value-locality parameters for this benchmark's operand streams.
    ///
    /// `(value_bits, repeat_prob, stride_prob)`: operands span roughly
    /// `2^value_bits` distinct magnitudes; with `repeat_prob` a dynamic
    /// instance reuses its previous operand pair exactly; with `stride_prob`
    /// it offsets the previous pair by a small stride (the array-walk pattern
    /// the paper calls out for AGEN). The remainder draws fresh values.
    ///
    /// vortex "operates on a smaller range of input values" (§S1.3) and shows
    /// the highest commonality, so it gets the narrowest range and highest
    /// repeat probability.
    pub fn value_profile(self) -> ValueProfile {
        match self {
            Spec2000::Bzip => ValueProfile::new(18, 0.970, 0.027),
            Spec2000::Gap => ValueProfile::new(20, 0.962, 0.034),
            Spec2000::Gzip => ValueProfile::new(16, 0.975, 0.022),
            Spec2000::Mcf => ValueProfile::new(24, 0.945, 0.050),
            Spec2000::Parser => ValueProfile::new(21, 0.962, 0.034),
            Spec2000::Vortex => ValueProfile::new(12, 0.992, 0.007),
        }
    }
}

impl std::fmt::Display for Spec2000 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Value-locality parameters for a SPEC2000 operand stream (see
/// [`Spec2000::value_profile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueProfile {
    /// Operand values span roughly `2^value_bits` magnitudes.
    pub value_bits: u32,
    /// Probability a dynamic instance repeats its previous operand pair.
    pub repeat_prob: f64,
    /// Probability a dynamic instance strides from the previous pair.
    pub stride_prob: f64,
}

impl ValueProfile {
    /// Creates a value profile.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are outside `[0, 1]` or sum above 1, or if
    /// `value_bits` is 0 or exceeds 63.
    pub fn new(value_bits: u32, repeat_prob: f64, stride_prob: f64) -> Self {
        assert!(value_bits > 0 && value_bits < 64, "value_bits out of range");
        assert!((0.0..=1.0).contains(&repeat_prob), "repeat_prob out of range");
        assert!((0.0..=1.0).contains(&stride_prob), "stride_prob out of range");
        assert!(repeat_prob + stride_prob <= 1.0, "probabilities exceed 1");
        ValueProfile {
            value_bits,
            repeat_prob,
            stride_prob,
        }
    }
}

/// Instruction-mix weights (relative, not required to sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    pub int_alu: f64,
    pub int_mul: f64,
    pub int_div: f64,
    pub load: f64,
    pub store: f64,
    pub cond_branch: f64,
    pub jump: f64,
    pub fp_alu: f64,
    pub fp_mul: f64,
}

impl Mix {
    /// Weight for one operation class.
    pub fn weight(&self, op: OpClass) -> f64 {
        match op {
            OpClass::IntAlu => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::IntDiv => self.int_div,
            OpClass::Load => self.load,
            OpClass::Store => self.store,
            OpClass::CondBranch => self.cond_branch,
            OpClass::Jump => self.jump,
            OpClass::FpAlu => self.fp_alu,
            OpClass::FpMul => self.fp_mul,
        }
    }

    /// Total weight across all classes.
    pub fn total(&self) -> f64 {
        OpClass::ALL.iter().map(|&op| self.weight(op)).sum()
    }

    /// A typical integer-code mix.
    pub fn integer() -> Self {
        Mix {
            int_alu: 0.48,
            int_mul: 0.01,
            int_div: 0.002,
            load: 0.24,
            store: 0.10,
            cond_branch: 0.13,
            jump: 0.03,
            fp_alu: 0.0,
            fp_mul: 0.0,
        }
    }

    /// A floating-point-heavy mix.
    pub fn floating_point() -> Self {
        Mix {
            int_alu: 0.30,
            int_mul: 0.01,
            int_div: 0.002,
            load: 0.26,
            store: 0.09,
            cond_branch: 0.08,
            jump: 0.02,
            fp_alu: 0.14,
            fp_mul: 0.10,
        }
    }
}

/// Memory working-set shape.
///
/// Loads and stores address a two-level region model: a *hot* region that is
/// expected to fit in L1/L2 and a *cold* region that does not. The fraction
/// of accesses sent to the cold region, together with the cold region size,
/// determines the L2/memory miss traffic and therefore the data-stall
/// behaviour of the benchmark (mcf and libquantum in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryShape {
    /// Hot working-set size in bytes.
    pub hot_bytes: u64,
    /// Cold working-set size in bytes.
    pub cold_bytes: u64,
    /// Fraction of dynamic memory accesses that target the cold region
    /// (decided per access by the generator).
    pub cold_frac: f64,
    /// Fraction of static memory instructions that follow a sequential
    /// stride within their region (the rest are pseudo-random).
    pub stride_frac: f64,
    /// Fraction of static loads whose *address* depends on the previous
    /// load's result (pointer chasing, serializing — dominant in mcf).
    pub pointer_chase_frac: f64,
    /// Fraction of dynamic pointer-chase accesses that walk into the cold
    /// region (the rest chase within the cached hot structure).
    pub chase_miss_frac: f64,
}

/// Complete generator parameter set for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Benchmark name (for reports).
    pub name: &'static str,
    /// Instruction mix.
    pub mix: Mix,
    /// Mean register-dependence distance in instructions; larger values mean
    /// more independent instructions in flight (more ILP).
    pub mean_dep_distance: f64,
    /// Memory working-set shape.
    pub memory: MemoryShape,
    /// Fraction of source operands that reuse the current basic block's
    /// *hub* value (the block's first result). High values create
    /// high-fan-out producers — the data-flow pattern that makes the
    /// criticality-driven policy shine on libquantum (paper §5.2).
    pub fanout_reuse: f64,
    /// Mean taken-bias of conditional branches in `[0.5, 1.0)`; closer to 1.0
    /// means highly biased (predictable) branches.
    pub branch_bias: f64,
    /// Fraction of conditional branches that follow a short repeating
    /// pattern (predictable by global history) rather than a Bernoulli draw.
    pub branch_patterned: f64,
    /// Number of basic blocks in the static program.
    pub num_blocks: usize,
    /// Mean basic-block length in instructions.
    pub mean_block_len: f64,
    /// Target fault rate (% of committed instructions incurring a timing
    /// violation in the OoO engine) at V_DD = 0.97 V — Table 1.
    pub fault_rate_097: f64,
    /// Target fault rate (%) at V_DD = 1.04 V — Table 1.
    pub fault_rate_104: f64,
    /// Fault-free IPC the paper reports (Table 1, column 2); used only as a
    /// calibration target and in reports, never by the generator itself.
    pub paper_ipc: f64,
}

impl Profile {
    /// Profile for a SPEC CPU2006 benchmark.
    pub fn spec2006(bench: Benchmark) -> Self {
        profile_2006(bench)
    }
}

fn profile_2006(bench: Benchmark) -> Profile {
    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;
    match bench {
        // Path-finding: modest ILP, irregular loads, mid-size working set.
        Benchmark::Astar => Profile {
            name: "astar",
            mix: Mix {
                load: 0.28,
                store: 0.08,
                cond_branch: 0.15,
                ..Mix::integer()
            },
            mean_dep_distance: 2.6,
            memory: MemoryShape {
                hot_bytes: 14 * KB,
                cold_bytes: 24 * MB,
                cold_frac: 0.016,
                stride_frac: 0.35,
                pointer_chase_frac: 0.004,
                chase_miss_frac: 0.30,
            },
            fanout_reuse: 0.10,
            branch_bias: 0.82,
            branch_patterned: 0.60,
            num_blocks: 180,
            mean_block_len: 7.0,
            fault_rate_097: 6.74,
            fault_rate_104: 2.01,
            paper_ipc: 0.69,
        },
        // Compression: good ILP, strided hot loops.
        Benchmark::Bzip2 => Profile {
            name: "bzip2",
            mix: Mix::integer(),
            mean_dep_distance: 5.0,
            memory: MemoryShape {
                hot_bytes: 16 * KB,
                cold_bytes: 64 * KB,
                cold_frac: 0.010,
                stride_frac: 0.70,
                pointer_chase_frac: 0.002,
                chase_miss_frac: 0.10,
            },
            fanout_reuse: 0.12,
            branch_bias: 0.87,
            branch_patterned: 0.90,
            num_blocks: 140,
            mean_block_len: 8.0,
            fault_rate_097: 8.92,
            fault_rate_104: 2.24,
            paper_ipc: 1.48,
        },
        // Compiler: large instruction footprint, moderate everything.
        Benchmark::Gcc => Profile {
            name: "gcc",
            mix: Mix {
                cond_branch: 0.16,
                jump: 0.05,
                ..Mix::integer()
            },
            mean_dep_distance: 4.8,
            memory: MemoryShape {
                hot_bytes: 14 * KB,
                cold_bytes: 16 * MB,
                cold_frac: 0.002,
                stride_frac: 0.60,
                pointer_chase_frac: 0.004,
                chase_miss_frac: 0.10,
            },
            fanout_reuse: 0.10,
            branch_bias: 0.86,
            branch_patterned: 0.90,
            num_blocks: 420,
            mean_block_len: 6.0,
            fault_rate_097: 8.43,
            fault_rate_104: 1.50,
            paper_ipc: 1.34,
        },
        // Go engine: high ILP, branchy but predictable enough.
        Benchmark::Gobmk => Profile {
            name: "gobmk",
            mix: Mix {
                cond_branch: 0.17,
                ..Mix::integer()
            },
            mean_dep_distance: 12.0,
            memory: MemoryShape {
                hot_bytes: 12 * KB,
                cold_bytes: 128 * KB,
                cold_frac: 0.003,
                stride_frac: 0.55,
                pointer_chase_frac: 0.003,
                chase_miss_frac: 0.08,
            },
            fanout_reuse: 0.10,
            branch_bias: 0.85,
            branch_patterned: 0.95,
            num_blocks: 360,
            mean_block_len: 6.5,
            fault_rate_097: 8.64,
            fault_rate_104: 2.16,
            paper_ipc: 1.68,
        },
        // Quantum simulation: streaming over a huge array — dominated by
        // data stalls (paper: "greater data stalls, substantially lower
        // performance impact from occasional timing violations").
        Benchmark::Libquantum => Profile {
            name: "libquantum",
            mix: Mix {
                load: 0.30,
                store: 0.12,
                cond_branch: 0.12,
                ..Mix::integer()
            },
            mean_dep_distance: 3.2,
            memory: MemoryShape {
                hot_bytes: 12 * KB,
                cold_bytes: 64 * MB,
                cold_frac: 0.200,
                stride_frac: 0.90,
                pointer_chase_frac: 0.0,
                chase_miss_frac: 0.0,
            },
            fanout_reuse: 0.45,
            branch_bias: 0.93,
            branch_patterned: 0.80,
            num_blocks: 60,
            mean_block_len: 7.5,
            fault_rate_097: 10.54,
            fault_rate_104: 2.10,
            paper_ipc: 0.51,
        },
        // Sparse network simplex: pointer chasing over a working set far
        // beyond L2 — the classic memory-bound benchmark.
        Benchmark::Mcf => Profile {
            name: "mcf",
            mix: Mix {
                load: 0.34,
                store: 0.09,
                cond_branch: 0.14,
                ..Mix::integer()
            },
            mean_dep_distance: 2.2,
            memory: MemoryShape {
                hot_bytes: 12 * KB,
                cold_bytes: 256 * MB,
                cold_frac: 0.060,
                stride_frac: 0.10,
                pointer_chase_frac: 0.040,
                chase_miss_frac: 0.25,
            },
            fanout_reuse: 0.15,
            branch_bias: 0.80,
            branch_patterned: 0.45,
            num_blocks: 120,
            mean_block_len: 6.0,
            fault_rate_097: 6.45,
            fault_rate_104: 1.73,
            paper_ipc: 0.34,
        },
        // Interpreter: indirect-branch heavy, decent ILP.
        Benchmark::Perlbench => Profile {
            name: "perlbench",
            mix: Mix {
                cond_branch: 0.15,
                jump: 0.06,
                ..Mix::integer()
            },
            mean_dep_distance: 4.6,
            memory: MemoryShape {
                hot_bytes: 14 * KB,
                cold_bytes: 16 * MB,
                cold_frac: 0.004,
                stride_frac: 0.50,
                pointer_chase_frac: 0.005,
                chase_miss_frac: 0.08,
            },
            fanout_reuse: 0.10,
            branch_bias: 0.87,
            branch_patterned: 0.72,
            num_blocks: 380,
            mean_block_len: 6.0,
            fault_rate_097: 7.21,
            fault_rate_104: 1.80,
            paper_ipc: 1.31,
        },
        // Ray tracer: FP heavy, high ILP, tiny working set.
        Benchmark::Povray => Profile {
            name: "povray",
            mix: Mix::floating_point(),
            mean_dep_distance: 16.0,
            memory: MemoryShape {
                hot_bytes: 12 * KB,
                cold_bytes: 128 * KB,
                cold_frac: 0.002,
                stride_frac: 0.70,
                pointer_chase_frac: 0.001,
                chase_miss_frac: 0.05,
            },
            fanout_reuse: 0.12,
            branch_bias: 0.92,
            branch_patterned: 0.95,
            num_blocks: 260,
            mean_block_len: 10.0,
            fault_rate_097: 6.31,
            fault_rate_104: 1.57,
            paper_ipc: 1.94,
        },
        // Chess engine: the paper's example of high inherent ILP and
        // therefore greatest susceptibility to timing-violation slowdown.
        Benchmark::Sjeng => Profile {
            name: "sjeng",
            mix: Mix {
                cond_branch: 0.15,
                ..Mix::integer()
            },
            mean_dep_distance: 18.0,
            memory: MemoryShape {
                hot_bytes: 12 * KB,
                cold_bytes: 128 * KB,
                cold_frac: 0.002,
                stride_frac: 0.60,
                pointer_chase_frac: 0.002,
                chase_miss_frac: 0.05,
            },
            fanout_reuse: 0.10,
            branch_bias: 0.88,
            branch_patterned: 0.95,
            num_blocks: 300,
            mean_block_len: 7.5,
            fault_rate_097: 9.19,
            fault_rate_104: 2.29,
            paper_ipc: 1.93,
        },
        // Speech recognition: FP + strided, moderate misses.
        Benchmark::Sphinx3 => Profile {
            name: "sphinx3",
            mix: Mix {
                fp_alu: 0.10,
                fp_mul: 0.07,
                load: 0.28,
                int_alu: 0.35,
                ..Mix::integer()
            },
            mean_dep_distance: 4.6,
            memory: MemoryShape {
                hot_bytes: 16 * KB,
                cold_bytes: 12 * MB,
                cold_frac: 0.007,
                stride_frac: 0.80,
                pointer_chase_frac: 0.002,
                chase_miss_frac: 0.05,
            },
            fanout_reuse: 0.20,
            branch_bias: 0.89,
            branch_patterned: 0.85,
            num_blocks: 200,
            mean_block_len: 7.0,
            fault_rate_097: 6.95,
            fault_rate_104: 1.73,
            paper_ipc: 1.30,
        },
        // Quantum chemistry: FP heavy, good ILP.
        Benchmark::Tonto => Profile {
            name: "tonto",
            mix: Mix::floating_point(),
            mean_dep_distance: 6.0,
            memory: MemoryShape {
                hot_bytes: 14 * KB,
                cold_bytes: 1 * MB,
                cold_frac: 0.004,
                stride_frac: 0.75,
                pointer_chase_frac: 0.002,
                chase_miss_frac: 0.05,
            },
            fanout_reuse: 0.15,
            branch_bias: 0.90,
            branch_patterned: 0.88,
            num_blocks: 240,
            mean_block_len: 8.5,
            fault_rate_097: 5.59,
            fault_rate_104: 1.39,
            paper_ipc: 1.41,
        },
        // XML processing: branchy pointer code with poor locality.
        Benchmark::Xalancbmk => Profile {
            name: "xalancbmk",
            mix: Mix {
                int_alu: 0.40,
                load: 0.30,
                cond_branch: 0.16,
                jump: 0.05,
                ..Mix::integer()
            },
            mean_dep_distance: 2.4,
            memory: MemoryShape {
                hot_bytes: 14 * KB,
                cold_bytes: 48 * MB,
                cold_frac: 0.055,
                stride_frac: 0.25,
                pointer_chase_frac: 0.060,
                chase_miss_frac: 0.15,
            },
            fanout_reuse: 0.12,
            branch_bias: 0.79,
            branch_patterned: 0.50,
            num_blocks: 340,
            mean_block_len: 5.5,
            fault_rate_097: 7.95,
            fault_rate_104: 1.99,
            paper_ipc: 0.51,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_profiles() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert_eq!(p.name, b.name());
            assert!(p.mean_dep_distance >= 1.0);
            assert!(p.mix.total() > 0.9 && p.mix.total() < 1.1, "{}", b);
            assert!(p.memory.cold_frac >= 0.0 && p.memory.cold_frac <= 1.0);
            assert!(p.branch_bias >= 0.5 && p.branch_bias < 1.0);
            assert!(p.num_blocks >= 16);
            assert!(p.fault_rate_097 > p.fault_rate_104, "{}", b);
        }
    }

    #[test]
    fn fault_rates_match_table1_ordering() {
        // libquantum has the highest 0.97 V fault rate; tonto the lowest.
        let max = Benchmark::ALL
            .iter()
            .max_by(|a, b| {
                a.profile()
                    .fault_rate_097
                    .partial_cmp(&b.profile().fault_rate_097)
                    .unwrap()
            })
            .copied()
            .unwrap();
        let min = Benchmark::ALL
            .iter()
            .min_by(|a, b| {
                a.profile()
                    .fault_rate_097
                    .partial_cmp(&b.profile().fault_rate_097)
                    .unwrap()
            })
            .copied()
            .unwrap();
        assert_eq!(max, Benchmark::Libquantum);
        assert_eq!(min, Benchmark::Tonto);
    }

    #[test]
    fn ipc_targets_span_paper_range() {
        let ipcs: Vec<f64> = Benchmark::ALL.iter().map(|b| b.profile().paper_ipc).collect();
        let lo = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ipcs.iter().cloned().fold(0.0, f64::max);
        assert!((lo - 0.34).abs() < 1e-9); // mcf
        assert!((hi - 1.94).abs() < 1e-9); // povray
    }

    #[test]
    fn spec2000_value_profiles() {
        for b in Spec2000::ALL {
            let v = b.value_profile();
            assert!(v.value_bits > 0 && v.value_bits < 64);
            assert!(v.repeat_prob + v.stride_prob <= 1.0);
        }
        // vortex has the narrowest value range (highest commonality).
        let vmin = Spec2000::ALL
            .iter()
            .min_by_key(|b| b.value_profile().value_bits)
            .copied()
            .unwrap();
        assert_eq!(vmin, Spec2000::Vortex);
    }

    #[test]
    #[should_panic(expected = "probabilities exceed 1")]
    fn value_profile_validates() {
        let _ = ValueProfile::new(8, 0.7, 0.7);
    }
}
