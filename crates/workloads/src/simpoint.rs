//! SimPoint-style representative phase selection.
//!
//! The paper focuses its architectural simulation "on representative phases
//! extracted using the SimPoint toolset" (§4.2), each phase corresponding to
//! 1 million committed instructions. This module reimplements the core of
//! that methodology (Sherwood, Perelman & Calder, PACT 2001): execution is
//! sliced into fixed-length intervals, each summarized by a normalized
//! *basic-block vector* (BBV); the BBVs are clustered with k-means; and the
//! interval closest to each centroid becomes that cluster's representative
//! phase, weighted by cluster population.

use tv_prng::{ChaCha12Rng, Rng, SeedableRng};

use crate::generate::TraceGenerator;

/// A representative execution phase chosen by [`SimPoint::analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Index of the representative interval.
    pub interval: usize,
    /// First dynamic instruction of the interval.
    pub start_seq: u64,
    /// Fraction of all intervals assigned to this phase's cluster.
    pub weight: f64,
}

/// Result of a SimPoint analysis over a trace prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPoint {
    phases: Vec<Phase>,
    interval_len: u64,
}

impl SimPoint {
    /// Slices the first `num_intervals * interval_len` instructions of the
    /// generator's stream into intervals, clusters their basic-block vectors
    /// into `k` clusters, and returns one representative phase per non-empty
    /// cluster.
    ///
    /// The generator is consumed from its current position.
    ///
    /// # Panics
    ///
    /// Panics if `num_intervals == 0`, `interval_len == 0`, or `k == 0`.
    pub fn analyze(
        gen: &mut TraceGenerator,
        num_intervals: usize,
        interval_len: u64,
        k: usize,
        seed: u64,
    ) -> SimPoint {
        assert!(num_intervals > 0, "num_intervals must be positive");
        assert!(interval_len > 0, "interval_len must be positive");
        assert!(k > 0, "k must be positive");

        // Gather one normalized BBV per interval.
        let base_seq = gen.emitted();
        let _ = gen.take_block_counts(); // reset any counts from warm-up
        let mut bbvs = Vec::with_capacity(num_intervals);
        for _ in 0..num_intervals {
            for _ in 0..interval_len {
                let _ = gen.next_inst();
            }
            bbvs.push(normalize(gen.take_block_counts()));
        }

        let k = k.min(num_intervals);
        let assignment = kmeans(&bbvs, k, seed);

        // One representative per non-empty cluster: the member closest to
        // the centroid.
        let mut phases = Vec::new();
        for cluster in 0..k {
            let members: Vec<usize> = (0..num_intervals)
                .filter(|&i| assignment[i] == cluster)
                .collect();
            if members.is_empty() {
                continue;
            }
            let centroid = centroid_of(&bbvs, &members);
            let rep = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    dist2(&bbvs[a], &centroid)
                        .partial_cmp(&dist2(&bbvs[b], &centroid))
                        .expect("distances are finite")
                })
                .expect("cluster is non-empty");
            phases.push(Phase {
                interval: rep,
                start_seq: base_seq + rep as u64 * interval_len,
                weight: members.len() as f64 / num_intervals as f64,
            });
        }
        phases.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("weights are finite"));
        SimPoint {
            phases,
            interval_len,
        }
    }

    /// The representative phases, heaviest first.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Interval length the analysis used.
    pub fn interval_len(&self) -> u64 {
        self.interval_len
    }

    /// The single most representative phase.
    pub fn dominant(&self) -> Phase {
        self.phases[0]
    }
}

fn normalize(counts: Vec<u64>) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    let total = total.max(1) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn centroid_of(bbvs: &[Vec<f64>], members: &[usize]) -> Vec<f64> {
    let dim = bbvs[0].len();
    let mut c = vec![0.0; dim];
    for &m in members {
        for (ci, v) in c.iter_mut().zip(&bbvs[m]) {
            *ci += v;
        }
    }
    for ci in &mut c {
        *ci /= members.len() as f64;
    }
    c
}

/// Standard Lloyd's k-means with random initial centers; returns the cluster
/// assignment of each point.
fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x5349_4d50_4f49_4e54);
    let n = points.len();
    let mut centers: Vec<Vec<f64>> = (0..k)
        .map(|_| points[rng.gen_range(0..n)].clone())
        .collect();
    let mut assignment = vec![0usize; n];
    for _iter in 0..50 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centers[a])
                        .partial_cmp(&dist2(p, &centers[b]))
                        .expect("distances are finite")
                })
                .expect("k > 0");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if !members.is_empty() {
                *center = centroid_of(points, &members);
            }
        }
        if !changed {
            break;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;

    #[test]
    fn weights_sum_to_one() {
        let mut gen = TraceGenerator::for_benchmark(Benchmark::Gcc, 3);
        let sp = SimPoint::analyze(&mut gen, 12, 2_000, 3, 99);
        let total: f64 = sp.phases().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(!sp.phases().is_empty());
        assert_eq!(sp.interval_len(), 2_000);
    }

    #[test]
    fn dominant_is_heaviest() {
        let mut gen = TraceGenerator::for_benchmark(Benchmark::Astar, 4);
        let sp = SimPoint::analyze(&mut gen, 10, 1_000, 4, 1);
        let d = sp.dominant();
        assert!(sp.phases().iter().all(|p| p.weight <= d.weight));
    }

    #[test]
    fn phase_start_seqs_are_interval_aligned() {
        let mut gen = TraceGenerator::for_benchmark(Benchmark::Mcf, 5);
        gen.fast_forward(500); // non-zero base
        let sp = SimPoint::analyze(&mut gen, 8, 1_000, 2, 7);
        for p in sp.phases() {
            assert_eq!((p.start_seq - 500) % 1_000, 0);
            assert!(p.interval < 8);
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let run = || {
            let mut gen = TraceGenerator::for_benchmark(Benchmark::Sjeng, 8);
            SimPoint::analyze(&mut gen, 10, 1_000, 3, 5)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn k_larger_than_intervals_is_clamped() {
        let mut gen = TraceGenerator::for_benchmark(Benchmark::Gcc, 1);
        let sp = SimPoint::analyze(&mut gen, 3, 500, 10, 0);
        assert!(sp.phases().len() <= 3);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let mut gen = TraceGenerator::for_benchmark(Benchmark::Gcc, 1);
        let _ = SimPoint::analyze(&mut gen, 3, 500, 0, 0);
    }
}
