//! Dynamic trace generation: walking the static program.
//!
//! [`TraceGenerator`] walks the Markov control-flow graph of a
//! [`StaticProgram`], resolving branch outcomes and memory addresses, and
//! emits an endless stream of [`TraceInst`]s. The walk is deterministic for
//! a given `(profile, seed)` pair, so every scheme in an experiment sees the
//! *identical* dynamic instruction stream — a prerequisite for the paper's
//! overhead comparisons.

use tv_prng::{ChaCha12Rng, FastHashMap, Rng, SeedableRng};

use crate::inst::{OpClass, TraceInst};
use crate::profile::{Benchmark, Profile};
use crate::program::{StaticProgram, Terminator, COLD_BASE, HOT_BASE};

/// Per-static-memory-instruction address state.
#[derive(Debug, Clone, Copy)]
struct MemCursor {
    offset: u64,
}

/// Walks a static program and emits a resolved dynamic instruction stream.
///
/// # Example
///
/// ```
/// use tv_workloads::{Benchmark, TraceGenerator};
///
/// let mut gen = TraceGenerator::for_benchmark(Benchmark::Sjeng, 1);
/// let first = gen.next_inst();
/// let mut again = TraceGenerator::for_benchmark(Benchmark::Sjeng, 1);
/// assert_eq!(first, again.next_inst()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    program: StaticProgram,
    profile: Profile,
    rng: ChaCha12Rng,
    /// Current block index.
    block: usize,
    /// Next instruction index within the current block.
    slot: usize,
    /// Global dynamic sequence counter.
    seq: u64,
    /// Per-conditional-branch position within its repeating pattern,
    /// indexed by block id (0 for never-visited branches — the same
    /// starting position the old lazy map handed out).
    pattern_pos: Vec<u32>,
    /// Per-static-instruction memory cursors, keyed by PC (bit 63 tags
    /// the cold-region cursor).
    cursors: FastHashMap<u64, MemCursor>,
    /// Architectural register values (for operand-value streams).
    reg_values: [u64; 32],
    /// Dynamic basic-block execution counts since the last drain (SimPoint).
    block_counts: Vec<u64>,
}

impl TraceGenerator {
    /// Creates a generator for an explicit profile and seed.
    pub fn new(profile: Profile, seed: u64) -> Self {
        let program = StaticProgram::generate(&profile, seed);
        let num_blocks = program.blocks().len();
        TraceGenerator {
            program,
            profile,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x7452_4143_4547_454e),
            block: 0,
            slot: 0,
            seq: 0,
            pattern_pos: vec![0; num_blocks],
            cursors: FastHashMap::default(),
            reg_values: [0; 32],
            block_counts: vec![0; num_blocks],
        }
    }

    /// Creates a generator for one of the paper's SPEC CPU2006 benchmarks.
    pub fn for_benchmark(bench: Benchmark, seed: u64) -> Self {
        Self::new(bench.profile(), seed)
    }

    /// The underlying static program.
    pub fn program(&self) -> &StaticProgram {
        &self.program
    }

    /// The benchmark profile driving this generator.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Number of instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Produces the next dynamic instruction.
    pub fn next_inst(&mut self) -> TraceInst {
        let (block_id, slot) = (self.block, self.slot);
        if slot == 0 {
            self.block_counts[block_id] += 1;
        }
        let block = &self.program.blocks()[block_id];
        let sinst = block.insts[slot].clone();
        let is_last = slot + 1 == block.insts.len();

        let mut taken = None;
        let mut target = None;
        if is_last {
            // Match the terminator by reference: `Cond::pattern` owns a
            // Vec, so cloning it here would put an allocation on the
            // per-instruction hot path.
            match block.terminator {
                Terminator::Fall { next } => {
                    self.block = next;
                    self.slot = 0;
                }
                Terminator::Jump { target: t } => {
                    taken = Some(true);
                    target = Some(self.program.blocks()[t].start_pc());
                    self.block = t;
                    self.slot = 0;
                }
                Terminator::Cond {
                    taken: t_blk,
                    fall,
                    bias,
                    ref pattern,
                } => {
                    let is_taken = match pattern {
                        Some(pat) => {
                            let pos = &mut self.pattern_pos[block_id];
                            let dir = pat[*pos as usize % pat.len()];
                            *pos = (*pos + 1) % pat.len() as u32;
                            dir
                        }
                        None => self.rng.gen_bool(bias),
                    };
                    taken = Some(is_taken);
                    let next = if is_taken { t_blk } else { fall };
                    if is_taken {
                        target = Some(self.program.blocks()[t_blk].start_pc());
                    }
                    self.block = next;
                    self.slot = 0;
                }
            }
        } else {
            self.slot += 1;
        }

        let mem_addr = sinst.mem.map(|m| self.next_address(sinst.pc, m));
        let operand_values = [
            sinst.srcs[0].map_or(0, |r| self.reg_values[r.index() as usize]),
            sinst.srcs[1].map_or(0, |r| self.reg_values[r.index() as usize]),
        ];
        self.update_reg_value(&sinst, operand_values, mem_addr);

        let inst = TraceInst {
            seq: self.seq,
            pc: sinst.pc,
            op: sinst.op,
            srcs: sinst.srcs,
            dst: sinst.dst,
            mem_addr,
            taken,
            target,
            operand_values,
        };
        self.seq += 1;
        inst
    }

    /// Drains and resets the dynamic basic-block execution counts gathered
    /// since the previous call (used by the SimPoint analysis).
    pub fn take_block_counts(&mut self) -> Vec<u64> {
        let counts = self.block_counts.clone();
        for c in &mut self.block_counts {
            *c = 0;
        }
        counts
    }

    /// Advances past `n` instructions (fast-forward to a SimPoint phase start).
    pub fn fast_forward(&mut self, n: u64) {
        for _ in 0..n {
            let _ = self.next_inst();
        }
    }

    fn next_address(&mut self, pc: u64, m: crate::program::MemPattern) -> u64 {
        let mem = self.profile.memory;
        // Region choice is per dynamic access so the cold share tracks the
        // profile exactly, independent of which static instructions happen
        // to sit in hot loops. Pointer chases use their own miss fraction
        // (most hops of a pointer walk hit the cached part of the
        // structure; a `chase_miss_frac` share wanders cold).
        let cold = if m.pointer_chase {
            self.rng.gen_bool(mem.chase_miss_frac.clamp(0.0, 1.0))
        } else {
            self.rng.gen_bool(mem.cold_frac.clamp(0.0, 1.0))
        };
        let (base, size) = if cold {
            (COLD_BASE, mem.cold_bytes.max(64))
        } else {
            (HOT_BASE, mem.hot_bytes.max(64))
        };
        // Separate cursors per region keep strides/walks coherent.
        let key = pc | ((cold as u64) << 63);
        let cursor = self
            .cursors
            .entry(key)
            .or_insert(MemCursor { offset: pc % size });
        let offset = if m.pointer_chase {
            // Hash walk: the next node lives at a pseudo-random offset
            // derived from the current one.
            cursor.offset = splitmix(cursor.offset ^ pc) % size;
            cursor.offset
        } else if m.strided {
            // Cold streams stride at least a cache line (they really miss);
            // hot strides reuse lines.
            let stride = if cold { m.stride * 8 } else { m.stride };
            cursor.offset = (cursor.offset + stride) % size;
            cursor.offset
        } else {
            self.rng.gen_range(0..size)
        };
        base + (offset & !7) // 8-byte aligned
    }

    fn update_reg_value(&mut self, sinst: &crate::program::StaticInst, vals: [u64; 2], addr: Option<u64>) {
        let Some(dst) = sinst.dst else { return };
        if dst.is_zero() {
            return;
        }
        let v = match sinst.op {
            OpClass::IntAlu => vals[0].wrapping_add(vals[1]).rotate_left(1),
            OpClass::IntMul | OpClass::FpMul => vals[0].wrapping_mul(vals[1] | 1),
            OpClass::IntDiv => vals[0] / (vals[1] | 1),
            OpClass::FpAlu => vals[0] ^ vals[1].rotate_left(17),
            OpClass::Load => splitmix(addr.unwrap_or(0)),
            _ => return,
        };
        self.reg_values[dst.index() as usize] = v;
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed hash for address chains.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Iterator for TraceGenerator {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        Some(self.next_inst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{COLD_BASE, HOT_BASE};
    use std::collections::HashSet;

    #[test]
    fn determinism_across_instances() {
        let mut a = TraceGenerator::for_benchmark(Benchmark::Gcc, 9);
        let mut b = TraceGenerator::for_benchmark(Benchmark::Gcc, 9);
        for _ in 0..5_000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn seq_is_monotone() {
        let mut g = TraceGenerator::for_benchmark(Benchmark::Astar, 3);
        for i in 0..1_000 {
            assert_eq!(g.next_inst().seq, i);
        }
        assert_eq!(g.emitted(), 1_000);
    }

    #[test]
    fn static_pcs_recur() {
        // The property TEP depends on: a bounded static footprint revisited
        // many times.
        let mut g = TraceGenerator::for_benchmark(Benchmark::Sjeng, 5);
        let mut pcs = HashSet::new();
        for _ in 0..50_000 {
            pcs.insert(g.next_inst().pc);
        }
        let static_total = g.program().num_insts();
        assert!(pcs.len() <= static_total);
        // Reuse factor must be substantial.
        assert!(50_000 / pcs.len() > 10, "PCs do not recur enough");
    }

    #[test]
    fn branch_outcomes_match_targets() {
        let mut g = TraceGenerator::for_benchmark(Benchmark::Gobmk, 11);
        let mut prev: Option<TraceInst> = None;
        for _ in 0..20_000 {
            let inst = g.next_inst();
            if let Some(p) = prev {
                let expect = match p.taken {
                    Some(true) => p.target.expect("taken branch must carry a target"),
                    _ => p.next_pc(),
                };
                assert_eq!(inst.pc, expect, "control flow is inconsistent");
            }
            prev = Some(inst);
        }
    }

    #[test]
    fn memory_addresses_land_in_regions() {
        let mut g = TraceGenerator::for_benchmark(Benchmark::Mcf, 2);
        let mem = g.profile().memory;
        let mut saw_cold = false;
        let mut saw_hot = false;
        for _ in 0..30_000 {
            let inst = g.next_inst();
            if let Some(a) = inst.mem_addr {
                assert_eq!(a % 8, 0, "addresses are 8-byte aligned");
                if a >= COLD_BASE {
                    assert!(a < COLD_BASE + mem.cold_bytes);
                    saw_cold = true;
                } else {
                    assert!(a >= HOT_BASE && a < HOT_BASE + mem.hot_bytes);
                    saw_hot = true;
                }
            }
        }
        assert!(saw_cold && saw_hot);
    }

    #[test]
    fn mix_roughly_matches_profile() {
        let mut g = TraceGenerator::for_benchmark(Benchmark::Bzip2, 17);
        let mut loads = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if g.next_inst().op == OpClass::Load {
                loads += 1;
            }
        }
        let frac = loads as f64 / n as f64;
        let want = g.profile().mix.load / g.profile().mix.total();
        assert!(
            (frac - want).abs() < 0.08,
            "load fraction {frac:.3} too far from {want:.3}"
        );
    }

    #[test]
    fn patterned_branches_repeat() {
        // Find a patterned branch and check its dynamic outcomes cycle.
        let mut g = TraceGenerator::for_benchmark(Benchmark::Povray, 23);
        let mut outcomes: std::collections::HashMap<u64, Vec<bool>> = Default::default();
        for _ in 0..200_000 {
            let inst = g.next_inst();
            if inst.op == OpClass::CondBranch {
                outcomes.entry(inst.pc).or_default().push(inst.taken.unwrap());
            }
        }
        // At least one branch must show a perfectly periodic outcome stream.
        let periodic = outcomes.values().any(|v| {
            v.len() > 32
                && (2..=8).any(|p| v.windows(p + 1).all(|w| w[0] == w[p]))
        });
        assert!(periodic, "no periodic branch found");
    }

    #[test]
    fn fast_forward_advances_stream() {
        let mut a = TraceGenerator::for_benchmark(Benchmark::Gcc, 7);
        let mut b = TraceGenerator::for_benchmark(Benchmark::Gcc, 7);
        a.fast_forward(123);
        for _ in 0..123 {
            b.next_inst();
        }
        assert_eq!(a.next_inst(), b.next_inst());
    }

    #[test]
    fn iterator_interface() {
        let g = TraceGenerator::for_benchmark(Benchmark::Tonto, 1);
        let v: Vec<_> = g.take(10).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v[9].seq, 9);
    }
}

#[cfg(test)]
mod speed_probe {
    use super::*;

    #[test]
    #[ignore = "manual throughput probe"]
    fn gen_speed() {
        let mut g = TraceGenerator::for_benchmark(Benchmark::Gcc, 42);
        let t = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc ^= g.next_inst().pc;
        }
        eprintln!("1M insts in {:?} (acc {acc})", t.elapsed());
    }
}
