//! Dynamic trace instruction representation.
//!
//! The microarchitectural simulator consumes a stream of [`TraceInst`]s, each
//! carrying everything the pipeline needs: a static PC (the key the Timing
//! Error Predictor is indexed by), an operation class, architectural register
//! operands, an effective address for memory operations, and the resolved
//! outcome for control transfers.

use std::fmt;

/// Number of architectural integer registers in the synthetic ISA.
///
/// Register 0 is a hard-wired zero (writes to it are discarded), mirroring
/// RISC conventions; the remaining 31 registers are general purpose.
pub const NUM_ARCH_REGS: u8 = 32;

/// An architectural register identifier (`r0`–`r31`).
///
/// `r0` always reads as zero and is never renamed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// The hard-wired zero register.
    pub const ZERO: ArchReg = ArchReg(0);

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(
            index < NUM_ARCH_REGS,
            "architectural register index {index} out of range"
        );
        ArchReg(index)
    }

    /// Raw register index in `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Operation class of an instruction.
///
/// The classes map onto the functional units of the Fabscalar-like Core-1
/// configuration the paper simulates: single-cycle simple ALUs, a multi-cycle
/// complex unit (multiply/divide), a memory port (address generation followed
/// by cache access), and branch resolution on a simple-ALU lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, sub, logical, compare, shift).
    IntAlu,
    /// Multi-cycle pipelined integer multiply.
    IntMul,
    /// Multi-cycle *unpipelined* integer divide.
    IntDiv,
    /// Memory load (address generation + data cache access).
    Load,
    /// Memory store (address generation; data written at retire).
    Store,
    /// Conditional branch, resolved in execute.
    CondBranch,
    /// Unconditional jump / call / return.
    Jump,
    /// Floating-point add/sub/convert (multi-cycle pipelined).
    FpAlu,
    /// Floating-point multiply (multi-cycle pipelined).
    FpMul,
}

impl OpClass {
    /// All operation classes, in a fixed order (useful for histograms).
    pub const ALL: [OpClass; 9] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::CondBranch,
        OpClass::Jump,
        OpClass::FpAlu,
        OpClass::FpMul,
    ];

    /// Whether the instruction accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the instruction is a control transfer.
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::CondBranch | OpClass::Jump)
    }

    /// Whether the instruction produces a register result.
    pub fn writes_register(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::CondBranch | OpClass::Jump)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "mul",
            OpClass::IntDiv => "div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::CondBranch => "br",
            OpClass::Jump => "jmp",
            OpClass::FpAlu => "fadd",
            OpClass::FpMul => "fmul",
        };
        f.write_str(s)
    }
}

/// One dynamic instruction instance in the trace.
///
/// A trace instruction is fully resolved: the generator has already decided
/// the effective address of memory operations and the outcome of branches.
/// The pipeline model *predicts* branches and compares against [`taken`] /
/// [`target`] to detect mispredictions.
///
/// [`taken`]: TraceInst::taken
/// [`target`]: TraceInst::target
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInst {
    /// Global dynamic sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// Static program counter of this instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Up to two source registers (`None` slots are unused).
    pub srcs: [Option<ArchReg>; 2],
    /// Destination register, if the instruction writes one.
    pub dst: Option<ArchReg>,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Resolved direction for conditional branches (`Some(true)` = taken);
    /// `Some(true)` for unconditional jumps; `None` otherwise.
    pub taken: Option<bool>,
    /// Resolved target PC for taken control transfers.
    pub target: Option<u64>,
    /// Two source operand *values*, used by the gate-level sensitization
    /// study and for value-dependent timing (the pipeline itself does not
    /// need architecturally correct values).
    pub operand_values: [u64; 2],
}

impl TraceInst {
    /// Sequential fall-through PC (instructions are 4 bytes).
    pub fn next_pc(&self) -> u64 {
        self.pc + 4
    }

    /// Number of valid source operands.
    pub fn num_srcs(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_bounds() {
        let r = ArchReg::new(31);
        assert_eq!(r.index(), 31);
        assert!(!r.is_zero());
        assert!(ArchReg::ZERO.is_zero());
        assert_eq!(ArchReg::new(5).to_string(), "r5");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_out_of_range_panics() {
        let _ = ArchReg::new(32);
    }

    #[test]
    fn op_class_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::CondBranch.is_branch());
        assert!(OpClass::Jump.is_branch());
        assert!(!OpClass::Load.is_branch());
        assert!(OpClass::Load.writes_register());
        assert!(!OpClass::Store.writes_register());
        assert!(!OpClass::CondBranch.writes_register());
        assert!(OpClass::IntMul.writes_register());
    }

    #[test]
    fn all_classes_distinct() {
        for (i, a) in OpClass::ALL.iter().enumerate() {
            for b in &OpClass::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn trace_inst_next_pc() {
        let inst = TraceInst {
            seq: 0,
            pc: 0x1000,
            op: OpClass::IntAlu,
            srcs: [Some(ArchReg::new(1)), None],
            dst: Some(ArchReg::new(2)),
            mem_addr: None,
            taken: None,
            target: None,
            operand_values: [0, 0],
        };
        assert_eq!(inst.next_pc(), 0x1004);
        assert_eq!(inst.num_srcs(), 1);
    }
}
