//! Per-PC operand value streams for the gate-level sensitization study.
//!
//! The paper's supplemental study (§S1) feeds "inputs corresponding to
//! specific instructions" from six SPEC2000-int benchmarks into synthesized
//! processor components and measures how similar the sensitized gate sets of
//! repeated dynamic instances of one static PC are. The decisive workload
//! property is *value locality*: many dynamic instances of a PC present
//! identical or nearly identical operands (e.g. an AGEN walking an array
//! sees addresses differing in one low bit).
//!
//! [`ValueStream`] reproduces that property: a fixed population of static
//! PCs with Zipf-like execution frequencies, each carrying its own operand
//! state that repeats, strides, or refreshes according to the benchmark's
//! [`ValueProfile`](crate::profile::ValueProfile).

use tv_prng::{ChaCha12Rng, Rng, SeedableRng};

use crate::profile::Spec2000;

/// One operand sample: the static PC that produced it and its two source
/// operand values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueSample {
    /// Static PC of the instruction.
    pub pc: u64,
    /// Two source operand values.
    pub operands: [u64; 2],
    /// Operand values of the *preceding* instruction, which set the
    /// component's internal logic state before this instance evaluates
    /// (paper §S1.2: "we also identify the preceding instruction PC that
    /// sets the internal logic state"). The predecessor recurs per PC just
    /// like the instance itself — code paths recur.
    pub predecessor: [u64; 2],
    /// A request-vector view of the machine state accompanying this
    /// instance (used by the issue-queue-select component study): bit *i*
    /// set means issue-queue entry *i* is requesting issue.
    pub request_vector: u32,
}

/// A deterministic stream of per-PC operand samples for one SPEC2000
/// benchmark.
///
/// # Example
///
/// ```
/// use tv_workloads::{Spec2000, ValueStream};
///
/// let mut vs = ValueStream::new(Spec2000::Vortex, 64, 7);
/// let s = vs.next_sample();
/// assert!(s.pc >= 0x1000);
/// ```
#[derive(Debug, Clone)]
pub struct ValueStream {
    rng: ChaCha12Rng,
    profile: crate::profile::ValueProfile,
    /// Static-instruction population: `(pc, cumulative_weight)`.
    pcs: Vec<(u64, f64)>,
    total_weight: f64,
    /// Per-PC operand state.
    state: Vec<[u64; 2]>,
    /// Per-PC predecessor operand state.
    pred_state: Vec<[u64; 2]>,
    /// Per-PC request-vector state (machine context recurs per PC too).
    req_state: Vec<u32>,
    value_mask: u64,
}

impl ValueStream {
    /// Creates a stream over `num_pcs` static instructions for `bench`.
    ///
    /// # Panics
    ///
    /// Panics if `num_pcs == 0`.
    pub fn new(bench: Spec2000, num_pcs: usize, seed: u64) -> Self {
        assert!(num_pcs > 0, "num_pcs must be positive");
        let profile = bench.value_profile();
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x5641_4c53_5452_4d00);
        let value_mask = (1u64 << profile.value_bits) - 1;

        // Zipf-ish frequency weights: weight(i) = 1 / (i + 1).
        let mut pcs = Vec::with_capacity(num_pcs);
        let mut cum = 0.0;
        for i in 0..num_pcs {
            cum += 1.0 / (i as f64 + 1.0);
            pcs.push((0x1000 + 4 * i as u64, cum));
        }
        let total_weight = cum;

        let state: Vec<[u64; 2]> = (0..num_pcs)
            .map(|_| [rng.gen::<u64>() & value_mask, rng.gen::<u64>() & value_mask])
            .collect();
        let pred_state = (0..num_pcs)
            .map(|_| [rng.gen::<u64>() & value_mask, rng.gen::<u64>() & value_mask])
            .collect();
        let req_state = (0..num_pcs).map(|_| rng.gen::<u32>()).collect();

        ValueStream {
            rng,
            profile,
            pcs,
            total_weight,
            state,
            pred_state,
            req_state,
            value_mask,
        }
    }

    /// Number of distinct static PCs in the population.
    pub fn num_pcs(&self) -> usize {
        self.pcs.len()
    }

    /// Produces the next sample.
    pub fn next_sample(&mut self) -> ValueSample {
        // Pick a PC by Zipf weight.
        let x = self.rng.gen_range(0.0..self.total_weight);
        let idx = self.pcs.partition_point(|&(_, c)| c <= x);
        let idx = idx.min(self.pcs.len() - 1);
        let pc = self.pcs[idx].0;

        // Evolve the per-PC operand state. One roll drives both the
        // instance and its predecessor: a loop iteration advances the
        // whole code path together (the array walk strides every value by
        // the same amount), so the predecessor→instance *transition* — and
        // with it the sensitized path — recurs even as absolute values
        // move. Fresh draws (a new code context) refresh both.
        let roll: f64 = self.rng.gen();
        let st = &mut self.state[idx];
        let ps = &mut self.pred_state[idx];
        if roll < self.profile.repeat_prob {
            // exact repeat: leave both untouched
        } else if roll < self.profile.repeat_prob + self.profile.stride_prob {
            // small stride on operand 0 of both (array-walk pattern)
            st[0] = st[0].wrapping_add(8) & self.value_mask;
            ps[0] = ps[0].wrapping_add(8) & self.value_mask;
        } else {
            st[0] = self.rng.gen::<u64>() & self.value_mask;
            st[1] = self.rng.gen::<u64>() & self.value_mask;
            ps[0] = self.rng.gen::<u64>() & self.value_mask;
            ps[1] = self.rng.gen::<u64>() & self.value_mask;
        }
        let operands = *st;
        let predecessor = *ps;

        // Request vector: the scheduling context recurs with the code
        // path ("frequently repeated patterns in instruction selection",
        // §S1.2.2) — it changes only when the value regime does.
        let req = &mut self.req_state[idx];
        if roll >= self.profile.repeat_prob + self.profile.stride_prob {
            *req = self.rng.gen::<u32>();
        } else if self.rng.gen_bool(0.05) {
            *req ^= 1 << self.rng.gen_range(0..32);
        }
        let request_vector = *req;

        ValueSample {
            pc,
            operands,
            predecessor,
            request_vector,
        }
    }
}

impl Iterator for ValueStream {
    type Item = ValueSample;

    fn next(&mut self) -> Option<ValueSample> {
        Some(self.next_sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn stream_is_deterministic() {
        let mut a = ValueStream::new(Spec2000::Gzip, 32, 5);
        let mut b = ValueStream::new(Spec2000::Gzip, 32, 5);
        for _ in 0..1_000 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }

    #[test]
    fn values_respect_bit_width() {
        let mut vs = ValueStream::new(Spec2000::Vortex, 16, 9);
        let bits = Spec2000::Vortex.value_profile().value_bits;
        for _ in 0..2_000 {
            let s = vs.next_sample();
            assert!(s.operands[0] < (1 << bits));
            assert!(s.operands[1] < (1 << bits));
        }
    }

    #[test]
    fn pc_population_is_zipf_skewed() {
        let mut vs = ValueStream::new(Spec2000::Bzip, 64, 3);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(vs.next_sample().pc).or_default() += 1;
        }
        let first = counts.get(&0x1000).copied().unwrap_or(0);
        let median_pc = 0x1000 + 4 * 32;
        let mid = counts.get(&median_pc).copied().unwrap_or(0);
        assert!(
            first > mid * 3,
            "hot PC ({first}) should dominate mid-rank PC ({mid})"
        );
    }

    #[test]
    fn vortex_repeats_more_than_mcf() {
        // vortex's higher repeat probability must show up as more exact
        // operand repeats per PC.
        let repeat_rate = |bench: Spec2000| {
            let mut vs = ValueStream::new(bench, 8, 11);
            let mut last: HashMap<u64, [u64; 2]> = HashMap::new();
            let mut repeats = 0usize;
            let mut total = 0usize;
            for _ in 0..30_000 {
                let s = vs.next_sample();
                if let Some(prev) = last.insert(s.pc, s.operands) {
                    total += 1;
                    if prev == s.operands {
                        repeats += 1;
                    }
                }
            }
            repeats as f64 / total.max(1) as f64
        };
        assert!(repeat_rate(Spec2000::Vortex) > repeat_rate(Spec2000::Mcf));
    }

    #[test]
    #[should_panic(expected = "num_pcs must be positive")]
    fn zero_pcs_panics() {
        let _ = ValueStream::new(Spec2000::Gap, 0, 0);
    }
}
