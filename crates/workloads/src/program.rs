//! Static program construction.
//!
//! A [`StaticProgram`] is a fixed set of basic blocks containing typed
//! instructions with architectural register dependences, connected by a
//! Markov control-flow graph. Walking the graph (see
//! [`crate::generate::TraceGenerator`]) produces a dynamic instruction trace
//! in which the same static PCs recur over and over — exactly the property
//! (paper §S1) that makes PC-indexed timing-error prediction work.

use tv_prng::{ChaCha12Rng, Rng, SeedableRng};

use crate::inst::{ArchReg, OpClass};
use crate::profile::Profile;

/// Base address of the synthetic text segment.
pub const TEXT_BASE: u64 = 0x1000;
/// Base address of the hot data region.
pub const HOT_BASE: u64 = 0x1000_0000;
/// Base address of the cold data region.
pub const COLD_BASE: u64 = 0x8000_0000;

/// Memory access pattern of one static load or store.
///
/// The pattern is structural (strided vs random vs pointer-chasing); which
/// *region* (hot or cold) a given dynamic access touches is decided by the
/// generator per access, so the dynamic cold share tracks the profile's
/// `cold_frac` exactly regardless of which static instructions end up in
/// hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPattern {
    /// Sequentially strided within its region (else pseudo-random).
    pub strided: bool,
    /// Stride in bytes for strided accesses within the hot region (cold
    /// strides are scaled up to at least a cache line).
    pub stride: u64,
    /// Load address depends on the previous load in a chase chain.
    pub pointer_chase: bool,
}

/// One static instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticInst {
    /// Program counter (unique, 4-byte spaced).
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register.
    pub dst: Option<ArchReg>,
    /// Source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Memory behaviour for loads/stores.
    pub mem: Option<MemPattern>,
}

/// Control-flow behaviour at the end of a basic block.
///
/// The block's final instruction is the branch/jump itself when the
/// terminator is [`Terminator::Cond`] or [`Terminator::Jump`]; a
/// [`Terminator::Fall`] block ends with an ordinary instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Fall through to the next block.
    Fall { next: usize },
    /// Conditional branch.
    Cond {
        /// Block index when taken.
        taken: usize,
        /// Block index when not taken.
        fall: usize,
        /// Probability of being taken (used when `pattern` is `None`).
        bias: f64,
        /// Optional short repeating taken/not-taken pattern; when present
        /// the branch is deterministic and history-predictable.
        pattern: Option<Vec<bool>>,
    },
    /// Unconditional jump.
    Jump { target: usize },
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Index of this block within the program.
    pub id: usize,
    /// Instructions (the last one is the branch for `Cond`/`Jump` blocks).
    pub insts: Vec<StaticInst>,
    /// Control flow out of this block.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// PC of the first instruction.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty (the builder never produces one).
    pub fn start_pc(&self) -> u64 {
        self.insts.first().expect("basic block is never empty").pc
    }
}

/// A complete static program for one benchmark profile.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticProgram {
    blocks: Vec<BasicBlock>,
    num_insts: usize,
}

impl StaticProgram {
    /// Generates the static program for `profile`, deterministically from
    /// `seed`.
    ///
    /// The same `(profile, seed)` pair always yields an identical program;
    /// experiments are reproducible bit-for-bit.
    pub fn generate(profile: &Profile, seed: u64) -> Self {
        Builder::new(profile, seed).build()
    }

    /// The basic blocks of the program.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Total number of static instructions.
    pub fn num_insts(&self) -> usize {
        self.num_insts
    }

    /// Looks up a static instruction by PC.
    pub fn inst_at(&self, pc: u64) -> Option<&StaticInst> {
        // PCs are laid out contiguously per block; binary search the block,
        // then index within it.
        let idx = self
            .blocks
            .partition_point(|b| b.start_pc() <= pc)
            .checked_sub(1)?;
        let block = &self.blocks[idx];
        let offset = pc.checked_sub(block.start_pc())? / 4;
        block.insts.get(offset as usize).filter(|i| i.pc == pc)
    }
}

/// Planned terminator role of one block (see [`Builder::build`]).
#[derive(Debug, Clone, Copy)]
enum BlockPlan {
    /// Forward if-skip inside a loop body ending at `end`.
    Interior { end: usize },
    /// Loop back-edge to `start`.
    BackEdge { start: usize },
    /// Connector: jump to a uniform target.
    Connector,
}

/// Internal program builder.
struct Builder<'p> {
    profile: &'p Profile,
    rng: ChaCha12Rng,
    next_pc: u64,
    /// Ring of recently written destination registers, used to realize the
    /// profile's dependence-distance distribution.
    recent_dsts: Vec<ArchReg>,
    /// Destination register rotation (r1..r31; r0 is hard-wired zero).
    next_dst: u8,
    /// Most recent load destination, for pointer-chase chains.
    last_load_dst: Option<ArchReg>,
    /// The current block's hub value (its first result); sources reuse it
    /// with the profile's `fanout_reuse` probability, creating
    /// high-fan-out producers.
    hub: Option<ArchReg>,
    /// Destinations written in the current block so far.
    block_writes: usize,
}

impl<'p> Builder<'p> {
    fn new(profile: &'p Profile, seed: u64) -> Self {
        Builder {
            profile,
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x5757_4c4f_4144_5347),
            next_pc: TEXT_BASE,
            recent_dsts: Vec::with_capacity(64),
            next_dst: 1,
            last_load_dst: None,
            hub: None,
            block_writes: 0,
        }
    }

    /// Builds the program as a chain of bounded loops.
    ///
    /// Real programs are loop nests, not arbitrary Markov graphs: an
    /// unstructured random CFG concentrates its stationary distribution on
    /// a handful of absorbing blocks, so one hot random branch would
    /// dominate the whole benchmark's behaviour. Instead, blocks are
    /// partitioned into small loop bodies. Interior blocks end with
    /// forward if-skips (bias/pattern per profile); each body's last block
    /// carries the loop back-edge with a bounded trip count (a highly
    /// predictable, mostly-taken branch, as in real loop code); connector
    /// blocks between loops jump to uniformly random targets, which keeps
    /// the walk mixing over the entire program.
    fn build(mut self) -> StaticProgram {
        let n = self.profile.num_blocks;
        let mix = &self.profile.mix;
        let jump_share =
            (mix.jump / (mix.jump + mix.cond_branch).max(1e-9)).clamp(0.0, 0.9);

        // Plan the terminator of every block first.
        let mut plan = vec![BlockPlan::Connector; n];
        let mut id = 0;
        while id < n - 1 {
            if id > 0 && self.rng.gen_bool(jump_share) {
                plan[id] = BlockPlan::Connector;
                id += 1;
                continue;
            }
            let body = 1 + self.sample_geometric(1.5).min(5);
            let end = (id + body - 1).min(n - 2);
            for b in id..end {
                plan[b] = BlockPlan::Interior { end };
            }
            plan[end] = BlockPlan::BackEdge { start: id };
            id = end + 1;
        }
        plan[n - 1] = BlockPlan::Connector; // final wrap handled below

        let mut blocks = Vec::with_capacity(n);
        for (id, p) in plan.iter().enumerate() {
            blocks.push(self.build_block(id, n, *p));
        }
        let num_insts = blocks.iter().map(|b| b.insts.len()).sum();
        StaticProgram { blocks, num_insts }
    }

    fn build_block(
        &mut self,
        id: usize,
        num_blocks: usize,
        plan: BlockPlan,
    ) -> BasicBlock {
        // Block length: geometric-ish around the profile mean, at least 2
        // (one body instruction plus the terminator).
        let mean = self.profile.mean_block_len.max(2.0);
        let len = 2 + self.sample_geometric(mean - 2.0).min(24);

        self.block_writes = 0;
        let mut insts = Vec::with_capacity(len + 1);
        for _ in 0..len.saturating_sub(1) {
            insts.push(self.build_body_inst());
        }

        let last_block = id + 1 == num_blocks;
        let terminator = if last_block {
            insts.push(self.build_ctrl_inst(OpClass::Jump));
            Terminator::Jump { target: 0 }
        } else {
            match plan {
                BlockPlan::Connector => {
                    insts.push(self.build_ctrl_inst(OpClass::Jump));
                    Terminator::Jump {
                        target: self.pick_jump_target(id, num_blocks),
                    }
                }
                BlockPlan::Interior { end } => {
                    insts.push(self.build_ctrl_inst(OpClass::CondBranch));
                    // Forward skip within the loop body (taken jumps over
                    // one or more body blocks, never out of the loop).
                    let skip = 1 + self.sample_geometric(1.0);
                    let taken = (id + 1 + skip).min(end);
                    let bias = self.sample_bias();
                    // If-skips in real code are the *not-taken*-biased
                    // side; flip the profile bias so falling through
                    // (executing the body) is the common case.
                    let bias = 1.0 - bias;
                    let pattern = if self.rng.gen_bool(self.profile.branch_patterned) {
                        Some(self.sample_pattern(bias))
                    } else {
                        None
                    };
                    Terminator::Cond {
                        taken,
                        fall: id + 1,
                        bias,
                        pattern,
                    }
                }
                BlockPlan::BackEdge { start } => {
                    insts.push(self.build_ctrl_inst(OpClass::CondBranch));
                    // Trip count: taken (loop again) T-1 times, then exit.
                    let trips = 3 + self.sample_geometric(5.0).min(13);
                    let bias = 1.0 - 1.0 / trips as f64;
                    let pattern = if self.rng.gen_bool(self.profile.branch_patterned) {
                        let mut p = vec![true; trips];
                        p[trips - 1] = false;
                        Some(p)
                    } else {
                        None
                    };
                    Terminator::Cond {
                        taken: start,
                        fall: id + 1,
                        bias,
                        pattern,
                    }
                }
            }
        };

        BasicBlock {
            id,
            insts,
            terminator,
        }
    }

    /// Samples a non-branch instruction according to the renormalized mix.
    fn build_body_inst(&mut self) -> StaticInst {
        let mix = &self.profile.mix;
        let body_classes = [
            (OpClass::IntAlu, mix.int_alu),
            (OpClass::IntMul, mix.int_mul),
            (OpClass::IntDiv, mix.int_div),
            (OpClass::Load, mix.load),
            (OpClass::Store, mix.store),
            (OpClass::FpAlu, mix.fp_alu),
            (OpClass::FpMul, mix.fp_mul),
        ];
        let total: f64 = body_classes.iter().map(|(_, w)| w).sum();
        let mut x = self.rng.gen_range(0.0..total);
        let mut op = OpClass::IntAlu;
        for (class, w) in body_classes {
            if x < w {
                op = class;
                break;
            }
            x -= w;
        }

        let pc = self.alloc_pc();
        match op {
            OpClass::Load => self.build_load(pc),
            OpClass::Store => self.build_store(pc),
            _ => {
                let srcs = [Some(self.pick_src()), Some(self.pick_src())];
                let dst = Some(self.alloc_dst());
                StaticInst {
                    pc,
                    op,
                    dst,
                    srcs,
                    mem: None,
                }
            }
        }
    }

    fn build_load(&mut self, pc: u64) -> StaticInst {
        let mem = self.sample_mem_pattern(true);
        // A pointer-chase load's address register is the destination of the
        // previous load in the chain, serializing the chain through the
        // register dependence the pipeline actually sees.
        let addr_src = if mem.pointer_chase {
            self.last_load_dst.unwrap_or_else(|| self.pick_src())
        } else {
            self.pick_src()
        };
        let dst = self.alloc_dst();
        self.last_load_dst = Some(dst);
        StaticInst {
            pc,
            op: OpClass::Load,
            dst: Some(dst),
            srcs: [Some(addr_src), None],
            mem: Some(mem),
        }
    }

    fn build_store(&mut self, pc: u64) -> StaticInst {
        let mem = self.sample_mem_pattern(false);
        StaticInst {
            pc,
            op: OpClass::Store,
            dst: None,
            srcs: [Some(self.pick_src()), Some(self.pick_src())],
            mem: Some(mem),
        }
    }

    fn build_ctrl_inst(&mut self, op: OpClass) -> StaticInst {
        let pc = self.alloc_pc();
        let srcs = match op {
            OpClass::CondBranch => [Some(self.pick_src()), Some(self.pick_src())],
            _ => [None, None],
        };
        StaticInst {
            pc,
            op,
            dst: None,
            srcs,
            mem: None,
        }
    }

    fn sample_mem_pattern(&mut self, is_load: bool) -> MemPattern {
        let m = &self.profile.memory;
        let pointer_chase =
            is_load && self.rng.gen_bool(m.pointer_chase_frac.clamp(0.0, 1.0));
        let strided = !pointer_chase && self.rng.gen_bool(m.stride_frac.clamp(0.0, 1.0));
        let stride = 8 << self.rng.gen_range(0..3); // 8, 16, or 32 bytes
        MemPattern {
            strided,
            stride,
            pointer_chase,
        }
    }

    fn alloc_pc(&mut self) -> u64 {
        let pc = self.next_pc;
        self.next_pc += 4;
        pc
    }

    /// Rotates destination registers through r1..r31.
    fn alloc_dst(&mut self) -> ArchReg {
        let r = ArchReg::new(self.next_dst);
        self.next_dst = if self.next_dst >= 31 { 1 } else { self.next_dst + 1 };
        self.recent_dsts.push(r);
        if self.recent_dsts.len() > 64 {
            self.recent_dsts.remove(0);
        }
        if self.block_writes == 0 {
            self.hub = Some(r);
        }
        self.block_writes += 1;
        r
    }

    /// Picks a source register at a geometric dependence distance back,
    /// or the block hub (high-fan-out reuse) per the profile.
    fn pick_src(&mut self) -> ArchReg {
        if let Some(hub) = self.hub {
            if self.block_writes > 0 && self.rng.gen_bool(self.profile.fanout_reuse.clamp(0.0, 1.0))
            {
                return hub;
            }
        }
        if self.recent_dsts.is_empty() {
            return ArchReg::new(self.rng.gen_range(1..32));
        }
        let d = 1 + self.sample_geometric(self.profile.mean_dep_distance - 1.0);
        let idx = self.recent_dsts.len().saturating_sub(d.min(self.recent_dsts.len()));
        self.recent_dsts[idx]
    }

    /// Geometric sample with the given mean (mean 0 ⇒ always 0).
    fn sample_geometric(&mut self, mean: f64) -> usize {
        if mean <= 0.0 {
            return 0;
        }
        let p = 1.0 / (1.0 + mean);
        let mut k = 0;
        while k < 64 && !self.rng.gen_bool(p) {
            k += 1;
        }
        k
    }

    fn sample_bias(&mut self) -> f64 {
        let b = self.profile.branch_bias + self.rng.gen_range(-0.08..0.08);
        b.clamp(0.52, 0.98)
    }

    /// A short repeating pattern whose taken-rate approximates `bias`.
    fn sample_pattern(&mut self, bias: f64) -> Vec<bool> {
        let period = self.rng.gen_range(2..=8usize);
        let takens = ((period as f64) * bias).round() as usize;
        let takens = takens.clamp(1, period);
        let mut pat = vec![false; period];
        for slot in pat.iter_mut().take(takens) {
            *slot = true;
        }
        // Deterministic shuffle so the pattern is not trivially a run.
        for i in (1..period).rev() {
            let j = self.rng.gen_range(0..=i);
            pat.swap(i, j);
        }
        pat
    }

    fn pick_jump_target(&mut self, id: usize, n: usize) -> usize {
        // Call-like: jump uniformly anywhere else. Uniform targets keep the
        // Markov walk mixing over the whole program — a biased choice can
        // create absorbing jump cycles that trap the dynamic stream in a
        // few blocks and destroy the intended instruction mix.
        let t = self.rng.gen_range(0..n);
        if t == id {
            (t + 1) % n
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;

    fn program() -> StaticProgram {
        StaticProgram::generate(&Benchmark::Gcc.profile(), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Benchmark::Astar.profile();
        let a = StaticProgram::generate(&p, 42);
        let b = StaticProgram::generate(&p, 42);
        assert_eq!(a, b);
        let c = StaticProgram::generate(&p, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn pcs_are_unique_and_contiguous() {
        let prog = program();
        let mut expect = TEXT_BASE;
        for block in prog.blocks() {
            for inst in &block.insts {
                assert_eq!(inst.pc, expect);
                expect += 4;
            }
        }
        assert_eq!(
            prog.num_insts(),
            ((expect - TEXT_BASE) / 4) as usize
        );
    }

    #[test]
    fn inst_at_finds_every_pc() {
        let prog = program();
        for block in prog.blocks() {
            for inst in &block.insts {
                assert_eq!(prog.inst_at(inst.pc), Some(inst));
            }
        }
        assert_eq!(prog.inst_at(TEXT_BASE - 4), None);
        let last_pc = TEXT_BASE + 4 * (prog.num_insts() as u64 - 1);
        assert_eq!(prog.inst_at(last_pc + 4), None);
    }

    #[test]
    fn terminator_targets_in_range() {
        let prog = program();
        let n = prog.blocks().len();
        for block in prog.blocks() {
            match &block.terminator {
                Terminator::Fall { next } => assert!(*next < n),
                Terminator::Jump { target } => assert!(*target < n),
                Terminator::Cond {
                    taken,
                    fall,
                    bias,
                    pattern,
                } => {
                    assert!(*taken < n && *fall < n);
                    assert!((0.0..1.0).contains(bias), "bias {bias}");
                    if let Some(p) = pattern {
                        assert!(!p.is_empty() && p.len() <= 16, "pattern length {}", p.len());
                        assert!(p.iter().any(|&t| t), "pattern never taken");
                    }
                }
            }
        }
    }

    #[test]
    fn branch_blocks_end_in_branch_instruction() {
        let prog = program();
        for block in prog.blocks() {
            let last = block.insts.last().unwrap();
            match &block.terminator {
                Terminator::Cond { .. } => assert_eq!(last.op, OpClass::CondBranch),
                Terminator::Jump { .. } => assert_eq!(last.op, OpClass::Jump),
                Terminator::Fall { .. } => assert!(!last.op.is_branch()),
            }
        }
    }

    #[test]
    fn pointer_chase_loads_present_in_mcf() {
        let prog = StaticProgram::generate(&Benchmark::Mcf.profile(), 1);
        let chases = prog
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| i.mem.map(|m| m.pointer_chase).unwrap_or(false))
            .count();
        assert!(chases > 0, "mcf should contain pointer-chase loads");
    }

    #[test]
    fn loads_use_r0_never_as_dst() {
        let prog = program();
        for block in prog.blocks() {
            for inst in &block.insts {
                if let Some(d) = inst.dst {
                    assert!(!d.is_zero());
                }
            }
        }
    }
}
