//! Gate-level netlists for the paper's cross-layer sensitization study.
//!
//! The paper's supplemental section S1 synthesizes four Fabscalar core
//! components with Synopsys Design Compiler (45 nm FreePDK) and measures,
//! with gate-level logic simulation, how similar the *sensitized paths* of
//! repeated dynamic instances of one static instruction are. This crate
//! rebuilds that entire layer from scratch:
//!
//! * [`gate`] / [`netlist`] — a combinational gate-level netlist
//!   representation with structural validation and level (logic-depth)
//!   analysis;
//! * [`builder`] — a structured builder for composing word-level operators
//!   (adders, comparators, muxes, shifters) out of 1/2-input gates;
//! * [`components`] — the four studied components: 32-bit simple ALU,
//!   address-generation unit (AGEN), bypass-network forward-check logic,
//!   and the issue-queue select (arbiter) logic (paper Table 3);
//! * [`sim`] — a topological logic simulator that tracks which gates toggle
//!   between consecutive input vectors (the *sensitized gate set*);
//! * [`toggle`] — the φ/ψ commonality estimator of paper §S1.2;
//! * [`synth`] — a Design-Compiler-style report: gate count, logic depth,
//!   area and power estimates in NAND2-equivalent units (used by Table 2
//!   and Table 3);
//! * [`verilog`] — flat structural Verilog export for cross-validation
//!   with external EDA tools.
//!
//! # Example
//!
//! ```
//! use tv_netlist::components;
//! use tv_netlist::sim::Simulator;
//!
//! let alu = components::alu32();
//! let mut sim = Simulator::new(&alu);
//! let out = sim.apply(&components::alu_inputs(7, 35, components::AluOp::Add));
//! assert_eq!(components::alu_result(&alu, &out), 42);
//! ```

pub mod builder;
pub mod components;
pub mod gate;
pub mod netlist;
pub mod sim;
pub mod synth;
pub mod toggle;
pub mod verilog;

pub use builder::{Builder, Word};
pub use gate::{Gate, GateKind, NetId};
pub use netlist::Netlist;
pub use sim::Simulator;
pub use synth::SynthReport;
pub use toggle::{Commonality, CommonalityAnalyzer};
