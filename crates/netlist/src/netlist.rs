//! Combinational netlist container.

use std::collections::HashMap;

use crate::gate::{Gate, GateKind, NetId};

/// A validated combinational netlist.
///
/// Gates are stored in topological order (fanin always precedes fanout),
/// which the [`Builder`](crate::builder::Builder) enforces by construction.
/// Primary inputs and outputs are named so experiment code can address
/// word-level ports.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    pub(crate) ports: HashMap<String, Vec<NetId>>,
}

impl Netlist {
    /// Human-readable component name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary input nets, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Looks up a named port (input or output word).
    pub fn port(&self, name: &str) -> Option<&[NetId]> {
        self.ports.get(name).map(Vec::as_slice)
    }

    /// Iterates all named ports (unordered).
    pub fn ports_iter(&self) -> impl Iterator<Item = (&String, &Vec<NetId>)> {
        self.ports.iter()
    }

    /// Number of *logic* gates (excluding primary inputs and constants) —
    /// the figure a synthesis report would call the cell count.
    pub fn num_logic_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Input | GateKind::Const(_)))
            .count()
    }

    /// Logic level of every net: inputs/constants are level 0; every other
    /// gate is one more than its deepest fanin.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            let lvl = gate
                .fanin_nets()
                .iter()
                .map(|n| levels[n.index()])
                .max()
                .map(|m| m + 1)
                .unwrap_or(0);
            levels[i] = lvl;
        }
        levels
    }

    /// Logic depth: the maximum level over all outputs.
    pub fn logic_depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|n| levels[n.index()])
            .max()
            .unwrap_or(0)
    }

    /// Total cell area in NAND2-equivalent units.
    pub fn area(&self) -> f64 {
        self.gates.iter().map(|g| g.kind.area()).sum()
    }

    /// Validates structural invariants; the builder always produces valid
    /// netlists, so this is primarily a test/debugging aid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: a fanin that
    /// refers to a later gate (not topological), a port net out of range,
    /// or an output list that is empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.outputs.is_empty() {
            return Err("netlist has no outputs".into());
        }
        for (i, gate) in self.gates.iter().enumerate() {
            for f in gate.fanin_nets() {
                if f.index() >= i {
                    return Err(format!(
                        "gate {i} ({}) has non-topological fanin {f}",
                        gate.kind
                    ));
                }
            }
        }
        for (name, nets) in &self.ports {
            for n in nets {
                if n.index() >= self.gates.len() {
                    return Err(format!("port {name} references out-of-range net {n}"));
                }
            }
        }
        for n in self.inputs.iter().chain(&self.outputs) {
            if n.index() >= self.gates.len() {
                return Err(format!("i/o net {n} out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn depth_and_counts_of_tiny_circuit() {
        let mut b = Builder::new("tiny");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.and(a, c);
        let y = b.not(x);
        b.output("y", &[y]);
        let n = b.finish();
        assert_eq!(n.num_logic_gates(), 2);
        assert_eq!(n.logic_depth(), 2);
        assert!(n.validate().is_ok());
        assert_eq!(n.port("a").unwrap().len(), 1);
        assert_eq!(n.port("y").unwrap(), &[y]);
        assert!(n.area() > 0.0);
        assert_eq!(n.name(), "tiny");
    }

    #[test]
    fn levels_are_monotone_along_fanin() {
        let mut b = Builder::new("chain");
        let a = b.input("a");
        let mut cur = a;
        for _ in 0..10 {
            cur = b.not(cur);
        }
        b.output("o", &[cur]);
        let n = b.finish();
        let levels = n.levels();
        for (i, gate) in n.gates().iter().enumerate() {
            for f in gate.fanin_nets() {
                assert!(levels[f.index()] < levels[i]);
            }
        }
        assert_eq!(n.logic_depth(), 10);
    }

    #[test]
    fn validate_rejects_missing_outputs() {
        let mut b = Builder::new("noout");
        let _ = b.input("a");
        let n = b.finish();
        assert!(n.validate().is_err());
    }
}
