//! Topological logic simulation with toggle tracking.

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// A stateful gate-level simulator.
///
/// The simulator keeps the previous net values between
/// [`apply`](Simulator::apply) calls, so each application reports which
/// gates *toggled* relative to the prior machine state — the sensitized
/// gate set of paper §S1.2 ("the set of gates in a circuit that change
/// state in \[a\] dynamic instance").
#[derive(Debug, Clone)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    values: Vec<bool>,
    toggled: Vec<u32>,
    initialized: bool,
}

impl<'n> Simulator<'n> {
    /// Creates a simulator over `netlist` with all nets at logic 0.
    pub fn new(netlist: &'n Netlist) -> Self {
        Simulator {
            netlist,
            values: vec![false; netlist.gates().len()],
            toggled: Vec::new(),
            initialized: false,
        }
    }

    /// Applies one primary-input vector (in [`Netlist::inputs`] order) and
    /// returns the settled value of every net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn apply(&mut self, inputs: &[bool]) -> &[bool] {
        let netlist = self.netlist;
        assert_eq!(
            inputs.len(),
            netlist.inputs().len(),
            "input vector width mismatch"
        );
        self.toggled.clear();
        let first = !self.initialized;
        self.initialized = true;

        let mut in_iter = inputs.iter();
        for (i, gate) in netlist.gates().iter().enumerate() {
            let new = match gate.kind {
                GateKind::Input => *in_iter.next().expect("one value per input"),
                GateKind::Const(v) => v,
                kind => {
                    let a = self.values[gate.fanin[0].index()];
                    let b = self.values[gate.fanin[1].index()];
                    kind.eval(a, b)
                }
            };
            if new != self.values[i] && !first {
                self.toggled.push(i as u32);
            }
            self.values[i] = new;
        }
        &self.values
    }

    /// Gates (by dense index) that changed state during the most recent
    /// [`apply`](Simulator::apply). Empty for the very first application
    /// (there is no prior state to toggle from).
    pub fn toggled(&self) -> &[u32] {
        &self.toggled
    }

    /// Current value of a named output port, interpreted little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or is wider than 64 bits.
    pub fn port_value(&self, name: &str) -> u64 {
        let port = self
            .netlist
            .port(name)
            .unwrap_or_else(|| panic!("no port named {name}"));
        assert!(port.len() <= 64, "port {name} wider than 64 bits");
        port.iter()
            .enumerate()
            .fold(0u64, |acc, (i, n)| acc | ((self.values[n.index()] as u64) << i))
    }

    /// Builds an input vector from named port assignments.
    ///
    /// Ports not mentioned default to zero.
    ///
    /// # Panics
    ///
    /// Panics if a named port is unknown or is not a primary-input port.
    pub fn input_vector(&self, assignments: &[(&str, u64)]) -> Vec<bool> {
        let netlist = self.netlist;
        let mut vector = vec![false; netlist.inputs().len()];
        for (name, value) in assignments {
            let port = netlist
                .port(name)
                .unwrap_or_else(|| panic!("no port named {name}"));
            for (i, net) in port.iter().enumerate() {
                let pos = netlist
                    .inputs()
                    .iter()
                    .position(|n| n == net)
                    .unwrap_or_else(|| panic!("port {name} is not an input port"));
                vector[pos] = (value >> i) & 1 == 1;
            }
        }
        vector
    }

    /// Total switching energy (femtojoules) of the most recent application:
    /// the sum of per-gate switch energies over toggled gates.
    pub fn switch_energy_fj(&self) -> f64 {
        self.toggled
            .iter()
            .map(|&i| self.netlist.gates()[i as usize].kind.switch_energy_fj())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn xor_circuit() -> crate::netlist::Netlist {
        let mut b = Builder::new("xor");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor(a, c);
        b.output("x", &[x]);
        b.finish()
    }

    #[test]
    fn first_apply_reports_no_toggles() {
        let n = xor_circuit();
        let mut sim = Simulator::new(&n);
        let v = sim.input_vector(&[("a", 1), ("b", 0)]);
        sim.apply(&v);
        assert!(sim.toggled().is_empty());
        assert_eq!(sim.port_value("x"), 1);
    }

    #[test]
    fn toggles_tracked_between_vectors() {
        let n = xor_circuit();
        let mut sim = Simulator::new(&n);
        let v0 = sim.input_vector(&[("a", 0), ("b", 0)]);
        let v1 = sim.input_vector(&[("a", 1), ("b", 0)]);
        sim.apply(&v0);
        sim.apply(&v1);
        // input a and the xor gate toggle
        assert_eq!(sim.toggled().len(), 2);
        assert!(sim.switch_energy_fj() > 0.0);
        // re-applying the same vector toggles nothing
        sim.apply(&v1);
        assert!(sim.toggled().is_empty());
        assert_eq!(sim.switch_energy_fj(), 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let n = xor_circuit();
        let mut sim = Simulator::new(&n);
        sim.apply(&[true]);
    }

    #[test]
    #[should_panic(expected = "no port named")]
    fn unknown_port_panics() {
        let n = xor_circuit();
        let sim = Simulator::new(&n);
        let _ = sim.port_value("zzz");
    }
}
