//! Gate and net primitives.

use std::fmt;

/// Identifier of a net — the output of exactly one gate (or primary input).
///
/// Nets are indexed densely in creation order, which the
/// [`Builder`](crate::builder::Builder) guarantees to be a topological
/// order of the combinational circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Dense index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// Constant 0 or 1 (no fanin).
    Const(bool),
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    And,
    Or,
    Nand,
    Nor,
    Xor,
    Xnor,
}

impl GateKind {
    /// Number of fanin nets this gate kind consumes.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const(_) => 0,
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    /// Evaluates the gate function.
    ///
    /// Unused operand slots are ignored.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateKind::Input => a, // inputs are driven externally
            GateKind::Const(v) => v,
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And => a && b,
            GateKind::Or => a || b,
            GateKind::Nand => !(a && b),
            GateKind::Nor => !(a || b),
            GateKind::Xor => a ^ b,
            GateKind::Xnor => !(a ^ b),
        }
    }

    /// Area of this gate in NAND2-equivalent units (typical standard-cell
    /// ratios for a 45 nm library).
    pub fn area(self) -> f64 {
        match self {
            GateKind::Input | GateKind::Const(_) => 0.0,
            GateKind::Buf => 0.75,
            GateKind::Not => 0.5,
            GateKind::Nand | GateKind::Nor => 1.0,
            GateKind::And | GateKind::Or => 1.25,
            GateKind::Xor | GateKind::Xnor => 2.25,
        }
    }

    /// Nominal propagation delay in picoseconds (45 nm-class, FO4-ish
    /// loading). Used by the statistical timing model as the mean of the
    /// per-gate delay distribution.
    pub fn nominal_delay_ps(self) -> f64 {
        match self {
            GateKind::Input | GateKind::Const(_) => 0.0,
            GateKind::Buf => 14.0,
            GateKind::Not => 10.0,
            GateKind::Nand | GateKind::Nor => 16.0,
            GateKind::And | GateKind::Or => 22.0,
            GateKind::Xor | GateKind::Xnor => 30.0,
        }
    }

    /// Switching energy per output toggle, in femtojoules (relative scale).
    pub fn switch_energy_fj(self) -> f64 {
        match self {
            GateKind::Input | GateKind::Const(_) => 0.0,
            GateKind::Buf => 0.9,
            GateKind::Not => 0.6,
            GateKind::Nand | GateKind::Nor => 1.0,
            GateKind::And | GateKind::Or => 1.3,
            GateKind::Xor | GateKind::Xnor => 2.1,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "input",
            GateKind::Const(false) => "const0",
            GateKind::Const(true) => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
        };
        f.write_str(s)
    }
}

/// One gate instance: a kind plus up to two fanin nets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Fanin nets; slots beyond [`GateKind::arity`] are unused.
    pub fanin: [NetId; 2],
}

impl Gate {
    /// Fanin nets actually used by this gate.
    pub fn fanin_nets(&self) -> &[NetId] {
        &self.fanin[..self.kind.arity()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(GateKind::Input.arity(), 0);
        assert_eq!(GateKind::Const(true).arity(), 0);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::Buf.arity(), 1);
        assert_eq!(GateKind::Nand.arity(), 2);
        assert_eq!(GateKind::Xor.arity(), 2);
    }

    #[test]
    fn truth_tables() {
        use GateKind::*;
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(And.eval(a, b), a && b);
                assert_eq!(Or.eval(a, b), a || b);
                assert_eq!(Nand.eval(a, b), !(a && b));
                assert_eq!(Nor.eval(a, b), !(a || b));
                assert_eq!(Xor.eval(a, b), a ^ b);
                assert_eq!(Xnor.eval(a, b), !(a ^ b));
            }
            assert_eq!(Not.eval(a, false), !a);
            assert_eq!(Buf.eval(a, true), a);
            assert_eq!(Const(true).eval(a, a), true);
            assert_eq!(Const(false).eval(a, a), false);
        }
    }

    #[test]
    fn physical_parameters_are_positive_for_logic() {
        for k in [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            assert!(k.area() > 0.0);
            assert!(k.nominal_delay_ps() > 0.0);
            assert!(k.switch_energy_fj() > 0.0);
        }
        assert_eq!(GateKind::Input.area(), 0.0);
    }

    #[test]
    fn fanin_nets_respects_arity() {
        let g = Gate {
            kind: GateKind::Not,
            fanin: [NetId(3), NetId(0)],
        };
        assert_eq!(g.fanin_nets(), &[NetId(3)]);
        assert_eq!(format!("{}", NetId(3)), "n3");
        assert_eq!(GateKind::Nand.to_string(), "nand");
    }
}
