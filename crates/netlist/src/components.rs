//! The four synthesized processor components of the paper's §S1 study.
//!
//! | Module (paper Table 3) | builder | paper gates / depth |
//! |---|---|---|
//! | Issue Queue Select | [`issue_select32`] | 189 / 33 |
//! | 32-bit Simple ALU  | [`alu32`]          | 4728 / 46 |
//! | AGEN               | [`agen32`]         | 491 / 43 |
//! | Forward Check      | [`forward_check`]  | 428 / 15 |
//!
//! The builders produce genuine combinational gate networks whose sensitized
//! paths depend on operand values, which is all the commonality study needs;
//! absolute gate counts land in the same ballpark as the paper's Synopsys
//! results and are reported honestly by `tv-bench --bin table3`.

use crate::builder::{Builder, Word};
use crate::netlist::Netlist;

/// ALU operation select encoding for [`alu32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add = 0,
    Sub = 1,
    And = 2,
    Or = 3,
    Xor = 4,
    /// Set-less-than (unsigned): `result = (a < b) as u32`.
    Sltu = 5,
    /// Shift left logical by `b[4:0]`.
    Sll = 6,
    /// Shift right logical by `b[4:0]`.
    Srl = 7,
}

/// Builds the 32-bit simple ALU.
///
/// Ports: inputs `a[32]`, `b[32]`, `op[3]`; outputs `result[32]`, `zero[1]`.
///
/// Internally: a carry-select adder shared by add/sub/sltu, a bitwise logic
/// unit, left/right barrel shifters, and a balanced result-select mux tree —
/// the high-logic-depth structure the paper picks the ALU for.
pub fn alu32() -> Netlist {
    let mut b = Builder::new("alu32");
    let a = b.input_word("a", 32);
    let bb = b.input_word("b", 32);
    let op = b.input_word("op", 3);

    // op decoding
    let op0 = op.bit(0);
    let op1 = op.bit(1);
    let op2 = op.bit(2);
    let n_op1 = b.not(op1);
    let n_op2 = b.not(op2);
    let is_sub = {
        // Sub (001) or Sltu (101): op1 = 0, op0 = 1
        let t = b.and(op0, n_op1);
        b.buf(t)
    };

    // adder path: a + (b ^ subtract) + subtract
    let sub_word = Word {
        bits: (0..32).map(|_| is_sub).collect(),
    };
    let b_eff = b.xor_word(&bb, &sub_word);
    let (sum, carry_out) = b.carry_select_adder(&a, &b_eff, is_sub, 4);

    // logic unit
    let and_w = b.and_word(&a, &bb);
    let or_w = b.or_word(&a, &bb);
    let xor_w = b.xor_word(&a, &bb);

    // sltu: for a - b, unsigned borrow = !carry_out
    let borrow = b.not(carry_out);
    let zero32 = b.constant_word(0, 31);
    let slt_w = Word {
        bits: std::iter::once(borrow).chain(zero32.bits).collect(),
    };

    // shifters (amount = b[4:0])
    let amount = Word {
        bits: bb.bits[0..5].to_vec(),
    };
    let sll_w = b.barrel_shift(&a, &amount, true);
    let srl_w = b.barrel_shift(&a, &amount, false);

    // result select: 3-level mux tree on op bits
    // op2 = 0: {add, sub, and, or}; op2 = 1: {xor, sltu, sll, srl}
    let add_or_sub = sum; // identical datapath result
    let and_or = b.mux_word(op0, &and_w, &or_w);
    let lo = b.mux_word(op1, &add_or_sub, &and_or);
    let xor_slt = b.mux_word(op0, &xor_w, &slt_w);
    let sll_srl = b.mux_word(op0, &sll_w, &srl_w);
    let hi = b.mux_word(op1, &xor_slt, &sll_srl);
    let result = b.mux_word(op2, &lo, &hi);

    // zero flag
    let not_bits: Vec<_> = result.bits.iter().map(|&n| n).collect();
    let any = b.or_tree(&not_bits);
    let zero = b.not(any);

    // keep decode nets alive in the report
    let _ = (n_op2,);

    b.output_word("result", &result);
    b.output("zero", &[zero]);
    b.finish()
}

/// Input vector for [`alu32`] (ports are declared `a`, `b`, `op` in order).
pub fn alu_inputs(a: u32, b: u32, op: AluOp) -> Vec<bool> {
    let mut v = Vec::with_capacity(67);
    v.extend((0..32).map(|i| (a >> i) & 1 == 1));
    v.extend((0..32).map(|i| (b >> i) & 1 == 1));
    let code = op as u32;
    v.extend((0..3).map(|i| (code >> i) & 1 == 1));
    v
}

/// Reads the `result` port of [`alu32`] from a settled value slice.
pub fn alu_result(netlist: &Netlist, values: &[bool]) -> u32 {
    read_port(netlist, values, "result") as u32
}

/// Builds the address-generation unit: `addr = base + sign_extend(offset)`,
/// with a misalignment detector for 2/4/8-byte accesses.
///
/// Ports: inputs `base[32]`, `offset[16]`, `size[2]`; outputs `addr[32]`,
/// `misaligned[1]`.
pub fn agen32() -> Netlist {
    let mut b = Builder::new("agen32");
    let base = b.input_word("base", 32);
    let offset = b.input_word("offset", 16);
    let size = b.input_word("size", 2);

    // sign extension: replicate offset[15]
    let sign = offset.bit(15);
    let ext = Word {
        bits: offset
            .bits
            .iter()
            .copied()
            .chain(std::iter::repeat(sign).take(16))
            .collect(),
    };
    let zero = b.constant(false);
    // Narrow carry-select blocks give the mid-depth structure (paper: 43).
    let (addr, _c) = b.carry_select_adder(&base, &ext, zero, 2);

    // misalignment: size 01 => addr[0] != 0; 10 => addr[1:0] != 0; 11 => addr[2:0] != 0
    let s0 = size.bit(0);
    let s1 = size.bit(1);
    let a0 = addr.bit(0);
    let a1 = addr.bit(1);
    let a2 = addr.bit(2);
    let half_mis = b.and(s0, a0);
    let lo2 = b.or(a0, a1);
    let word_mis = b.and(s1, lo2);
    let lo3 = b.or(lo2, a2);
    let both = b.and(s0, s1);
    let dword_mis = b.and(both, lo3);
    let m1 = b.or(half_mis, word_mis);
    let misaligned = b.or(m1, dword_mis);

    b.output_word("addr", &addr);
    b.output("misaligned", &[misaligned]);
    b.finish()
}

/// Input vector for [`agen32`] (ports `base`, `offset`, `size` in order).
pub fn agen_inputs(base: u32, offset: u16, size: u8) -> Vec<bool> {
    let mut v = Vec::with_capacity(50);
    v.extend((0..32).map(|i| (base >> i) & 1 == 1));
    v.extend((0..16).map(|i| (offset >> i) & 1 == 1));
    v.extend((0..2).map(|i| (size >> i) & 1 == 1));
    v
}

/// Number of consumers (issue width) in [`forward_check`].
pub const FWD_CONSUMERS: usize = 4;
/// Number of producing functional units in [`forward_check`].
pub const FWD_PRODUCERS: usize = 4;
/// Physical-register tag width in [`forward_check`] (96 regs ⇒ 7 bits).
pub const FWD_TAG_BITS: usize = 7;

/// Builds the bypass-network forward-check logic.
///
/// For each of [`FWD_CONSUMERS`] consumers × 2 source operands, the logic
/// compares the source tag against each of [`FWD_PRODUCERS`] producer result
/// tags (qualified by a valid bit) and emits a one-hot bypass-select per
/// operand plus a `bypass` enable — "controls the latches in the bypass
/// network to ensure correct execution of back-to-back dependent
/// instructions" (paper §S1.2.2).
///
/// Ports: inputs `ptag{p}[7]`, `pvalid[4]`, `ctag{c}_{s}[7]`; outputs
/// `sel{c}_{s}[4]` (one-hot producer match) and `byp{c}_{s}[1]`.
pub fn forward_check() -> Netlist {
    let mut b = Builder::new("forward_check");

    let ptags: Vec<Word> = (0..FWD_PRODUCERS)
        .map(|p| b.input_word(&format!("ptag{p}"), FWD_TAG_BITS))
        .collect();
    let pvalid = b.input_word("pvalid", FWD_PRODUCERS);

    let mut ctags = Vec::new();
    for c in 0..FWD_CONSUMERS {
        for s in 0..2 {
            ctags.push((c, s, b.input_word(&format!("ctag{c}_{s}"), FWD_TAG_BITS)));
        }
    }

    for (c, s, ctag) in &ctags {
        let mut matches = Vec::with_capacity(FWD_PRODUCERS);
        for p in 0..FWD_PRODUCERS {
            let eq = b.equals(ctag, &ptags[p]);
            let qualified = b.and(eq, pvalid.bit(p));
            matches.push(qualified);
        }
        // Priority: lowest-index producer wins if multiple match (a tag can
        // legally match at most one live producer; priority keeps the
        // circuit well-defined regardless).
        let mut priority = Vec::with_capacity(FWD_PRODUCERS);
        let mut blocked = None;
        for (p, &m) in matches.iter().enumerate() {
            let grant = match blocked {
                None => b.buf(m),
                Some(blk) => {
                    let nb = b.not(blk);
                    b.and(m, nb)
                }
            };
            priority.push(grant);
            blocked = Some(match blocked {
                None => m,
                Some(blk) => b.or(blk, m),
            });
            let _ = p;
        }
        let byp = b.or_tree(&matches);
        b.output(&format!("sel{c}_{s}"), &priority);
        b.output(&format!("byp{c}_{s}"), &[byp]);
    }
    b.finish()
}

/// Number of issue-queue entries in [`issue_select32`].
pub const SELECT_ENTRIES: usize = 32;

/// Builds the issue-queue select logic: a 32-entry tree arbiter granting
/// the lowest-index requesting entry ("given a request vector from the
/// existing instructions in the issue queue, ... sets the request grant
/// line for the selected instructions", paper §S1.2.2).
///
/// Ports: input `req[32]`; outputs `grant[32]` (one-hot or all-zero) and
/// `any[1]`.
pub fn issue_select32() -> Netlist {
    let mut b = Builder::new("issue_select32");
    let req = b.input_word("req", SELECT_ENTRIES);

    // Bottom-up "any" tree.
    #[derive(Clone, Copy)]
    struct Node {
        any: crate::gate::NetId,
        lo: usize,
        hi: usize, // leaf range [lo, hi)
        left: Option<usize>,
        right: Option<usize>,
    }
    let mut nodes: Vec<Node> = Vec::new();
    // leaves
    let mut layer: Vec<usize> = (0..SELECT_ENTRIES)
        .map(|i| {
            nodes.push(Node {
                any: req.bit(i),
                lo: i,
                hi: i + 1,
                left: None,
                right: None,
            });
            nodes.len() - 1
        })
        .collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let (l, r) = (pair[0], pair[1]);
                let any = b.or(nodes[l].any, nodes[r].any);
                nodes.push(Node {
                    any,
                    lo: nodes[l].lo,
                    hi: nodes[r].hi,
                    left: Some(l),
                    right: Some(r),
                });
                next.push(nodes.len() - 1);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let root = layer[0];
    let any_req = b.buf(nodes[root].any);

    // Top-down grant propagation: left subtree has priority.
    let mut grant_in = vec![None; nodes.len()];
    grant_in[root] = Some(any_req);
    let mut grants = vec![None; SELECT_ENTRIES];
    // nodes were created bottom-up, so iterate in reverse creation order to
    // visit parents before children.
    for idx in (0..nodes.len()).rev() {
        let Some(g) = grant_in[idx] else { continue };
        let node = nodes[idx];
        match (node.left, node.right) {
            (Some(l), Some(r)) => {
                let gl = b.and(g, nodes[l].any);
                let nl = b.not(nodes[l].any);
                let pr = b.and(g, nl);
                let gr = b.and(pr, nodes[r].any);
                grant_in[l] = Some(gl);
                grant_in[r] = Some(gr);
            }
            _ => {
                grants[node.lo] = Some(g);
            }
        }
    }
    let grant_bits: Vec<_> = grants
        .into_iter()
        .map(|g| g.expect("every leaf receives a grant line"))
        .collect();

    b.output("grant", &grant_bits);
    b.output("any", &[any_req]);
    b.finish()
}

/// Input vector for [`issue_select32`].
pub fn select_inputs(req: u32) -> Vec<bool> {
    (0..SELECT_ENTRIES).map(|i| (req >> i) & 1 == 1).collect()
}

/// Number of reservation-station entries monitored by [`cdl32`].
pub const CDL_ENTRIES: usize = 32;

/// Builds the Criticality Detection Logic (paper §3.5.2, Figure 3): a
/// population counter over the 32 reservation-station tag-match lines plus
/// a comparator against the Criticality Threshold.
///
/// Ports: inputs `matches[32]`, `ct[6]`; outputs `count[6]`, `critical[1]`
/// (`count >= ct`).
pub fn cdl32() -> Netlist {
    let mut b = Builder::new("cdl32");
    let matches = b.input_word("matches", CDL_ENTRIES);
    let ct = b.input_word("ct", 6);

    // Population count: binary adder tree over single-bit words.
    let mut layer: Vec<Word> = matches
        .bits
        .iter()
        .map(|&bit| Word { bits: vec![bit] })
        .collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let zero = b.constant(false);
                let mut a = pair[0].clone();
                let mut c = pair[1].clone();
                // zero-extend to equal width + 1 for the carry
                let w = a.width().max(c.width()) + 1;
                while a.width() < w {
                    a.bits.push(zero);
                }
                while c.width() < w {
                    c.bits.push(zero);
                }
                let (sum, _) = b.adder(&a, &c, zero);
                next.push(sum);
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
    }
    let mut count = layer.pop().expect("non-empty tree");
    let zero = b.constant(false);
    while count.width() < 6 {
        count.bits.push(zero);
    }
    count.bits.truncate(6);

    // count >= ct  ⇔  count - ct does not borrow  ⇔  carry-out of
    // count + !ct + 1 is 1.
    let not_ct = b.not_word(&ct);
    let one = b.constant(true);
    let (_, carry) = b.adder(&count, &not_ct, one);
    let critical = b.buf(carry);

    b.output_word("count", &count);
    b.output("critical", &[critical]);
    b.finish()
}

/// Input vector for [`cdl32`] (ports `matches`, `ct` in order).
pub fn cdl_inputs(matches: u32, ct: u8) -> Vec<bool> {
    let mut v = Vec::with_capacity(38);
    v.extend((0..32).map(|i| (matches >> i) & 1 == 1));
    v.extend((0..6).map(|i| (ct >> i) & 1 == 1));
    v
}

/// Reads a named ≤64-bit output port from a settled value slice.
pub fn read_port(netlist: &Netlist, values: &[bool], name: &str) -> u64 {
    let port = netlist
        .port(name)
        .unwrap_or_else(|| panic!("no port named {name}"));
    port.iter()
        .enumerate()
        .fold(0u64, |acc, (i, n)| acc | ((values[n.index()] as u64) << i))
}

/// All four study components, in Figure 7 order.
pub fn study_components() -> Vec<Netlist> {
    vec![issue_select32(), agen32(), forward_check(), alu32()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn alu_add_sub() {
        let alu = alu32();
        assert!(alu.validate().is_ok());
        let mut sim = Simulator::new(&alu);
        let v = sim.apply(&alu_inputs(7, 35, AluOp::Add)).to_vec();
        assert_eq!(alu_result(&alu, &v), 42);
        let v = sim.apply(&alu_inputs(100, 58, AluOp::Sub)).to_vec();
        assert_eq!(alu_result(&alu, &v), 42);
        let v = sim.apply(&alu_inputs(5, 5, AluOp::Sub)).to_vec();
        assert_eq!(alu_result(&alu, &v), 0);
        assert_eq!(read_port(&alu, &v, "zero"), 1);
    }

    #[test]
    fn alu_logic_ops() {
        let alu = alu32();
        let mut sim = Simulator::new(&alu);
        let a = 0xdead_beefu32;
        let b = 0x0f0f_0f0fu32;
        for (op, want) in [
            (AluOp::And, a & b),
            (AluOp::Or, a | b),
            (AluOp::Xor, a ^ b),
        ] {
            let v = sim.apply(&alu_inputs(a, b, op)).to_vec();
            assert_eq!(alu_result(&alu, &v), want, "{op:?}");
        }
    }

    #[test]
    fn alu_sltu_and_shifts() {
        let alu = alu32();
        let mut sim = Simulator::new(&alu);
        let v = sim.apply(&alu_inputs(3, 9, AluOp::Sltu)).to_vec();
        assert_eq!(alu_result(&alu, &v), 1);
        let v = sim.apply(&alu_inputs(9, 3, AluOp::Sltu)).to_vec();
        assert_eq!(alu_result(&alu, &v), 0);
        let v = sim.apply(&alu_inputs(1, 12, AluOp::Sll)).to_vec();
        assert_eq!(alu_result(&alu, &v), 1 << 12);
        let v = sim.apply(&alu_inputs(0x8000_0000, 31, AluOp::Srl)).to_vec();
        assert_eq!(alu_result(&alu, &v), 1);
    }

    #[test]
    fn alu_wraps_on_overflow() {
        let alu = alu32();
        let mut sim = Simulator::new(&alu);
        let v = sim
            .apply(&alu_inputs(u32::MAX, 1, AluOp::Add))
            .to_vec();
        assert_eq!(alu_result(&alu, &v), 0);
    }

    #[test]
    fn agen_adds_signed_offset() {
        let agen = agen32();
        assert!(agen.validate().is_ok());
        let mut sim = Simulator::new(&agen);
        let v = sim.apply(&agen_inputs(0x1000, 0x10, 0)).to_vec();
        assert_eq!(read_port(&agen, &v, "addr"), 0x1010);
        // negative offset
        let v = sim.apply(&agen_inputs(0x1000, (-16i16) as u16, 0)).to_vec();
        assert_eq!(read_port(&agen, &v, "addr"), 0x0ff0);
    }

    #[test]
    fn agen_detects_misalignment() {
        let agen = agen32();
        let mut sim = Simulator::new(&agen);
        // size=01 (half): odd address misaligned
        let v = sim.apply(&agen_inputs(0x1001, 0, 1)).to_vec();
        assert_eq!(read_port(&agen, &v, "misaligned"), 1);
        let v = sim.apply(&agen_inputs(0x1002, 0, 1)).to_vec();
        assert_eq!(read_port(&agen, &v, "misaligned"), 0);
        // size=10 (word): addr % 4 != 0 misaligned
        let v = sim.apply(&agen_inputs(0x1002, 0, 2)).to_vec();
        assert_eq!(read_port(&agen, &v, "misaligned"), 1);
        // size=11 (dword): addr % 8 != 0 misaligned
        let v = sim.apply(&agen_inputs(0x1004, 0, 3)).to_vec();
        assert_eq!(read_port(&agen, &v, "misaligned"), 1);
        let v = sim.apply(&agen_inputs(0x1008, 0, 3)).to_vec();
        assert_eq!(read_port(&agen, &v, "misaligned"), 0);
    }

    #[test]
    fn forward_check_matches_tags() {
        let fc = forward_check();
        assert!(fc.validate().is_ok());
        let mut sim = Simulator::new(&fc);
        // producer 2 broadcasts tag 0x55; consumer 1 src 0 waits on 0x55
        let v = sim.input_vector(&[
            ("ptag0", 0x01),
            ("ptag1", 0x02),
            ("ptag2", 0x55),
            ("ptag3", 0x03),
            ("pvalid", 0b0100),
            ("ctag1_0", 0x55),
            ("ctag0_0", 0x7f),
        ]);
        sim.apply(&v);
        assert_eq!(sim.port_value("byp1_0"), 1);
        assert_eq!(sim.port_value("sel1_0"), 0b0100);
        assert_eq!(sim.port_value("byp0_0"), 0);
    }

    #[test]
    fn forward_check_requires_valid() {
        let fc = forward_check();
        let mut sim = Simulator::new(&fc);
        let v = sim.input_vector(&[("ptag0", 0x11), ("ctag0_0", 0x11), ("pvalid", 0)]);
        sim.apply(&v);
        assert_eq!(sim.port_value("byp0_0"), 0);
    }

    #[test]
    fn forward_check_priority_is_one_hot() {
        let fc = forward_check();
        let mut sim = Simulator::new(&fc);
        // two producers broadcast the same tag; lowest index wins
        let v = sim.input_vector(&[
            ("ptag1", 0x22),
            ("ptag3", 0x22),
            ("pvalid", 0b1010),
            ("ctag2_1", 0x22),
        ]);
        sim.apply(&v);
        assert_eq!(sim.port_value("sel2_1"), 0b0010);
    }

    #[test]
    fn issue_select_grants_lowest_requester() {
        let sel = issue_select32();
        assert!(sel.validate().is_ok());
        let mut sim = Simulator::new(&sel);
        for req in [0u32, 1, 0x8000_0000, 0xffff_ffff, 0b1010_0000, 0x0001_0010] {
            let values = sim.apply(&select_inputs(req)).to_vec();
            let grant = read_port(&sel, &values, "grant") as u32;
            let any = read_port(&sel, &values, "any");
            if req == 0 {
                assert_eq!(grant, 0);
                assert_eq!(any, 0);
            } else {
                assert_eq!(grant, 1 << req.trailing_zeros(), "req={req:#x}");
                assert_eq!(any, 1);
                assert_eq!(grant.count_ones(), 1);
                assert_ne!(grant & req, 0);
            }
        }
    }

    #[test]
    fn component_sizes_are_in_ballpark() {
        let sel = issue_select32();
        let alu = alu32();
        let agen = agen32();
        let fc = forward_check();
        // Paper Table 3: 189 / 4728 / 491 / 428 gates. Require same order
        // of magnitude and correct ordering.
        assert!(sel.num_logic_gates() >= 90 && sel.num_logic_gates() <= 400);
        assert!(alu.num_logic_gates() >= 2000 && alu.num_logic_gates() <= 9000);
        assert!(agen.num_logic_gates() >= 250 && agen.num_logic_gates() <= 1000);
        assert!(fc.num_logic_gates() >= 200 && fc.num_logic_gates() <= 900);
        assert!(alu.num_logic_gates() > agen.num_logic_gates());
        assert!(agen.num_logic_gates() > sel.num_logic_gates());
        // Depth ordering: ALU deepest, forward check shallowest.
        assert!(alu.logic_depth() > fc.logic_depth());
        assert!(agen.logic_depth() > fc.logic_depth());
    }

    #[test]
    fn study_components_has_four_in_order() {
        let v = study_components();
        let names: Vec<_> = v.iter().map(|n| n.name().to_string()).collect();
        assert_eq!(
            names,
            ["issue_select32", "agen32", "forward_check", "alu32"]
        );
    }
}

#[cfg(test)]
mod cdl_tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn cdl_counts_and_compares() {
        let cdl = cdl32();
        assert!(cdl.validate().is_ok());
        let mut sim = Simulator::new(&cdl);
        for (matches, ct, want_count, want_crit) in [
            (0u32, 8u8, 0u64, 0u64),
            (0xff, 8, 8, 1),
            (0x7f, 8, 7, 0),
            (u32::MAX, 8, 32, 1),
            (0b1010_1010, 4, 4, 1),
            (0b1010_1010, 5, 4, 0),
            (1 << 31, 1, 1, 1),
        ] {
            let v = sim.apply(&cdl_inputs(matches, ct)).to_vec();
            assert_eq!(read_port(&cdl, &v, "count"), want_count, "matches={matches:#x}");
            assert_eq!(read_port(&cdl, &v, "critical"), want_crit, "matches={matches:#x} ct={ct}");
        }
    }

    #[test]
    fn cdl_is_small_relative_to_alu() {
        // Table 2's story: CDS's extra logic is a modest add-on.
        let cdl = cdl32();
        let alu = alu32();
        assert!(cdl.num_logic_gates() * 4 < alu.num_logic_gates());
    }
}
