//! Structural Verilog export.
//!
//! The paper's flow synthesizes RTL with Design Compiler and simulates the
//! gate-level result with NC-Verilog (§S1.2). The equivalent hand-off in
//! this reproduction is the reverse direction: any [`Netlist`] can be
//! emitted as a flat structural Verilog module (primitive gate
//! instantiations only), so the circuits studied here can be fed to
//! external EDA tools — a commercial STA engine, an equivalence checker,
//! or a real synthesis flow — for cross-validation.

use std::fmt::Write as _;

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Renders `netlist` as a flat structural Verilog module.
///
/// Primary input/output ports keep their registered port names (vectors
/// become `input [N-1:0] name`); internal nets are named `n<index>`.
/// Gates map to Verilog primitives (`and`, `or`, `nand`, `nor`, `xor`,
/// `xnor`, `not`, `buf`); constants become `assign` statements.
///
/// # Example
///
/// ```
/// use tv_netlist::{components, verilog};
///
/// let v = verilog::to_verilog(&components::issue_select32());
/// assert!(v.starts_with("module issue_select32"));
/// assert!(v.contains("endmodule"));
/// ```
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let n = netlist.gates().len();

    // Map each net to its Verilog expression name.
    let mut names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    let mut input_ports: Vec<(String, usize)> = Vec::new();
    let mut output_ports: Vec<(String, usize)> = Vec::new();
    let input_set: std::collections::HashSet<usize> =
        netlist.inputs().iter().map(|x| x.index()).collect();
    let mut ports: Vec<(&String, &Vec<crate::gate::NetId>)> = netlist.ports_iter().collect();
    ports.sort_by_key(|(name, _)| name.to_string());
    for (name, nets) in ports {
        let is_input = nets.iter().all(|x| input_set.contains(&x.index()));
        if is_input {
            input_ports.push((name.clone(), nets.len()));
            for (bit, net) in nets.iter().enumerate() {
                names[net.index()] = if nets.len() == 1 {
                    name.clone()
                } else {
                    format!("{name}[{bit}]")
                };
            }
        } else {
            output_ports.push((name.clone(), nets.len()));
        }
    }

    // Header.
    let mut port_list: Vec<String> = input_ports.iter().map(|(p, _)| p.clone()).collect();
    port_list.extend(output_ports.iter().map(|(p, _)| p.clone()));
    let _ = writeln!(out, "module {} ({});", sanitize(netlist.name()), port_list.join(", "));
    for (p, w) in &input_ports {
        if *w == 1 {
            let _ = writeln!(out, "  input {p};");
        } else {
            let _ = writeln!(out, "  input [{}:0] {p};", w - 1);
        }
    }
    for (p, w) in &output_ports {
        if *w == 1 {
            let _ = writeln!(out, "  output {p};");
        } else {
            let _ = writeln!(out, "  output [{}:0] {p};", w - 1);
        }
    }

    // Internal wires (everything that is not a named input bit).
    let _ = writeln!(out);
    for (i, gate) in netlist.gates().iter().enumerate() {
        if gate.kind != GateKind::Input {
            let _ = writeln!(out, "  wire n{i};");
        }
    }

    // Gate instantiations.
    let _ = writeln!(out);
    for (i, gate) in netlist.gates().iter().enumerate() {
        let a = gate
            .fanin_nets()
            .first()
            .map(|x| names[x.index()].clone())
            .unwrap_or_default();
        let b = gate
            .fanin_nets()
            .get(1)
            .map(|x| names[x.index()].clone())
            .unwrap_or_default();
        match gate.kind {
            GateKind::Input => {}
            GateKind::Const(v) => {
                let _ = writeln!(out, "  assign n{i} = 1'b{};", u8::from(v));
            }
            GateKind::Buf => {
                let _ = writeln!(out, "  buf g{i} (n{i}, {a});");
            }
            GateKind::Not => {
                let _ = writeln!(out, "  not g{i} (n{i}, {a});");
            }
            kind => {
                let prim = match kind {
                    GateKind::And => "and",
                    GateKind::Or => "or",
                    GateKind::Nand => "nand",
                    GateKind::Nor => "nor",
                    GateKind::Xor => "xor",
                    GateKind::Xnor => "xnor",
                    _ => unreachable!("remaining kinds handled above"),
                };
                let _ = writeln!(out, "  {prim} g{i} (n{i}, {a}, {b});");
            }
        }
    }

    // Output port assignments.
    let _ = writeln!(out);
    let mut out_ports: Vec<(&String, &Vec<crate::gate::NetId>)> = netlist
        .ports_iter()
        .filter(|(name, _)| output_ports.iter().any(|(p, _)| p == *name))
        .collect();
    out_ports.sort_by_key(|(name, _)| name.to_string());
    for (name, nets) in out_ports {
        for (bit, net) in nets.iter().enumerate() {
            let lhs = if nets.len() == 1 {
                name.clone()
            } else {
                format!("{name}[{bit}]")
            };
            let _ = writeln!(out, "  assign {lhs} = {};", names[net.index()]);
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::components;

    #[test]
    fn emits_well_formed_module() {
        let mut b = Builder::new("tiny");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.xor(a, c);
        let k = b.constant(true);
        let y = b.and(x, k);
        b.output("y", &[y]);
        let v = to_verilog(&b.finish());
        assert!(v.starts_with("module tiny ("));
        assert!(v.contains("input a;"));
        assert!(v.contains("input c;"));
        assert!(v.contains("output y;"));
        assert!(v.contains("xor"));
        assert!(v.contains("assign") && v.contains("1'b1"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn vector_ports_are_ranged() {
        let mut b = Builder::new("vec");
        let w = b.input_word("data", 8);
        let r = b.or_tree(&w.bits.clone());
        b.output("any", &[r]);
        let v = to_verilog(&b.finish());
        assert!(v.contains("input [7:0] data;"));
        assert!(v.contains("data[7]"));
    }

    #[test]
    fn all_study_components_export() {
        for netlist in components::study_components() {
            let v = to_verilog(&netlist);
            // one instantiation or assign per logic gate
            let instantiations = v
                .lines()
                .filter(|l| {
                    let t = l.trim_start();
                    ["and ", "or ", "nand ", "nor ", "xor ", "xnor ", "not ", "buf "]
                        .iter()
                        .any(|p| t.starts_with(p))
                })
                .count();
            let consts = netlist
                .gates()
                .iter()
                .filter(|g| matches!(g.kind, crate::gate::GateKind::Const(_)))
                .count();
            assert_eq!(
                instantiations + consts,
                netlist.num_logic_gates() + consts,
                "{}",
                netlist.name()
            );
            assert!(v.contains("endmodule"));
        }
    }

    #[test]
    fn module_names_are_sanitized() {
        let mut b = Builder::new("weird name-1");
        let a = b.input("a");
        let x = b.buf(a);
        b.output("x", &[x]);
        let v = to_verilog(&b.finish());
        assert!(v.starts_with("module weird_name_1 ("));
    }
}
