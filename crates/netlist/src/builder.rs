//! Structured netlist construction.
//!
//! [`Builder`] composes word-level operators — adders, comparators, muxes,
//! shifters, reduction trees — out of 1/2-input gates, guaranteeing
//! topological gate order by construction. [`Word`] is a little-endian
//! bit-vector of nets (`bits[0]` is the LSB).

use std::collections::HashMap;

use crate::gate::{Gate, GateKind, NetId};
use crate::netlist::Netlist;

/// A word-level signal: little-endian vector of nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    /// Bit nets, LSB first.
    pub bits: Vec<NetId>,
}

impl Word {
    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The `i`-th bit (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn bit(&self, i: usize) -> NetId {
        self.bits[i]
    }
}

/// Incremental netlist builder.
///
/// # Example
///
/// ```
/// use tv_netlist::Builder;
///
/// let mut b = Builder::new("adder4");
/// let a = b.input_word("a", 4);
/// let y = b.input_word("b", 4);
/// let zero = b.constant(false);
/// let (sum, _carry) = b.adder(&a, &y, zero);
/// b.output_word("sum", &sum);
/// let netlist = b.finish();
/// assert_eq!(netlist.port("sum").unwrap().len(), 4);
/// ```
#[derive(Debug)]
pub struct Builder {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    ports: HashMap<String, Vec<NetId>>,
}

impl Builder {
    /// Starts a new netlist with the given component name.
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            ports: HashMap::new(),
        }
    }

    fn push(&mut self, kind: GateKind, a: NetId, b: NetId) -> NetId {
        let id = NetId(self.gates.len() as u32);
        debug_assert!(a.index() < id.index() || kind.arity() == 0);
        debug_assert!(b.index() < id.index() || kind.arity() < 2);
        self.gates.push(Gate { kind, fanin: [a, b] });
        id
    }

    /// Declares a single-bit primary input, registered as port `name`.
    pub fn input(&mut self, name: &str) -> NetId {
        let w = self.input_word(name, 1);
        w.bits[0]
    }

    /// Declares a `width`-bit primary input word, registered as port `name`.
    pub fn input_word(&mut self, name: &str, width: usize) -> Word {
        let bits: Vec<NetId> = (0..width)
            .map(|_| {
                let id = NetId(self.gates.len() as u32);
                self.gates.push(Gate {
                    kind: GateKind::Input,
                    fanin: [id, id],
                });
                self.inputs.push(id);
                id
            })
            .collect();
        self.ports.insert(name.to_string(), bits.clone());
        Word { bits }
    }

    /// A constant net.
    pub fn constant(&mut self, value: bool) -> NetId {
        let id = NetId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind: GateKind::Const(value),
            fanin: [id, id],
        });
        id
    }

    /// A constant word (little-endian bits of `value`).
    pub fn constant_word(&mut self, value: u64, width: usize) -> Word {
        let bits = (0..width)
            .map(|i| self.constant((value >> i) & 1 == 1))
            .collect();
        Word { bits }
    }

    /// Registers `bits` as output port `name`.
    pub fn output(&mut self, name: &str, bits: &[NetId]) {
        self.outputs.extend_from_slice(bits);
        self.ports.insert(name.to_string(), bits.to_vec());
    }

    /// Registers a word as an output port.
    pub fn output_word(&mut self, name: &str, word: &Word) {
        self.output(name, &word.bits);
    }

    // --- bit-level operators ------------------------------------------------

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Not, a, a)
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Buf, a, a)
    }

    /// 2-input AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::And, a, b)
    }

    /// 2-input OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Or, a, b)
    }

    /// 2-input NAND.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nand, a, b)
    }

    /// 2-input NOR.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nor, a, b)
    }

    /// 2-input XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xor, a, b)
    }

    /// 2-input XNOR.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xnor, a, b)
    }

    /// 2:1 mux: `sel ? b : a`.
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        let ns = self.not(sel);
        let pa = self.and(ns, a);
        let pb = self.and(sel, b);
        self.or(pa, pb)
    }

    /// AND over a slice of nets (balanced tree).
    pub fn and_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, GateKind::And)
    }

    /// OR over a slice of nets (balanced tree).
    pub fn or_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, GateKind::Or)
    }

    fn reduce_tree(&mut self, nets: &[NetId], kind: GateKind) -> NetId {
        assert!(!nets.is_empty(), "reduction over empty set");
        let mut layer: Vec<NetId> = nets.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.push(kind, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    // --- word-level operators -----------------------------------------------

    /// Bitwise unary/binary word helpers.
    pub fn not_word(&mut self, a: &Word) -> Word {
        Word {
            bits: a.bits.iter().map(|&x| self.not(x)).collect(),
        }
    }

    /// Bitwise AND of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if widths differ (likewise for the other bitwise word ops).
    pub fn and_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_word(a, b, GateKind::And)
    }

    /// Bitwise OR.
    pub fn or_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_word(a, b, GateKind::Or)
    }

    /// Bitwise XOR.
    pub fn xor_word(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_word(a, b, GateKind::Xor)
    }

    fn zip_word(&mut self, a: &Word, b: &Word, kind: GateKind) -> Word {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        Word {
            bits: a
                .bits
                .iter()
                .zip(&b.bits)
                .map(|(&x, &y)| self.push(kind, x, y))
                .collect(),
        }
    }

    /// Word-level 2:1 mux: `sel ? b : a`, bitwise.
    pub fn mux_word(&mut self, sel: NetId, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        Word {
            bits: a
                .bits
                .iter()
                .zip(&b.bits)
                .map(|(&x, &y)| self.mux(sel, x, y))
                .collect(),
        }
    }

    /// Ripple-carry adder built from full adders: returns `(sum, carry_out)`.
    ///
    /// A full adder is 2 XOR + 2 AND + 1 OR, so an n-bit adder contributes
    /// 5n gates at logic depth ≈ 2n — the structure Design Compiler infers
    /// at loose timing constraints.
    pub fn adder(&mut self, a: &Word, b: &Word, carry_in: NetId) -> (Word, NetId) {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        let mut carry = carry_in;
        let mut sum = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let axb = self.xor(a.bits[i], b.bits[i]);
            let s = self.xor(axb, carry);
            let c1 = self.and(a.bits[i], b.bits[i]);
            let c2 = self.and(axb, carry);
            carry = self.or(c1, c2);
            sum.push(s);
        }
        (Word { bits: sum }, carry)
    }

    /// Carry-select adder: ripple blocks of `block` bits computed for both
    /// carry polarities, with a mux choosing per block. Shallower than a
    /// pure ripple adder at ~2.5× the area — the structure Design Compiler
    /// infers under a tight timing constraint.
    pub fn carry_select_adder(
        &mut self,
        a: &Word,
        b: &Word,
        carry_in: NetId,
        block: usize,
    ) -> (Word, NetId) {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        assert!(block > 0, "block size must be positive");
        let mut carry = carry_in;
        let mut sum = Vec::with_capacity(a.width());
        let mut i = 0;
        while i < a.width() {
            let hi = (i + block).min(a.width());
            let sub_a = Word {
                bits: a.bits[i..hi].to_vec(),
            };
            let sub_b = Word {
                bits: b.bits[i..hi].to_vec(),
            };
            let zero = self.constant(false);
            let one = self.constant(true);
            let (s0, c0) = self.adder(&sub_a, &sub_b, zero);
            let (s1, c1) = self.adder(&sub_a, &sub_b, one);
            let chosen = self.mux_word(carry, &s0, &s1);
            sum.extend(chosen.bits);
            carry = self.mux(carry, c0, c1);
            i = hi;
        }
        (Word { bits: sum }, carry)
    }

    /// Equality comparator: 1 iff `a == b`.
    pub fn equals(&mut self, a: &Word, b: &Word) -> NetId {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        let eq_bits: Vec<NetId> = a
            .bits
            .iter()
            .zip(&b.bits)
            .map(|(&x, &y)| self.xnor(x, y))
            .collect();
        self.and_tree(&eq_bits)
    }

    /// Logical barrel shifter (left when `left = true`), shift amount given
    /// by `amount` (low `log2(width)` bits used). Built from mux layers.
    pub fn barrel_shift(&mut self, a: &Word, amount: &Word, left: bool) -> Word {
        let width = a.width();
        let stages = usize::BITS as usize - (width - 1).leading_zeros() as usize;
        let zero = self.constant(false);
        let mut cur = a.clone();
        for s in 0..stages.min(amount.width()) {
            let shift = 1usize << s;
            let shifted_bits: Vec<NetId> = (0..width)
                .map(|i| {
                    let src = if left {
                        i.checked_sub(shift)
                    } else {
                        (i + shift < width).then_some(i + shift)
                    };
                    src.map(|j| cur.bits[j]).unwrap_or(zero)
                })
                .collect();
            let shifted = Word { bits: shifted_bits };
            cur = self.mux_word(amount.bits[s], &cur, &shifted);
        }
        cur
    }

    /// Finalizes the netlist.
    pub fn finish(self) -> Netlist {
        Netlist {
            name: self.name,
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
            ports: self.ports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    /// Builds a netlist, applies `inputs` (port name → value), and returns
    /// the value of the named output port.
    fn eval(netlist: &Netlist, inputs: &[(&str, u64)], out: &str) -> u64 {
        let mut sim = Simulator::new(netlist);
        let mut vector = vec![false; netlist.inputs().len()];
        for (name, value) in inputs {
            let port = netlist.port(name).expect("input port");
            for (i, net) in port.iter().enumerate() {
                let pos = netlist
                    .inputs()
                    .iter()
                    .position(|n| n == net)
                    .expect("net is an input");
                vector[pos] = (value >> i) & 1 == 1;
            }
        }
        let values = sim.apply(&vector);
        let port = netlist.port(out).expect("output port");
        port.iter()
            .enumerate()
            .fold(0u64, |acc, (i, net)| acc | ((values[net.index()] as u64) << i))
    }

    #[test]
    fn ripple_adder_adds() {
        let mut b = Builder::new("add8");
        let a = b.input_word("a", 8);
        let y = b.input_word("b", 8);
        let cin = b.constant(false);
        let (sum, cout) = b.adder(&a, &y, cin);
        b.output_word("sum", &sum);
        b.output("cout", &[cout]);
        let n = b.finish();
        for (x, y2) in [(0u64, 0u64), (1, 1), (100, 55), (200, 56), (255, 255)] {
            assert_eq!(eval(&n, &[("a", x), ("b", y2)], "sum"), (x + y2) & 0xff);
            assert_eq!(eval(&n, &[("a", x), ("b", y2)], "cout"), (x + y2) >> 8);
        }
    }

    #[test]
    fn carry_select_adder_matches_ripple() {
        let mut b = Builder::new("csa16");
        let a = b.input_word("a", 16);
        let y = b.input_word("b", 16);
        let cin = b.constant(false);
        let (sum, cout) = b.carry_select_adder(&a, &y, cin, 4);
        b.output_word("sum", &sum);
        b.output("cout", &[cout]);
        let n = b.finish();
        for (x, y2) in [(0u64, 0), (0xffff, 1), (0x1234, 0x4321), (40000, 30000)] {
            assert_eq!(eval(&n, &[("a", x), ("b", y2)], "sum"), (x + y2) & 0xffff);
            assert_eq!(eval(&n, &[("a", x), ("b", y2)], "cout"), (x + y2) >> 16);
        }
    }

    #[test]
    fn equals_compares() {
        let mut b = Builder::new("eq7");
        let a = b.input_word("a", 7);
        let y = b.input_word("b", 7);
        let eq = b.equals(&a, &y);
        b.output("eq", &[eq]);
        let n = b.finish();
        assert_eq!(eval(&n, &[("a", 93), ("b", 93)], "eq"), 1);
        assert_eq!(eval(&n, &[("a", 93), ("b", 92)], "eq"), 0);
    }

    #[test]
    fn barrel_shifter_shifts() {
        let mut b = Builder::new("shl16");
        let a = b.input_word("a", 16);
        let amt = b.input_word("amt", 4);
        let out = b.barrel_shift(&a, &amt, true);
        b.output_word("out", &out);
        let n = b.finish();
        for (x, s) in [(1u64, 0u64), (1, 5), (0xabcd, 4), (0xffff, 15)] {
            assert_eq!(
                eval(&n, &[("a", x), ("amt", s)], "out"),
                (x << s) & 0xffff,
                "x={x:#x} s={s}"
            );
        }
    }

    #[test]
    fn right_shift_works() {
        let mut b = Builder::new("shr8");
        let a = b.input_word("a", 8);
        let amt = b.input_word("amt", 3);
        let out = b.barrel_shift(&a, &amt, false);
        b.output_word("out", &out);
        let n = b.finish();
        for (x, s) in [(0x80u64, 7u64), (0xff, 3), (0xa5, 1)] {
            assert_eq!(eval(&n, &[("a", x), ("amt", s)], "out"), x >> s);
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = Builder::new("mux");
        let s = b.input("s");
        let a = b.input("a");
        let c = b.input("c");
        let m = b.mux(s, a, c);
        b.output("m", &[m]);
        let n = b.finish();
        assert_eq!(eval(&n, &[("s", 0), ("a", 1), ("c", 0)], "m"), 1);
        assert_eq!(eval(&n, &[("s", 1), ("a", 1), ("c", 0)], "m"), 0);
    }

    #[test]
    fn trees_reduce() {
        let mut b = Builder::new("tree");
        let w = b.input_word("w", 9);
        let all = b.and_tree(&w.bits.clone());
        let any = b.or_tree(&w.bits.clone());
        b.output("all", &[all]);
        b.output("any", &[any]);
        let n = b.finish();
        assert_eq!(eval(&n, &[("w", 0x1ff)], "all"), 1);
        assert_eq!(eval(&n, &[("w", 0x1fe)], "all"), 0);
        assert_eq!(eval(&n, &[("w", 0)], "any"), 0);
        assert_eq!(eval(&n, &[("w", 0x010)], "any"), 1);
    }

    #[test]
    fn constant_word_encodes_value() {
        let mut b = Builder::new("k");
        let k = b.constant_word(0b1010, 4);
        b.output_word("k", &k);
        let n = b.finish();
        assert_eq!(eval(&n, &[], "k"), 0b1010);
    }
}
