//! Synthesis-style reporting: cell counts, logic depth, area, and power.
//!
//! The paper synthesizes its components with Synopsys Design Compiler on a
//! 45 nm FreePDK library and reports gate counts and logic depth (Table 3)
//! plus area/power overheads (Table 2). [`SynthReport`] produces the
//! equivalent figures for our hand-built netlists: cell count, logic depth,
//! NAND2-equivalent area, worst-case (sum of levels) nominal path delay,
//! and dynamic/leakage power estimates under a given toggle activity.

use std::collections::BTreeMap;

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Leakage power per NAND2-equivalent area unit, in nanowatts (45 nm-class
/// constant; absolute scale is arbitrary but consistent across components).
const LEAKAGE_NW_PER_AREA: f64 = 2.4;

/// A synthesis report for one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthReport {
    /// Component name.
    pub name: String,
    /// Logic cell count (inputs and constants excluded).
    pub num_gates: usize,
    /// Logic depth in gate levels.
    pub logic_depth: u32,
    /// Total area in NAND2-equivalent units.
    pub area: f64,
    /// Nominal critical-path delay in picoseconds (sum of nominal gate
    /// delays along the deepest path).
    pub critical_path_ps: f64,
    /// Dynamic power in microwatts at the given activity and clock,
    /// `P = α · Σ E_switch · f`.
    pub dynamic_power_uw: f64,
    /// Leakage power in microwatts (proportional to area).
    pub leakage_power_uw: f64,
    /// Cell histogram by gate kind.
    pub cells: BTreeMap<String, usize>,
}

impl SynthReport {
    /// Characterizes `netlist` assuming `activity` (average fraction of
    /// gates toggling per cycle) and a clock of `freq_ghz` GHz.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]` or `freq_ghz` is not
    /// positive.
    pub fn characterize(netlist: &Netlist, activity: f64, freq_ghz: f64) -> Self {
        assert!((0.0..=1.0).contains(&activity), "activity out of range");
        assert!(freq_ghz > 0.0, "frequency must be positive");

        let mut cells: BTreeMap<String, usize> = BTreeMap::new();
        let mut total_switch_fj = 0.0;
        for gate in netlist.gates() {
            if matches!(gate.kind, GateKind::Input | GateKind::Const(_)) {
                continue;
            }
            *cells.entry(gate.kind.to_string()).or_default() += 1;
            total_switch_fj += gate.kind.switch_energy_fj();
        }

        let critical_path_ps = critical_path_ps(netlist);
        let area = netlist.area();
        // fJ * GHz = µW; activity scales the fraction of switched capacitance.
        let dynamic_power_uw = activity * total_switch_fj * freq_ghz / 1000.0 * 1000.0;
        let leakage_power_uw = area * LEAKAGE_NW_PER_AREA / 1000.0;

        SynthReport {
            name: netlist.name().to_string(),
            num_gates: netlist.num_logic_gates(),
            logic_depth: netlist.logic_depth(),
            area,
            critical_path_ps,
            dynamic_power_uw,
            leakage_power_uw,
            cells,
        }
    }
}

/// Nominal critical-path delay: longest accumulated nominal gate delay from
/// any input to any output.
pub fn critical_path_ps(netlist: &Netlist) -> f64 {
    let mut arrival = vec![0.0f64; netlist.gates().len()];
    for (i, gate) in netlist.gates().iter().enumerate() {
        let input_arrival = gate
            .fanin_nets()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0, f64::max);
        arrival[i] = input_arrival + gate.kind.nominal_delay_ps();
    }
    netlist
        .outputs()
        .iter()
        .map(|n| arrival[n.index()])
        .fold(0.0, f64::max)
}

impl std::fmt::Display for SynthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} gates, depth {}, area {:.1} NAND2-eq, Tcrit {:.0} ps",
            self.name, self.num_gates, self.logic_depth, self.area, self.critical_path_ps
        )?;
        write!(
            f,
            "  P_dyn {:.2} µW, P_leak {:.3} µW",
            self.dynamic_power_uw, self.leakage_power_uw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;

    #[test]
    fn report_for_alu_is_consistent() {
        let alu = components::alu32();
        let r = SynthReport::characterize(&alu, 0.15, 2.0);
        assert_eq!(r.name, "alu32");
        assert_eq!(r.num_gates, alu.num_logic_gates());
        assert_eq!(r.logic_depth, alu.logic_depth());
        assert!(r.area > 0.0);
        assert!(r.critical_path_ps > 0.0);
        assert!(r.dynamic_power_uw > 0.0);
        assert!(r.leakage_power_uw > 0.0);
        let histogram_total: usize = r.cells.values().sum();
        assert_eq!(histogram_total, r.num_gates);
        assert!(r.to_string().contains("alu32"));
    }

    #[test]
    fn critical_path_scales_with_depth() {
        let sel = components::issue_select32();
        let alu = components::alu32();
        assert!(critical_path_ps(&alu) > critical_path_ps(&sel));
    }

    #[test]
    fn zero_activity_means_zero_dynamic_power() {
        let fc = components::forward_check();
        let r = SynthReport::characterize(&fc, 0.0, 2.0);
        assert_eq!(r.dynamic_power_uw, 0.0);
        assert!(r.leakage_power_uw > 0.0);
    }

    #[test]
    #[should_panic(expected = "activity out of range")]
    fn bad_activity_panics() {
        let fc = components::forward_check();
        let _ = SynthReport::characterize(&fc, 1.5, 2.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn bad_freq_panics() {
        let fc = components::forward_check();
        let _ = SynthReport::characterize(&fc, 0.1, 0.0);
    }
}
