//! Sensitized-path commonality estimation (paper §S1.2).
//!
//! For a static instruction PC, let φ be the set of gates that change state
//! in *every* dynamic instance and ψ the set of gates that change state in
//! *at least one* instance. The commonality of the PC is |φ| / |ψ|; the
//! component-level figure (paper Figure 7) is the frequency-weighted average
//! over all PCs that exercised the component.

use std::collections::HashMap;

/// Per-PC toggle-set accumulator.
#[derive(Debug, Clone)]
struct PcSets {
    /// Instance count.
    count: u64,
    /// φ: bitset of gates toggled in every instance so far.
    phi: Vec<u64>,
    /// ψ: bitset of gates toggled in any instance so far.
    psi: Vec<u64>,
}

/// Commonality result for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct Commonality {
    /// Frequency-weighted average of per-PC |φ|/|ψ|.
    pub weighted_average: f64,
    /// Number of distinct PCs observed (with ≥ 2 instances).
    pub num_pcs: usize,
    /// Total dynamic instances accumulated.
    pub instances: u64,
}

/// Accumulates per-PC sensitized gate sets and computes the φ/ψ commonality.
///
/// # Example
///
/// ```
/// use tv_netlist::CommonalityAnalyzer;
///
/// let mut an = CommonalityAnalyzer::new(128);
/// an.record(0x1000, &[1, 2, 3]);
/// an.record(0x1000, &[2, 3, 4]);
/// let c = an.finish();
/// // φ = {2, 3}, ψ = {1, 2, 3, 4} ⇒ 0.5
/// assert!((c.weighted_average - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CommonalityAnalyzer {
    num_gates: usize,
    words: usize,
    sets: HashMap<u64, PcSets>,
}

impl CommonalityAnalyzer {
    /// Creates an analyzer for a circuit with `num_gates` gates.
    pub fn new(num_gates: usize) -> Self {
        CommonalityAnalyzer {
            num_gates,
            words: num_gates.div_ceil(64),
            sets: HashMap::new(),
        }
    }

    /// Records one dynamic instance of `pc` whose application toggled the
    /// given gate indices.
    ///
    /// # Panics
    ///
    /// Panics if a gate index is out of range.
    pub fn record(&mut self, pc: u64, toggled: &[u32]) {
        let mut bits = vec![0u64; self.words];
        for &g in toggled {
            let g = g as usize;
            assert!(g < self.num_gates, "gate index {g} out of range");
            bits[g / 64] |= 1 << (g % 64);
        }
        match self.sets.get_mut(&pc) {
            None => {
                self.sets.insert(
                    pc,
                    PcSets {
                        count: 1,
                        phi: bits.clone(),
                        psi: bits,
                    },
                );
            }
            Some(s) => {
                s.count += 1;
                for (p, b) in s.phi.iter_mut().zip(&bits) {
                    *p &= b;
                }
                for (p, b) in s.psi.iter_mut().zip(&bits) {
                    *p |= b;
                }
            }
        }
    }

    /// Per-PC commonality `(pc, count, |φ|/|ψ|)` for PCs with at least two
    /// recorded instances and a non-empty ψ.
    pub fn per_pc(&self) -> Vec<(u64, u64, f64)> {
        let mut v: Vec<(u64, u64, f64)> = self
            .sets
            .iter()
            .filter(|(_, s)| s.count >= 2)
            .filter_map(|(&pc, s)| {
                let phi: u32 = s.phi.iter().map(|w| w.count_ones()).sum();
                let psi: u32 = s.psi.iter().map(|w| w.count_ones()).sum();
                (psi > 0).then(|| (pc, s.count, phi as f64 / psi as f64))
            })
            .collect();
        v.sort_by_key(|&(pc, _, _)| pc);
        v
    }

    /// Computes the frequency-weighted commonality over all recorded PCs.
    ///
    /// PCs with fewer than two instances contribute nothing (a single
    /// instance has φ = ψ trivially, which would inflate the result).
    pub fn finish(&self) -> Commonality {
        let per_pc = self.per_pc();
        let total_weight: u64 = per_pc.iter().map(|&(_, c, _)| c).sum();
        let weighted_average = if total_weight == 0 {
            0.0
        } else {
            per_pc
                .iter()
                .map(|&(_, c, r)| c as f64 * r)
                .sum::<f64>()
                / total_weight as f64
        };
        Commonality {
            weighted_average,
            num_pcs: per_pc.len(),
            instances: self.sets.values().map(|s| s.count).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_instances_give_full_commonality() {
        let mut an = CommonalityAnalyzer::new(64);
        for _ in 0..10 {
            an.record(0x10, &[5, 9, 31]);
        }
        let c = an.finish();
        assert_eq!(c.num_pcs, 1);
        assert_eq!(c.instances, 10);
        assert!((c.weighted_average - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_instances_give_zero_commonality() {
        let mut an = CommonalityAnalyzer::new(64);
        an.record(0x10, &[1, 2]);
        an.record(0x10, &[3, 4]);
        let c = an.finish();
        assert_eq!(c.weighted_average, 0.0);
    }

    #[test]
    fn phi_is_subset_of_psi() {
        let mut an = CommonalityAnalyzer::new(256);
        an.record(7, &[10, 20, 30]);
        an.record(7, &[20, 30, 40]);
        an.record(7, &[30, 20, 99]);
        for (_, _, r) in an.per_pc() {
            assert!((0.0..=1.0).contains(&r));
        }
        // φ = {20, 30}, ψ = {10, 20, 30, 40, 99} ⇒ 0.4
        let c = an.finish();
        assert!((c.weighted_average - 0.4).abs() < 1e-12);
    }

    #[test]
    fn weighting_respects_frequency() {
        let mut an = CommonalityAnalyzer::new(64);
        // hot PC: perfect commonality, 8 instances
        for _ in 0..8 {
            an.record(1, &[3]);
        }
        // cold PC: zero commonality, 2 instances
        an.record(2, &[4]);
        an.record(2, &[5]);
        let c = an.finish();
        assert!((c.weighted_average - 0.8).abs() < 1e-12);
    }

    #[test]
    fn single_instance_pcs_are_excluded() {
        let mut an = CommonalityAnalyzer::new(64);
        an.record(1, &[2]);
        let c = an.finish();
        assert_eq!(c.num_pcs, 0);
        assert_eq!(c.instances, 1);
        assert_eq!(c.weighted_average, 0.0);
    }

    #[test]
    fn cross_word_gate_indices() {
        let mut an = CommonalityAnalyzer::new(200);
        an.record(1, &[0, 63, 64, 199]);
        an.record(1, &[0, 63, 64, 199]);
        let c = an.finish();
        assert!((c.weighted_average - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gate_panics() {
        let mut an = CommonalityAnalyzer::new(8);
        an.record(1, &[8]);
    }
}
