//! Process-level determinism contracts of the multi-process sharded
//! fleet, driven through the real `campaign` binary:
//!
//! 1. **Worker-count independence** — the campaign CSV is byte-identical
//!    across `--procs {1, 2, 4}` and the in-process run.
//! 2. **Kill tolerance** — a worker process SIGKILL'd mid-campaign (the
//!    `TV_CLUSTER_KILL` hook delivers a real `SIGKILL` with a job in
//!    flight) is detected, its work reassigned, and the final CSV stays
//!    byte-identical — with spare workers *and* when the dead worker was
//!    the only one (respawn path).
//! 3. **Resume interop** — a journal torn mid-run (what `kill -9` of the
//!    *coordinator* leaves behind) resumes under `--procs` to the same
//!    bytes, so thread-mode and process-mode journals are interchangeable.

#![cfg(unix)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Small enough for debug-profile CI, large enough that four workers all
/// get jobs: 3 synthetic + 1 RISC-V tuples = 4 jobs of 7 cells each.
const CAMPAIGN_ARGS: &[&str] = &[
    "--smoke", "--tuples", "3", "--riscv", "1", "--seed", "911", "--commits", "1000",
    "--warmup", "300",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tv-cluster-it-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs the campaign binary into `out`, returning its output; panics on
/// a non-zero exit so failures show the captured stderr.
fn run_campaign(out: &Path, extra: &[&str], kill: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args(CAMPAIGN_ARGS)
        .args(["--out", out.to_str().expect("utf-8 path")])
        .args(extra)
        .env_remove("TV_CLUSTER_KILL");
    if let Some(spec) = kill {
        cmd.env("TV_CLUSTER_KILL", spec);
    }
    let output = cmd.output().expect("spawn campaign");
    assert!(
        output.status.success(),
        "campaign {extra:?} kill={kill:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr),
    );
    output
}

fn csv(out: &Path) -> String {
    fs::read_to_string(out.join("campaign.csv")).expect("campaign.csv")
}

#[test]
fn csv_is_byte_identical_across_proc_counts_and_mid_run_worker_sigkills() {
    // In-process reference.
    let ref_dir = temp_dir("ref");
    run_campaign(&ref_dir, &["--workers", "2"], None);
    let reference = csv(&ref_dir);

    // Worker-count sweep: 1, 2 and 4 processes.
    for procs in ["1", "2", "4"] {
        let dir = temp_dir(&format!("procs{procs}"));
        run_campaign(&dir, &["--procs", procs], None);
        assert_eq!(
            csv(&dir),
            reference,
            "--procs {procs} must be byte-identical to the in-process run"
        );
        fs::remove_dir_all(&dir).ok();
    }

    // A real mid-run SIGKILL with spare capacity: worker 0 of 2 dies the
    // moment its first job is in flight; worker 1 absorbs the orphans.
    let kill_dir = temp_dir("kill-spare");
    let output = run_campaign(&kill_dir, &["--procs", "2"], Some("0@0"));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("worker 0 died"),
        "the kill hook must have fired:\n{stderr}"
    );
    assert_eq!(
        csv(&kill_dir),
        reference,
        "a worker SIGKILL must not change a byte of the CSV"
    );
    fs::remove_dir_all(&kill_dir).ok();

    // The sole worker dies after finishing one job: recovery can only
    // come from the respawn path.
    let solo_dir = temp_dir("kill-solo");
    let output = run_campaign(&solo_dir, &["--procs", "1"], Some("0@1"));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("respawned worker"),
        "losing the only worker must trigger a respawn:\n{stderr}"
    );
    assert_eq!(
        csv(&solo_dir),
        reference,
        "the respawned fleet must finish to identical bytes"
    );
    fs::remove_dir_all(&solo_dir).ok();
    fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn chaos_env_hook_survives_the_cluster_profile_to_identical_bytes() {
    // Fault-free reference.
    let ref_dir = temp_dir("chaos-ref");
    run_campaign(&ref_dir, &["--workers", "2"], None);
    let reference = csv(&ref_dir);

    // The same campaign under TV_CHAOS process-fabric injection: the
    // schedule is deterministic, and any run an injected fault kills is
    // resumed (exactly the operational recipe) until one completes.
    let dir = temp_dir("chaos-run");
    let mut banner_seen = false;
    let mut completed = false;
    for attempt in 0..10 {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
        cmd.args(CAMPAIGN_ARGS)
            .args(["--out", dir.to_str().expect("utf-8 path"), "--procs", "2"])
            .env_remove("TV_CLUSTER_KILL")
            .env("TV_CHAOS", "5:cluster");
        if attempt > 0 {
            cmd.arg("--resume");
        }
        let output = cmd.output().expect("spawn campaign");
        let stdout = String::from_utf8_lossy(&output.stdout);
        banner_seen |= stdout.contains("chaos: profile `cluster` seed 5 active");
        if output.status.success() {
            completed = true;
            break;
        }
    }
    assert!(banner_seen, "the campaign must announce the active chaos plan");
    assert!(completed, "no chaos run survived in 10 resume attempts");
    assert_eq!(
        csv(&dir),
        reference,
        "TV_CHAOS=5:cluster must not change a byte of the CSV"
    );
    fs::remove_dir_all(&dir).ok();
    fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn torn_journal_resumes_under_procs_to_identical_bytes() {
    // Uninterrupted reference (also supplies the journal to tear).
    let ref_dir = temp_dir("resume-ref");
    run_campaign(&ref_dir, &["--workers", "2"], None);
    let reference = csv(&ref_dir);

    // Model a coordinator kill -9: keep the meta line + three completed
    // rows + half of a fourth, no trailing newline.
    let journal = fs::read_to_string(ref_dir.join("campaign.journal")).expect("journal");
    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() > 4, "need rows to tear");
    let mut torn = lines[..4].join("\n");
    torn.push('\n');
    torn.push_str(&lines[4][..lines[4].len() / 2]);

    let resume_dir = temp_dir("resume");
    fs::write(resume_dir.join("campaign.journal"), &torn).expect("seed torn journal");
    run_campaign(&resume_dir, &["--procs", "2", "--resume"], None);
    assert_eq!(
        csv(&resume_dir),
        reference,
        "a torn thread-mode journal must resume on the process fleet to identical bytes"
    );

    fs::remove_dir_all(&resume_dir).ok();
    fs::remove_dir_all(&ref_dir).ok();
}
