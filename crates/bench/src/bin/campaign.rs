//! Adversarial fault-injection campaign with golden-model oracle verdicts.
//!
//! Sweeps randomized stress tuples (fault bursts, correlated multi-stage
//! faults, sensor flapping, forced TEP false-positives/negatives) across
//! every scheme plus the broken `NoTolerance` control, each cell running
//! crash-isolated under the architectural oracle. Verdict rows land in
//! `campaign.csv`; every finished cell is also journalled immediately to
//! `campaign.journal`, so a killed campaign re-run with `--resume`
//! produces a bit-identical CSV while only executing the missing cells.
//!
//! ```text
//! campaign [--tuples N] [--riscv N] [--seed N] [--commits N] [--warmup N]
//!          [--watchdog N] [--no-control] [--smoke] [--resume] [--cosim]
//!          [--out DIR] [--workers N] [--procs N]
//! campaign --worker
//! ```
//!
//! `--procs N` runs the sweep on the multi-process sharded fleet: this
//! process becomes the coordinator, spawning N copies of itself in
//! `--worker` mode and sharding tuples across them with work stealing.
//! A `kill -9`'d worker is detected, its jobs reassigned, and the CSV is
//! byte-identical to the in-process run at any process count.
//! `--worker` is the protocol-speaking worker mode (spawned by the
//! coordinator, not for interactive use).
//!
//! `--cosim` runs each tuple's schemes as one co-simulation bundle
//! (shared frontend, one fault-calibration probe) instead of per-cell
//! jobs. Rows are bit-identical to per-cell mode, and journals are
//! interchangeable between the modes on `--resume`.
//!
//! `--riscv N` appends N tuples running the built-in RISC-V compute
//! programs (matmul, quicksort, checksum) through the same scenario and
//! scheme sweep (default: 4; 2 under `--smoke`).
//!
//! Exit status is non-zero when any real scheme fails its oracle check,
//! any cell panics, or (with the control enabled) the oracle fails to
//! catch the control corrupting state.

use std::path::PathBuf;
use std::process::ExitCode;

use tv_bench::harness::Cli;
use tv_core::{run_campaign, run_campaign_cluster, CampaignConfig, ClusterConfig, Fleet};

struct Args {
    config: CampaignConfig,
    out: PathBuf,
    workers: Option<usize>,
    procs: Option<usize>,
    resume: bool,
}

fn parse_args() -> Args {
    let mut config = CampaignConfig::full();
    let mut out = PathBuf::from("bench_results");
    let mut workers = None;
    let mut procs = None;
    let mut resume = false;
    let mut cli = Cli::new(
        "campaign",
        "campaign [--tuples N] [--riscv N] [--seed N] [--commits N] [--warmup N] \
         [--watchdog N] [--no-control] [--smoke] [--resume] [--cosim] [--out DIR] \
         [--workers N] [--procs N] | campaign --worker",
    );
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--tuples" => config.tuples = cli.parse("--tuples"),
            "--riscv" => config.riscv_tuples = cli.parse("--riscv"),
            "--seed" => config.campaign_seed = cli.parse("--seed"),
            "--commits" => config.commits = cli.parse("--commits"),
            "--warmup" => config.warmup = cli.parse("--warmup"),
            "--watchdog" => config.watchdog_cycles = cli.parse("--watchdog"),
            "--no-control" => config.include_control = false,
            "--smoke" => {
                config = CampaignConfig {
                    include_control: config.include_control,
                    cosim: config.cosim,
                    ..CampaignConfig::smoke()
                };
            }
            "--resume" => resume = true,
            "--cosim" => config.cosim = true,
            "--out" => out = PathBuf::from(cli.value("--out")),
            "--workers" => workers = Some(cli.parse("--workers")),
            "--procs" => procs = Some(cli.parse("--procs")),
            other => cli.unknown(other),
        }
    }
    Args {
        config,
        out,
        workers,
        procs,
        resume,
    }
}

fn main() -> ExitCode {
    // Arm chaos injection first (TV_CHAOS=<seed>:<profile>): both the
    // coordinator and its workers honour it, workers with per-slot
    // derived schedules.
    let chaos = match tv_core::chaos::install_from_env() {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("campaign: {e}");
            return ExitCode::from(2);
        }
    };
    // Worker mode speaks the cluster protocol on stdin/stdout and must
    // be dispatched before anything can print to stdout.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        return tv_core::campaign_worker();
    }
    if let Some(plan) = &chaos {
        println!(
            "chaos: profile `{}` seed {} active (deterministic fault injection)",
            plan.profile().name,
            plan.seed(),
        );
    }
    let args = parse_args();
    let cfg = &args.config;
    let schemes = cfg.schemes();
    println!(
        "Fault-injection campaign — {} tuples (+{} RISC-V) x {} schemes \
         ({} commits + {} warmup per cell, seed {})",
        cfg.tuples,
        cfg.riscv_tuples,
        schemes.len(),
        cfg.commits,
        cfg.warmup,
        cfg.campaign_seed,
    );

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let journal = args.out.join("campaign.journal");
    let csv = args.out.join("campaign.csv");

    let run = match args.procs {
        Some(procs) => {
            println!("process fleet: {procs} workers");
            run_campaign_cluster(&ClusterConfig::new(procs), cfg, &journal, args.resume, |_, _| {})
        }
        None => {
            let fleet = match args.workers {
                Some(n) => Fleet::new(n),
                None => Fleet::auto(),
            }
            .with_progress(true);
            run_campaign(&fleet, cfg, &journal, args.resume)
        }
    };
    let report = match run {
        Ok(report) => report,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Atomic publish: readers (verify's `cmp`, the result store) must
    // never observe a torn campaign.csv.
    tv_core::write_atomic_str(&csv, &report.csv()).expect("write campaign.csv");
    println!("wrote {}", csv.display());

    let (clean, corrupt, watchdog, panicked) = report.verdict_counts();
    println!(
        "verdicts: {clean} clean, {corrupt} corrupt, {watchdog} watchdog, {panicked} panic \
         ({} reused from journal, {} executed)",
        report.reused, report.executed,
    );
    if report.quarantined > 0 {
        println!(
            "journal: {} corrupt row(s) quarantined and re-executed",
            report.quarantined,
        );
    }
    println!("fleet: {}", report.fleet.summary());

    let mut ok = true;
    let failures = report.failures();
    if !failures.is_empty() {
        ok = false;
        eprintln!("FAIL: {} real-scheme cells are not oracle-clean:", failures.len());
        for row in failures.iter().take(10) {
            eprintln!("  {row}");
        }
    }
    if report.panicked > 0 {
        ok = false;
        eprintln!("FAIL: {} cells panicked", report.panicked);
    }
    if cfg.include_control {
        let catches = report.control_catches();
        if catches == 0 {
            ok = false;
            eprintln!("FAIL: the oracle caught the NoTolerance control on 0 tuples");
        } else {
            println!("oracle teeth: control caught corrupting state on {catches} tuples");
        }
    }
    if ok {
        println!("campaign PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
