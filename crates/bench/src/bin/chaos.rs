//! Chaos acceptance bench: the campaign must survive every built-in
//! fault profile with a byte-identical CSV.
//!
//! ```text
//! chaos [--seed N]       chaos schedule seed          (default 42)
//!       [--out DIR]      output root                  (default bench_results)
//!       [--procs N]      cluster workers for process-fault profiles
//!                                                     (default 2)
//!       [--profiles A,B] comma-separated profile list (default
//!                        journal,cluster,light,heavy)
//!       [--attempts N]   resume-retry bound per leg   (default 30)
//! chaos --worker
//! ```
//!
//! The bin first runs a fault-free reference campaign (the CI smoke
//! configuration) and keeps its CSV as ground truth. Then, for each
//! requested profile in escalating order, it:
//!
//! 1. installs a deterministic [`ChaosPlan`](tv_core::chaos::ChaosPlan)
//!    and runs the same campaign from scratch — on the multi-process
//!    cluster when the profile injects worker faults, in-process
//!    otherwise — retrying with `--resume` semantics (bounded by
//!    `--attempts`) whenever an injected fault kills the run;
//! 2. damages the finished journal at rest
//!    ([`corrupt_file`](tv_core::chaos::corrupt_file): one seeded
//!    bit-flip or truncation, on top of whatever torn/flipped appends
//!    the chaos writer already left) and resumes once more — the
//!    self-healing path must quarantine the damage and re-execute.
//!
//! Both legs must produce a CSV byte-identical to the reference; any
//! divergence, or a leg that exhausts its retry bound, fails the bench.
//! Results land in `<out>/chaos.csv` (one row per profile: attempts,
//! per-site injection counters, rows quarantined while healing, and the
//! identity verdicts), and each profile's journal plus any
//! `.quarantine` sidecar survive under `<out>/chaos/<profile>/` as
//! artifacts.
//!
//! The chaos schedule is a pure function of `(seed, profile)` — a
//! failing run is replayed exactly by rerunning with the same flags.
//!
//! Counter scope: the per-site columns in `chaos.csv` count faults the
//! *coordinator's* plan injected. Worker-site faults fire inside the
//! spawned worker processes under their own derived plans (see
//! [`ChaosPlan::worker_env_value`](tv_core::chaos::ChaosPlan::worker_env_value))
//! and surface as the cluster's `worker N died` / respawn log lines
//! rather than in these counters.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tv_bench::harness::Cli;
use tv_core::chaos::{self, ChaosPlan, Site};
use tv_core::{run_campaign, run_campaign_cluster, CampaignConfig, ClusterConfig, Fleet};

struct Args {
    seed: u64,
    out: PathBuf,
    procs: usize,
    profiles: Vec<String>,
    attempts: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        out: PathBuf::from("bench_results"),
        procs: 2,
        profiles: vec!["journal", "cluster", "light", "heavy"]
            .into_iter()
            .map(String::from)
            .collect(),
        attempts: 30,
    };
    let mut cli = Cli::new(
        "chaos",
        "chaos [--seed N] [--out DIR] [--procs N] [--profiles A,B,..] [--attempts N] \
         | chaos --worker",
    );
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--seed" => args.seed = cli.parse("--seed"),
            "--out" => args.out = PathBuf::from(cli.value("--out")),
            "--procs" => args.procs = cli.parse("--procs"),
            "--profiles" => {
                args.profiles = cli
                    .value("--profiles")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--attempts" => args.attempts = cli.parse("--attempts"),
            other => cli.unknown(other),
        }
    }
    args
}

/// Outcome of one bounded resume-retry leg.
struct LegOutcome {
    /// Runs needed before one completed (1 = no injected failure).
    attempts: u32,
    /// Corrupt journal rows quarantined-and-re-executed across the runs.
    quarantined: usize,
    /// The completed run's CSV document.
    csv: String,
}

/// Runs the campaign to completion, resuming from the journal after
/// every injected failure, at most `max_attempts` times. `cluster`
/// selects the multi-process fleet (needed for worker-site faults —
/// in-process threads cannot be killed) over in-process threads.
fn run_leg(
    config: &CampaignConfig,
    journal: &Path,
    cluster: Option<&ClusterConfig>,
    max_attempts: u32,
) -> Result<LegOutcome, String> {
    let mut quarantined = 0;
    let mut last_err = String::new();
    for attempt in 1..=max_attempts {
        let resume = journal.exists();
        let run = match cluster {
            Some(cc) => run_campaign_cluster(cc, config, journal, resume, |_, _| {}),
            None => run_campaign(&Fleet::new(2), config, journal, resume),
        };
        match run {
            Ok(report) => {
                quarantined += report.quarantined;
                return Ok(LegOutcome {
                    attempts: attempt,
                    quarantined,
                    csv: report.csv(),
                });
            }
            Err(e) => {
                println!("    attempt {attempt} died (resuming): {e}");
                last_err = e;
            }
        }
    }
    Err(format!("no attempt survived after {max_attempts} tries (last: {last_err})"))
}

/// One profile's row in `chaos.csv`.
struct ProfileResult {
    profile: String,
    attempts: u32,
    heal_quarantined: usize,
    identical: bool,
    heal_identical: bool,
    injected: Vec<u64>,
}

fn main() -> ExitCode {
    // Cluster workers spawned by the process-fault legs; they pick their
    // per-slot chaos schedule up from the env the coordinator set.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        if let Err(e) = chaos::install_from_env() {
            eprintln!("chaos worker: {e}");
            return ExitCode::from(2);
        }
        return tv_core::campaign_worker();
    }
    let args = parse_args();
    let config = CampaignConfig::smoke();
    let root = args.out.join("chaos");
    std::fs::create_dir_all(&root).expect("create chaos output directory");

    println!(
        "chaos bench — seed {}, profiles [{}], {} tuples (+{} RISC-V)",
        args.seed,
        args.profiles.join(", "),
        config.tuples,
        config.riscv_tuples,
    );

    // Ground truth: the fault-free CSV every chaos leg must reproduce
    // byte-for-byte.
    let ref_dir = root.join("reference");
    let _ = std::fs::remove_dir_all(&ref_dir);
    std::fs::create_dir_all(&ref_dir).expect("create reference directory");
    let reference = run_leg(&config, &ref_dir.join("campaign.journal"), None, 1)
        .expect("fault-free reference run")
        .csv;
    println!("reference: {} bytes of CSV", reference.len());

    let mut results: Vec<ProfileResult> = Vec::new();
    let mut ok = true;
    for name in &args.profiles {
        let plan = match ChaosPlan::new(args.seed, name) {
            Ok(p) => chaos::install(p),
            Err(e) => {
                eprintln!("chaos: {e}");
                return ExitCode::from(2);
            }
        };
        let worker_faults = [Site::WorkerExit, Site::WorkerStall, Site::WorkerGarbage]
            .iter()
            .any(|&s| plan.profile().rate(s) > 0.0);
        let cluster = worker_faults.then(|| ClusterConfig::new(args.procs));
        println!(
            "profile `{name}`: {} run, rates [{}]",
            if worker_faults {
                format!("{}-process cluster", args.procs)
            } else {
                "in-process".to_string()
            },
            plan.counters().replace("=0", "=·"),
        );

        let dir = root.join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create profile directory");
        let journal = dir.join("campaign.journal");

        // Leg 1: run from scratch under live injection.
        let leg1 = run_leg(&config, &journal, cluster.as_ref(), args.attempts);
        let (attempts, identical) = match &leg1 {
            Ok(out) => {
                let same = out.csv == reference;
                println!(
                    "  leg 1: completed in {} attempt(s), {} row(s) quarantined, CSV {}",
                    out.attempts,
                    out.quarantined,
                    if same { "identical" } else { "DIVERGED" },
                );
                (out.attempts, same)
            }
            Err(e) => {
                println!("  leg 1: FAILED — {e}");
                (args.attempts, false)
            }
        };

        // Leg 2: damage the finished journal at rest, then self-heal.
        // The journal already carries whatever torn/flipped appends the
        // chaos writer injected; corrupt_file adds one more seeded wound.
        let (heal_quarantined, heal_identical) = if leg1.is_ok() && journal.exists() {
            let what = chaos::corrupt_file(&journal, args.seed ^ plan.fingerprint())
                .expect("corrupt journal at rest");
            println!("  leg 2: damaged journal ({what}); resuming to heal");
            match run_leg(&config, &journal, cluster.as_ref(), args.attempts) {
                Ok(out) => {
                    let same = out.csv == reference;
                    println!(
                        "  leg 2: healed in {} attempt(s), {} row(s) quarantined, CSV {}",
                        out.attempts,
                        out.quarantined,
                        if same { "identical" } else { "DIVERGED" },
                    );
                    (out.quarantined, same)
                }
                Err(e) => {
                    println!("  leg 2: FAILED — {e}");
                    (0, false)
                }
            }
        } else {
            (0, false)
        };

        println!("  injected: {}", plan.counters());
        ok &= identical && heal_identical;
        results.push(ProfileResult {
            profile: name.clone(),
            attempts,
            heal_quarantined,
            identical,
            heal_identical,
            injected: Site::ALL.iter().map(|&s| plan.injected(s)).collect(),
        });
        chaos::uninstall();
    }

    // chaos.csv is written with injection off — the report about chaos
    // must not itself be a chaos victim.
    let mut csv = String::from("profile,seed,attempts,heal_quarantined,identical,heal_identical");
    for site in Site::ALL {
        csv.push(',');
        csv.push_str(site.name());
    }
    csv.push('\n');
    for r in &results {
        csv.push_str(&format!(
            "{},{},{},{},{},{}",
            r.profile, args.seed, r.attempts, r.heal_quarantined, r.identical, r.heal_identical,
        ));
        for n in &r.injected {
            csv.push_str(&format!(",{n}"));
        }
        csv.push('\n');
    }
    let csv_path = args.out.join("chaos.csv");
    tv_core::write_atomic_str(&csv_path, &csv).expect("write chaos.csv");
    println!("wrote {}", csv_path.display());

    if ok {
        println!("chaos PASS — every profile reproduced the reference CSV byte-for-byte");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos FAIL — see legs above");
        ExitCode::FAILURE
    }
}
