//! Simulator-throughput benchmark: simulated cycles per wall-clock second
//! for every scheme, written as `BENCH_simspeed.json`.
//!
//! This is the sim-speed trajectory gate: the committed JSON at the repo
//! root is the baseline, and `--check` re-measures the default sweep and
//! fails when throughput regresses by more than the gate factor (25% by
//! default, `SIMSPEED_GATE` overrides).
//!
//! ```text
//! --commits N     measured commits per run            (default 500 000)
//! --warmup N      warm-up commits per run             (default 50 000)
//! --seed N        workload/die seed                   (default 42)
//! --bench NAME    benchmark (default gcc)
//! --reps N        repetitions per scheme, best kept   (default 3)
//! --out FILE      output JSON                         (default BENCH_simspeed.json)
//! --compare FILE  embed FILE's numbers as the baseline section
//! --check FILE    gate mode: fail if slower than FILE by > the gate factor
//! --quick         shorthand for --commits 40000 --warmup 10000 --reps 1
//! ```
//!
//! Cycles/sec is measured per scheme on a warmed pipeline; the warm-up is
//! excluded from the timed window. With the `stage-profile` feature the
//! per-stage cycle-time counters are printed and embedded in the JSON.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use tv_core::Scheme;
use tv_timing::Voltage;
use tv_workloads::Benchmark;

struct Args {
    commits: u64,
    warmup: u64,
    seed: u64,
    bench: Benchmark,
    reps: u32,
    out: PathBuf,
    compare: Option<PathBuf>,
    check: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        commits: 500_000,
        warmup: 50_000,
        seed: 42,
        bench: Benchmark::Gcc,
        reps: 3,
        out: PathBuf::from("BENCH_simspeed.json"),
        compare: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--commits" => parsed.commits = value("--commits").parse().expect("--commits: integer"),
            "--warmup" => parsed.warmup = value("--warmup").parse().expect("--warmup: integer"),
            "--seed" => parsed.seed = value("--seed").parse().expect("--seed: integer"),
            "--reps" => parsed.reps = value("--reps").parse().expect("--reps: integer"),
            "--bench" => {
                let name = value("--bench");
                parsed.bench = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| panic!("unknown benchmark {name}"));
            }
            "--out" => parsed.out = PathBuf::from(value("--out")),
            "--compare" => parsed.compare = Some(PathBuf::from(value("--compare"))),
            "--check" => parsed.check = Some(PathBuf::from(value("--check"))),
            "--quick" => {
                parsed.commits = 40_000;
                parsed.warmup = 10_000;
                parsed.reps = 1;
            }
            other => panic!(
                "unknown argument {other}; supported: --commits --warmup --seed \
                 --bench --reps --out --compare --check --quick"
            ),
        }
    }
    assert!(parsed.reps > 0, "--reps must be positive");
    parsed
}

struct SchemeSpeed {
    scheme: Scheme,
    commits: u64,
    cycles: u64,
    wall_s: f64,
    cycles_per_sec: f64,
}

/// One timed measurement: build, warm, run, clock only the measured window.
fn measure(args: &Args, scheme: Scheme) -> SchemeSpeed {
    let mut best: Option<SchemeSpeed> = None;
    for _ in 0..args.reps {
        let mut pipe = scheme
            .pipeline_builder(args.bench, args.seed, Voltage::high_fault())
            .build();
        pipe.warm_up(args.warmup);
        let t0 = Instant::now();
        let stats = pipe.run(args.commits);
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        let sample = SchemeSpeed {
            scheme,
            commits: stats.committed,
            cycles: stats.cycles,
            wall_s,
            cycles_per_sec: stats.cycles as f64 / wall_s,
        };
        if best
            .as_ref()
            .map_or(true, |b| sample.cycles_per_sec > b.cycles_per_sec)
        {
            best = Some(sample);
        }
    }
    best.expect("reps > 0")
}

/// Minimal extractor for the JSON this binary writes: per-scheme
/// `cycles_per_sec` from the top-level `schemes` array (stops at the
/// `baseline` section so embedded baselines are not re-read).
fn parse_speeds(text: &str) -> Vec<(String, f64)> {
    let mut speeds = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("\"baseline\"") {
            break;
        }
        let Some(name) = extract_str(line, "\"scheme\": \"") else {
            continue;
        };
        if let Some(v) = extract_num(line, "\"cycles_per_sec\": ") {
            speeds.push((name, v));
        }
    }
    speeds
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = parse_args();
    println!(
        "simspeed — {} schemes x {} commits (+{} warm-up), bench {}, seed {}, best of {}",
        Scheme::ALL.len(),
        args.commits,
        args.warmup,
        args.bench.name(),
        args.seed,
        args.reps,
    );

    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let speed = measure(&args, scheme);
        println!(
            "  {:>9}: {:>7.0} kcycles/s ({} cycles in {:.3}s)",
            scheme.name(),
            speed.cycles_per_sec / 1e3,
            speed.cycles,
            speed.wall_s,
        );
        rows.push(speed);
    }
    let total_cycles: u64 = rows.iter().map(|r| r.cycles).sum();
    let total_wall: f64 = rows.iter().map(|r| r.wall_s).sum();
    let total_cps = total_cycles as f64 / total_wall.max(1e-9);
    println!("  sweep: {:.0} kcycles/s overall", total_cps / 1e3);

    // Gate mode: compare against a committed baseline, no file written.
    if let Some(baseline_path) = &args.check {
        let gate: f64 = std::env::var("SIMSPEED_GATE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.25);
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
        let baseline = parse_speeds(&text);
        assert!(!baseline.is_empty(), "no scheme speeds in baseline JSON");
        let mut failed = false;
        for (name, base_cps) in &baseline {
            let Some(cur) = rows.iter().find(|r| r.scheme.name() == name) else {
                continue;
            };
            let floor = base_cps * (1.0 - gate);
            let verdict = if cur.cycles_per_sec < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  gate {:>9}: {:>7.0} kcycles/s vs baseline {:>7.0} (floor {:>7.0}) {}",
                name,
                cur.cycles_per_sec / 1e3,
                base_cps / 1e3,
                floor / 1e3,
                verdict,
            );
        }
        if failed {
            eprintln!("simspeed gate FAILED: >{:.0}% below baseline", gate * 100.0);
            std::process::exit(1);
        }
        println!("simspeed gate passed (within {:.0}% of baseline)", gate * 100.0);
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"tv-simspeed-v1\",");
    let _ = writeln!(json, "  \"bench\": \"{}\",", args.bench.name());
    let _ = writeln!(json, "  \"commits\": {},", args.commits);
    let _ = writeln!(json, "  \"warmup\": {},", args.warmup);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    json.push_str("  \"schemes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{}\", \"commits\": {}, \"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}}}{}",
            r.scheme.name(),
            r.commits,
            r.cycles,
            r.wall_s,
            r.cycles_per_sec,
            comma,
        );
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        "  \"total\": {{\"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}}}",
        total_cycles, total_wall, total_cps,
    );

    if let Some(compare_path) = &args.compare {
        let text = std::fs::read_to_string(compare_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", compare_path.display()));
        let baseline = parse_speeds(&text);
        assert!(!baseline.is_empty(), "no scheme speeds in comparison JSON");
        json.push_str(",\n  \"baseline\": {\n");
        let _ = writeln!(
            json,
            "    \"source\": \"{}\",",
            compare_path.display()
        );
        json.push_str("    \"schemes\": [\n");
        for (i, (name, cps)) in baseline.iter().enumerate() {
            let speedup = rows
                .iter()
                .find(|r| r.scheme.name() == name)
                .map(|r| r.cycles_per_sec / cps.max(1e-9))
                .unwrap_or(0.0);
            let comma = if i + 1 < baseline.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {{\"scheme\": \"{name}\", \"cycles_per_sec\": {cps:.0}, \"speedup\": {speedup:.2}}}{comma}",
            );
            println!("  speedup {name:>9}: {speedup:.2}x");
        }
        json.push_str("    ],\n");
        let base_total: f64 = baseline.iter().map(|(_, c)| c).sum();
        // Baseline sweep throughput from per-scheme rates assuming the same
        // per-scheme cycle counts as this run.
        let base_wall: f64 = rows
            .iter()
            .map(|r| {
                baseline
                    .iter()
                    .find(|(n, _)| n == r.scheme.name())
                    .map(|(_, cps)| r.cycles as f64 / cps.max(1e-9))
                    .unwrap_or(0.0)
            })
            .sum();
        let base_cps = if base_wall > 0.0 {
            total_cycles as f64 / base_wall
        } else {
            base_total / baseline.len().max(1) as f64
        };
        let _ = writeln!(
            json,
            "    \"total_cycles_per_sec\": {:.0},\n    \"speedup\": {:.2}\n  }}",
            base_cps,
            total_cps / base_cps.max(1e-9),
        );
        println!("  sweep speedup: {:.2}x", total_cps / base_cps.max(1e-9));
    }
    json.push_str("\n}\n");

    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&args.out, json).expect("write simspeed JSON");
    println!("wrote {}", args.out.display());

    let profile = tv_uarch::profile::snapshot();
    if !profile.is_empty() {
        println!("stage profile (cumulative across all runs):");
        for s in &profile {
            println!(
                "  {:>10}: {:>9.3}s over {} calls",
                s.name,
                s.nanos as f64 / 1e9,
                s.calls
            );
        }
    }
}
