//! Simulator-throughput benchmark: simulated cycles per wall-clock second
//! for every scheme — solo and co-simulated — written as
//! `BENCH_simspeed.json`.
//!
//! This is the sim-speed trajectory gate: the committed JSON at the repo
//! root is the baseline, and `--check` re-measures the default sweep and
//! fails when solo throughput regresses by more than the gate factor (25%
//! by default, `SIMSPEED_GATE` overrides) or the co-sim sweep speedup
//! falls below its floor (1.5x by default, `SIMSPEED_COSIM_MIN`
//! overrides).
//!
//! ```text
//! --commits N     measured commits per run            (default 500 000)
//! --warmup N      warm-up commits per run             (default 50 000)
//! --seed N        workload/die seed                   (default 42)
//! --bench NAME    benchmark (default gcc)
//! --reps N        repetitions per scheme, best kept   (default 3)
//! --out FILE      output JSON                         (default BENCH_simspeed.json)
//! --compare FILE  embed FILE's numbers as the baseline section
//! --check FILE    gate mode: fail on regression vs FILE, no file written
//! --quick         shorthand for --commits 40000 --warmup 10000 --reps 1
//! ```
//!
//! Two kinds of measurement, both honest interleaved A/B on the same
//! machine in the same process:
//!
//! * **Solo steady-state** (the historical rows): per scheme, cycles/sec
//!   over a warmed pipeline's timed run window; build and warm-up are
//!   excluded.
//! * **Co-sim sweep cells** (the `cosim` section): a 6-scheme sweep cell —
//!   build + warm-up + measured run for every scheme — timed end-to-end,
//!   solo (6 pipelines, 6 trace passes, 5 fault-calibration probes) vs
//!   co-sim (one shared frontend, one probe, 6 timing lanes). Sweep-cell
//!   wall clock is what a design-space sweep actually pays per tuple, so
//!   the shared-frontend amortization shows up here; the steady-state
//!   entry reports the run-window-only gain, which is necessarily
//!   smaller. `sweep_speedup` records the screening-cell speedup.
//!
//! With the `stage-profile` cargo feature the per-stage wall-clock
//! breakdown is printed and embedded per phase (`solo` vs `cosim`), so
//! the "frontend amortized N ways" claim is visible in the profile: the
//! shared `frontend` stage (trace supply + fault sampling + branch
//! outcomes) accumulates ~N× fewer nanoseconds under co-sim.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use tv_bench::harness::Cli;
use tv_core::{build_cosim, Scheme, Workload};
use tv_timing::Voltage;
use tv_workloads::Benchmark;

struct Args {
    commits: u64,
    warmup: u64,
    seed: u64,
    bench: Benchmark,
    reps: u32,
    out: PathBuf,
    compare: Option<PathBuf>,
    check: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        commits: 500_000,
        warmup: 50_000,
        seed: 42,
        bench: Benchmark::Gcc,
        reps: 3,
        out: PathBuf::from("BENCH_simspeed.json"),
        compare: None,
        check: None,
    };
    let mut cli = Cli::new(
        "simspeed",
        "simspeed [--commits N] [--warmup N] [--seed N] [--bench NAME] [--reps N] \
         [--out FILE] [--compare FILE] [--check FILE] [--quick]",
    );
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--commits" => parsed.commits = cli.parse("--commits"),
            "--warmup" => parsed.warmup = cli.parse("--warmup"),
            "--seed" => parsed.seed = cli.parse("--seed"),
            "--reps" => parsed.reps = cli.parse("--reps"),
            "--bench" => {
                let name = cli.value("--bench");
                parsed.bench = match Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                {
                    Some(b) => b,
                    None => cli.fail(&format!("--bench: unknown benchmark `{name}`")),
                };
            }
            "--out" => parsed.out = PathBuf::from(cli.value("--out")),
            "--compare" => parsed.compare = Some(PathBuf::from(cli.value("--compare"))),
            "--check" => parsed.check = Some(PathBuf::from(cli.value("--check"))),
            "--quick" => {
                parsed.commits = 40_000;
                parsed.warmup = 10_000;
                parsed.reps = 1;
            }
            other => cli.unknown(other),
        }
    }
    if parsed.reps == 0 {
        cli.fail("--reps must be positive");
    }
    parsed
}

struct SchemeSpeed {
    scheme: Scheme,
    commits: u64,
    cycles: u64,
    wall_s: f64,
    cycles_per_sec: f64,
}

/// One timed solo measurement: build, warm, run, clock only the measured
/// window.
fn measure(args: &Args, scheme: Scheme) -> SchemeSpeed {
    let mut best: Option<SchemeSpeed> = None;
    for _ in 0..args.reps {
        let mut pipe = scheme
            .pipeline_builder(args.bench, args.seed, Voltage::high_fault())
            .build();
        pipe.warm_up(args.warmup);
        let t0 = Instant::now();
        let stats = pipe.run(args.commits);
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        let sample = SchemeSpeed {
            scheme,
            commits: stats.committed,
            cycles: stats.cycles,
            wall_s,
            cycles_per_sec: stats.cycles as f64 / wall_s,
        };
        if best
            .as_ref()
            .map_or(true, |b| sample.cycles_per_sec > b.cycles_per_sec)
        {
            best = Some(sample);
        }
    }
    best.expect("reps > 0")
}

/// One co-sim sweep-cell measurement: a 6-scheme cell end-to-end (builds,
/// probes, warm-up, measured run), solo vs co-sim, best of `reps`
/// interleaved A/B pairs.
struct CellSpeed {
    label: &'static str,
    commits: u64,
    warmup: u64,
    solo_wall_s: f64,
    cosim_wall_s: f64,
    speedup: f64,
}

/// The sweep-cell shapes reported in the `cosim` section. The screening
/// cell (a quick scheme×voltage scan) is the headline `sweep_speedup`;
/// the diff cell matches the differential harness's default
/// (20k + 5k warm-up); the amortized build/probe cost shrinks relative
/// to lane-stepping as cells grow, so both are recorded.
const SWEEP_CELLS: [(&str, u64, u64); 2] = [("screening", 5_000, 1_000), ("diff", 20_000, 5_000)];

fn measure_cell(args: &Args, label: &'static str, commits: u64, warmup: u64) -> CellSpeed {
    let workload = Workload::Bench(args.bench);
    let mut best: Option<CellSpeed> = None;
    for _ in 0..args.reps {
        let t0 = Instant::now();
        for scheme in Scheme::ALL {
            let mut pipe = scheme
                .pipeline_builder_for(&workload, args.seed, Voltage::high_fault())
                .build();
            pipe.warm_up(warmup);
            let _ = pipe.run(commits);
        }
        let solo_wall_s = t0.elapsed().as_secs_f64().max(1e-9);

        let t0 = Instant::now();
        let mut cosim = build_cosim(
            &workload,
            args.seed,
            Voltage::high_fault(),
            &Scheme::ALL,
            |_, b| b,
        );
        cosim.warm_up(warmup);
        let _ = cosim.run(commits);
        let cosim_wall_s = t0.elapsed().as_secs_f64().max(1e-9);

        let sample = CellSpeed {
            label,
            commits,
            warmup,
            solo_wall_s,
            cosim_wall_s,
            speedup: solo_wall_s / cosim_wall_s,
        };
        if best.as_ref().map_or(true, |b| sample.speedup > b.speedup) {
            best = Some(sample);
        }
    }
    best.expect("reps > 0")
}

/// Steady-state co-sim: all six lanes interleaved, clocking only the
/// measured run window (builds and warm-up excluded) — directly
/// comparable to the sum of the solo rows' windows.
struct CosimSteady {
    cycles: u64,
    wall_s: f64,
    cycles_per_sec: f64,
}

fn measure_cosim_steady(args: &Args) -> CosimSteady {
    let workload = Workload::Bench(args.bench);
    let mut best: Option<CosimSteady> = None;
    for _ in 0..args.reps {
        let mut cosim = build_cosim(
            &workload,
            args.seed,
            Voltage::high_fault(),
            &Scheme::ALL,
            |_, b| b,
        );
        cosim.warm_up(args.warmup);
        let t0 = Instant::now();
        let stats = cosim.run(args.commits);
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        let cycles: u64 = stats.iter().map(|s| s.cycles).sum();
        let sample = CosimSteady {
            cycles,
            wall_s,
            cycles_per_sec: cycles as f64 / wall_s,
        };
        if best
            .as_ref()
            .map_or(true, |b| sample.cycles_per_sec > b.cycles_per_sec)
        {
            best = Some(sample);
        }
    }
    best.expect("reps > 0")
}

/// Minimal extractor for the JSON this binary writes: per-scheme
/// `cycles_per_sec` from the top-level `schemes` array (stops at the
/// `cosim`/`baseline` sections so other entries are not re-read).
fn parse_speeds(text: &str) -> Vec<(String, f64)> {
    let mut speeds = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("\"baseline\"") || trimmed.starts_with("\"cosim\"") {
            break;
        }
        let Some(name) = extract_str(line, "\"scheme\": \"") else {
            continue;
        };
        if let Some(v) = extract_num(line, "\"cycles_per_sec\": ") {
            speeds.push((name, v));
        }
    }
    speeds
}

/// Per-cell co-sim speedups from the `cosim.cells` array of a previously
/// written JSON (empty for pre-co-sim baselines).
fn parse_cosim_cells(text: &str) -> Vec<(String, f64)> {
    let mut cells = Vec::new();
    for line in text.lines() {
        let Some(name) = extract_str(line, "\"cell\": \"") else {
            continue;
        };
        if let Some(v) = extract_num(line, "\"speedup\": ") {
            cells.push((name, v));
        }
    }
    cells
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `{"git_rev": ..., "date": ...}` describing this run — embedded in the
/// JSON so a file used as a `--compare`/`--check` baseline later names the
/// commit and day it was measured on instead of a stale filesystem path.
fn generated_block() -> (String, String) {
    let run = |cmd: &str, argv: &[&str]| -> Option<String> {
        let out = std::process::Command::new(cmd).args(argv).output().ok()?;
        out.status.success().then(|| {
            String::from_utf8_lossy(&out.stdout).trim().to_string()
        })
    };
    let rev = run("git", &["rev-parse", "--short", "HEAD"]).unwrap_or_else(|| "unknown".into());
    let date = run("date", &["-u", "+%Y-%m-%d"]).unwrap_or_else(|| {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        format!("epoch+{secs}s")
    });
    (rev, date)
}

/// The `generated` identity of a baseline file, when it has one.
fn baseline_identity(text: &str) -> Option<(String, String)> {
    let line = text.lines().find(|l| l.contains("\"generated\""))?;
    Some((
        extract_str(line, "\"git_rev\": \"")?,
        extract_str(line, "\"date\": \"")?,
    ))
}

fn append_stage_profile(json: &mut String, label: &str, profile: &[tv_uarch::profile::StageSample]) {
    let _ = writeln!(json, "    \"{label}\": [");
    for (i, s) in profile.iter().enumerate() {
        let comma = if i + 1 < profile.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"stage\": \"{}\", \"nanos\": {}, \"calls\": {}}}{}",
            s.name, s.nanos, s.calls, comma,
        );
    }
    let _ = write!(json, "    ]");
}

fn print_stage_profile(label: &str, profile: &[tv_uarch::profile::StageSample]) {
    if profile.is_empty() {
        return;
    }
    println!("stage profile ({label}):");
    for s in profile {
        println!(
            "  {:>10}: {:>9.3}s over {} calls",
            s.name,
            s.nanos as f64 / 1e9,
            s.calls
        );
    }
}

fn main() {
    let args = parse_args();
    println!(
        "simspeed — {} schemes x {} commits (+{} warm-up), bench {}, seed {}, best of {}",
        Scheme::ALL.len(),
        args.commits,
        args.warmup,
        args.bench.name(),
        args.seed,
        args.reps,
    );

    tv_uarch::profile::reset();
    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let speed = measure(&args, scheme);
        println!(
            "  {:>9}: {:>7.0} kcycles/s ({} cycles in {:.3}s)",
            scheme.name(),
            speed.cycles_per_sec / 1e3,
            speed.cycles,
            speed.wall_s,
        );
        rows.push(speed);
    }
    let total_cycles: u64 = rows.iter().map(|r| r.cycles).sum();
    let total_wall: f64 = rows.iter().map(|r| r.wall_s).sum();
    let total_cps = total_cycles as f64 / total_wall.max(1e-9);
    println!("  sweep: {:.0} kcycles/s overall (solo)", total_cps / 1e3);
    let solo_profile = tv_uarch::profile::snapshot();
    print_stage_profile("solo", &solo_profile);

    // Co-sim: steady-state window plus end-to-end sweep cells.
    tv_uarch::profile::reset();
    let steady = measure_cosim_steady(&args);
    let steady_speedup = steady.cycles_per_sec / total_cps.max(1e-9);
    println!(
        "  cosim steady: {:.0} kcycles/s over 6 lanes ({:.2}x solo run windows)",
        steady.cycles_per_sec / 1e3,
        steady_speedup,
    );
    let mut cells = Vec::new();
    for (label, commits, warmup) in SWEEP_CELLS {
        let cell = measure_cell(&args, label, commits, warmup);
        println!(
            "  cosim {:>9} cell ({}+{}): solo {:>7.1}ms vs cosim {:>7.1}ms — {:.2}x",
            cell.label,
            cell.commits,
            cell.warmup,
            cell.solo_wall_s * 1e3,
            cell.cosim_wall_s * 1e3,
            cell.speedup,
        );
        cells.push(cell);
    }
    let sweep_speedup = cells
        .iter()
        .find(|c| c.label == "screening")
        .map(|c| c.speedup)
        .unwrap_or(0.0);
    println!("  cosim sweep speedup (screening cell): {sweep_speedup:.2}x");
    let cosim_profile = tv_uarch::profile::snapshot();
    print_stage_profile("cosim", &cosim_profile);

    // Gate mode: compare against a committed baseline, no file written.
    if let Some(baseline_path) = &args.check {
        let gate: f64 = std::env::var("SIMSPEED_GATE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.25);
        let cosim_min: f64 = std::env::var("SIMSPEED_COSIM_MIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.5);
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
        let baseline = parse_speeds(&text);
        assert!(!baseline.is_empty(), "no scheme speeds in baseline JSON");
        let mut failed = false;
        for (name, base_cps) in &baseline {
            let Some(cur) = rows.iter().find(|r| r.scheme.name() == name) else {
                continue;
            };
            let floor = base_cps * (1.0 - gate);
            let verdict = if cur.cycles_per_sec < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  gate {:>9}: {:>7.0} kcycles/s vs baseline {:>7.0} (floor {:>7.0}) {}",
                name,
                cur.cycles_per_sec / 1e3,
                base_cps / 1e3,
                floor / 1e3,
                verdict,
            );
        }
        // Co-sim deltas: per-cell speedup vs the baseline's recorded
        // speedups, plus the absolute floor on the sweep headline.
        let base_cells = parse_cosim_cells(&text);
        for cell in &cells {
            match base_cells.iter().find(|(n, _)| n == cell.label) {
                Some((_, base)) => println!(
                    "  gate cosim {:>9}: {:.2}x vs baseline {:.2}x ({:+.0}%)",
                    cell.label,
                    cell.speedup,
                    base,
                    (cell.speedup / base.max(1e-9) - 1.0) * 100.0,
                ),
                None => println!(
                    "  gate cosim {:>9}: {:.2}x (no co-sim section in baseline)",
                    cell.label, cell.speedup,
                ),
            }
        }
        let verdict = if sweep_speedup < cosim_min {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  gate cosim sweep: {sweep_speedup:.2}x (floor {cosim_min:.2}x) {verdict}"
        );
        if failed {
            eprintln!("simspeed gate FAILED");
            std::process::exit(1);
        }
        println!(
            "simspeed gate passed (solo within {:.0}% of baseline, cosim sweep >= {:.2}x)",
            gate * 100.0,
            cosim_min,
        );
        return;
    }

    // `--compare` is read before `--out` is written, so comparing against
    // the committed JSON while overwriting it in place is well-defined.
    let compare_text = args.compare.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    });

    let (git_rev, date) = generated_block();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"tv-simspeed-v2\",");
    let _ = writeln!(
        json,
        "  \"generated\": {{\"git_rev\": \"{git_rev}\", \"date\": \"{date}\"}},"
    );
    let _ = writeln!(json, "  \"bench\": \"{}\",", args.bench.name());
    let _ = writeln!(json, "  \"commits\": {},", args.commits);
    let _ = writeln!(json, "  \"warmup\": {},", args.warmup);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    json.push_str("  \"schemes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{}\", \"commits\": {}, \"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}}}{}",
            r.scheme.name(),
            r.commits,
            r.cycles,
            r.wall_s,
            r.cycles_per_sec,
            comma,
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"total\": {{\"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}}},",
        total_cycles, total_wall, total_cps,
    );
    json.push_str("  \"cosim\": {\n");
    let _ = writeln!(
        json,
        "    \"steady\": {{\"commits\": {}, \"warmup\": {}, \"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}, \"solo_cycles_per_sec\": {:.0}, \"speedup\": {:.2}}},",
        args.commits,
        args.warmup,
        steady.cycles,
        steady.wall_s,
        steady.cycles_per_sec,
        total_cps,
        steady_speedup,
    );
    json.push_str("    \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"cell\": \"{}\", \"commits\": {}, \"warmup\": {}, \"schemes\": {}, \"solo_wall_s\": {:.4}, \"cosim_wall_s\": {:.4}, \"speedup\": {:.2}}}{}",
            c.label,
            c.commits,
            c.warmup,
            Scheme::ALL.len(),
            c.solo_wall_s,
            c.cosim_wall_s,
            c.speedup,
            comma,
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"sweep_speedup\": {sweep_speedup:.2}");
    json.push_str("  }");

    if let Some(text) = &compare_text {
        let baseline = parse_speeds(text);
        assert!(!baseline.is_empty(), "no scheme speeds in comparison JSON");
        json.push_str(",\n  \"baseline\": {\n");
        let source = args.compare.as_ref().expect("compare path").display();
        let _ = writeln!(json, "    \"source\": \"{source}\",");
        match baseline_identity(text) {
            Some((rev, date)) => {
                let _ = writeln!(
                    json,
                    "    \"generated\": {{\"git_rev\": \"{rev}\", \"date\": \"{date}\"}},"
                );
            }
            None => {
                let _ = writeln!(json, "    \"generated\": null,");
            }
        }
        json.push_str("    \"schemes\": [\n");
        for (i, (name, cps)) in baseline.iter().enumerate() {
            let speedup = rows
                .iter()
                .find(|r| r.scheme.name() == name)
                .map(|r| r.cycles_per_sec / cps.max(1e-9))
                .unwrap_or(0.0);
            let comma = if i + 1 < baseline.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {{\"scheme\": \"{name}\", \"cycles_per_sec\": {cps:.0}, \"speedup\": {speedup:.2}}}{comma}",
            );
            println!("  speedup {name:>9}: {speedup:.2}x");
        }
        json.push_str("    ],\n");
        let base_total: f64 = baseline.iter().map(|(_, c)| c).sum();
        // Baseline sweep throughput from per-scheme rates assuming the same
        // per-scheme cycle counts as this run.
        let base_wall: f64 = rows
            .iter()
            .map(|r| {
                baseline
                    .iter()
                    .find(|(n, _)| n == r.scheme.name())
                    .map(|(_, cps)| r.cycles as f64 / cps.max(1e-9))
                    .unwrap_or(0.0)
            })
            .sum();
        let base_cps = if base_wall > 0.0 {
            total_cycles as f64 / base_wall
        } else {
            base_total / baseline.len().max(1) as f64
        };
        let _ = writeln!(
            json,
            "    \"total_cycles_per_sec\": {:.0},\n    \"speedup\": {:.2}\n  }}",
            base_cps,
            total_cps / base_cps.max(1e-9),
        );
        println!("  solo sweep vs baseline: {:.2}x", total_cps / base_cps.max(1e-9));
    }

    if !solo_profile.is_empty() {
        json.push_str(",\n  \"stage_profile\": {\n");
        append_stage_profile(&mut json, "solo", &solo_profile);
        json.push_str(",\n");
        append_stage_profile(&mut json, "cosim", &cosim_profile);
        json.push_str("\n  }");
    }
    json.push_str("\n}\n");

    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    tv_core::write_atomic_str(&args.out, &json).expect("write simspeed JSON");
    println!("wrote {}", args.out.display());
}
