//! Extension experiment: in-order-engine fault tolerance (paper §2.2).
//!
//! The paper's evaluation injects faults only into the OoO engine (where
//! they are overwhelmingly likely), but §2.2 describes the complete
//! machine: rename/dispatch/retire violations are tolerated by a
//! TEP-driven stall signal, fetch/decode violations only by replay. This
//! harness shifts a growing share of the fault mass into the in-order
//! engine and reports the cost split.

use tv_bench::{write_csv, HarnessArgs};
use tv_core::Scheme;
use tv_timing::{FaultCalibration, Voltage};
use tv_workloads::Benchmark;

const SHARES: [f64; 4] = [0.0, 0.1, 0.3, 0.6];

fn main() {
    let args = HarnessArgs::parse();
    let bench = Benchmark::Gcc;
    println!(
        "In-order-engine faults — {} at 0.97 V ({} commits)\n",
        bench, args.config.commits
    );
    println!(
        "{:<14} {:>10} {:>12} {:>9} {:>11}",
        "inorder-share", "overhead%", "stall-signals", "replays", "faults"
    );

    let profile = bench.profile();
    // One fleet job per share × scheme pair.
    let items: Vec<(f64, Scheme)> = SHARES
        .iter()
        .flat_map(|&share| [(share, Scheme::FaultFree), (share, Scheme::Abs)])
        .collect();
    let run = args.fleet().map(items, |&(share, scheme)| {
        let cal = FaultCalibration {
            in_order_share: share,
            ..FaultCalibration::from_rates(profile.fault_rate_097, profile.fault_rate_104)
        };
        let mut pipe = scheme
            .pipeline_builder(bench, args.config.seed, Voltage::high_fault())
            .calibration(cal)
            .build();
        pipe.warm_up(args.config.warmup);
        pipe.run(args.config.commits)
    });

    let mut csv = Vec::new();
    for (share, pair) in SHARES.iter().zip(run.results.chunks(2)) {
        let (base, abs) = (&pair[0], &pair[1]);
        let overhead = (abs.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
        println!(
            "{:<14.2} {:>10.2} {:>12} {:>9} {:>11}",
            share, overhead, abs.in_order_stalls, abs.replays, abs.faults_total()
        );
        csv.push(format!(
            "{share:.2},{overhead:.3},{},{},{}",
            abs.in_order_stalls,
            abs.replays,
            abs.faults_total()
        ));
    }
    println!(
        "\nshifting faults into the in-order engine trades cheap slot freezes\n\
         for stage stalls and (fetch/decode) replays — the reason the paper's\n\
         scheduling framework targets the OoO engine."
    );
    write_csv(
        &args.out_path("in_order_faults.csv"),
        "in_order_share,abs_overhead_pct,stall_signals,replays,faults",
        &csv,
    );
    args.record_timing("in_order_faults", &run.stats);
}
