//! Regenerates **Table 2**: area and power overhead of the proposed VTE
//! (ABS/FFS/CDS) relative to the baseline Error Padding scheduler, at
//! scheduler level and core level (paper §S3).

use tv_bench::{write_csv, HarnessArgs};
use tv_energy::VteOverheadReport;
use tv_uarch::CoreConfig;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = CoreConfig::core1();
    let report = VteOverheadReport::compute(cfg.iq_entries, cfg.lanes.len());

    println!("Table 2 — area and power overhead of the proposed VTE\n");
    println!(
        "{:<8} {:>10} {:>12} {:>10} | {:>10} {:>12} {:>10}",
        "scheme", "area%", "dyn-power%", "leakage%", "core-area%", "core-dyn%", "core-leak%"
    );
    let mut csv = Vec::new();
    for s in &report.schemes {
        let (ca, cd, cl) = s.core_level();
        println!(
            "{:<8} {:>10.2} {:>12.2} {:>10.2} | {:>10.3} {:>12.3} {:>10.3}",
            s.scheme,
            s.area * 100.0,
            s.dynamic * 100.0,
            s.leakage * 100.0,
            ca * 100.0,
            cd * 100.0,
            cl * 100.0
        );
        csv.push(format!(
            "{},{:.4},{:.4},{:.4},{:.5},{:.5},{:.5}",
            s.scheme,
            s.area * 100.0,
            s.dynamic * 100.0,
            s.leakage * 100.0,
            ca * 100.0,
            cd * 100.0,
            cl * 100.0
        ));
    }
    println!(
        "\nbaseline scheduler: {:.0} NAND2-equivalents; paper reports ABS/FFS at\n\
         0.77/0.57/0.87 % and CDS at 6.35/1.56/6.80 % scheduler-level.",
        report.baseline_area
    );
    write_csv(
        &args.out_path("table2.csv"),
        "scheme,area_pct,dyn_pct,leak_pct,core_area_pct,core_dyn_pct,core_leak_pct",
        &csv,
    );
}
