//! Regenerates **Figure 5**: relative ED overhead vs EP at 1.04 V (lower is better).

use tv_bench::{figure_csv_rows, run_relative_figure, write_csv, HarnessArgs};
use tv_core::FigureRow;
use tv_timing::Voltage;

fn main() {
    let args = HarnessArgs::parse();
    println!("Figure 5 — relative ED overhead vs EP at 1.04 V (lower is better) ({} commits/run)\n", args.config.commits);
    println!("{:<12} {:>6} {:>6} {:>6}", "bench", "ABS", "FFS", "CDS");
    let rows = run_relative_figure(&args, "fig5", Voltage::low_fault(), FigureRow::ed);
    let avg = rows.last().expect("average row exists");
    println!(
        "\naverage overhead reduction vs EP: {:.1}% (paper reports the same figure)",
        avg.mean_reduction_pct()
    );
    write_csv(&args.out_path("fig5.csv"), "bench,abs,ffs,cds", &figure_csv_rows(&rows));
}
