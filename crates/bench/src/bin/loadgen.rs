//! Load generator for the campaign server.
//!
//! Hammers `POST /campaign` from many client threads with one spec,
//! verifies every response is byte-identical (they name the same
//! experiment, so anything else is a cache bug), and reports throughput
//! and latency percentiles plus the server's own `/stats` counters
//! sampled before and after the burst.
//!
//! ```text
//! loadgen --addr HOST:PORT
//!         [--spec JSON]          campaign spec body     (default: {} = smoke)
//!         [--requests N]         total requests         (default 1000)
//!         [--clients N]          concurrent clients     (default 8)
//!         [--save-body PATH]     write the (shared) response body to PATH
//!         [--expect-cache D]     fail unless every response is D
//!                                (hit|miss|coalesced)
//!         [--expect-warm]        fail if the burst triggered any campaign
//!                                execution or cell simulation
//!         [--out PATH]           benchmark JSON         (default
//!                                bench_results/BENCH_serve.json)
//! ```
//!
//! `--expect-warm` is the dedup proof for a warm cache: the server's
//! `executions` and `cells_executed` counters must not move across the
//! whole burst — thousands of requests, zero re-simulations.
//!
//! Transport failures (refused/reset connections, I/O errors, 5xx) are
//! retried up to 3 times with capped exponential backoff plus
//! deterministic jitter (hashed from request index and attempt, so runs
//! are reproducible); 4xx responses are not retried (they are
//! deterministic rejections). Retries are reported separately from
//! failures in both the stdout summary and `BENCH_serve.json`
//! (`retries`, `retried_requests`).

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use tv_bench::harness::Cli;
use tv_core::fnv1a;
use tv_serve::http::request;
use tv_serve::json::{Json, Obj};

const TIMEOUT: Duration = Duration::from_secs(600);

struct Args {
    addr: SocketAddr,
    spec: String,
    requests: usize,
    clients: usize,
    save_body: Option<PathBuf>,
    expect_cache: Option<String>,
    expect_warm: bool,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut addr = None;
    let mut spec = "{}".to_string();
    let mut requests = 1000usize;
    let mut clients = 8usize;
    let mut save_body = None;
    let mut expect_cache: Option<String> = None;
    let mut expect_warm = false;
    let mut out = PathBuf::from("bench_results/BENCH_serve.json");
    let mut cli = Cli::new(
        "loadgen",
        "loadgen --addr HOST:PORT [--spec JSON] [--requests N] [--clients N] \
         [--save-body PATH] [--expect-cache hit|miss|coalesced] [--expect-warm] [--out PATH]",
    );
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--addr" => {
                let text = cli.value("--addr");
                match text.to_socket_addrs().ok().and_then(|mut a| a.next()) {
                    Some(a) => addr = Some(a),
                    None => cli.fail(&format!("--addr {text}: not a resolvable address")),
                }
            }
            "--spec" => spec = cli.value("--spec"),
            "--requests" => requests = cli.parse("--requests"),
            "--clients" => clients = cli.parse("--clients"),
            "--save-body" => save_body = Some(PathBuf::from(cli.value("--save-body"))),
            "--expect-cache" => {
                let d = cli.value("--expect-cache");
                if !matches!(d.as_str(), "hit" | "miss" | "coalesced") {
                    cli.fail(&format!("--expect-cache {d}: want hit, miss or coalesced"));
                }
                expect_cache = Some(d);
            }
            "--expect-warm" => expect_warm = true,
            "--out" => out = PathBuf::from(cli.value("--out")),
            other => cli.unknown(other),
        }
    }
    let Some(addr) = addr else {
        cli.fail("--addr is required");
    };
    if requests == 0 || clients == 0 {
        cli.fail("--requests and --clients must be positive");
    }
    Args {
        addr,
        spec,
        requests,
        clients,
        save_body,
        expect_cache,
        expect_warm,
        out,
    }
}

fn fetch_stats(addr: SocketAddr) -> Json {
    let resp = request(addr, "GET", "/stats", b"", TIMEOUT).expect("GET /stats");
    assert_eq!(resp.status, 200, "/stats answered {}", resp.status);
    Json::parse(&resp.text()).expect("stats is JSON")
}

fn stat(stats: &Json, field: &str) -> u64 {
    stats.as_obj().and_then(|o| o.get(field)).and_then(Json::as_u64).unwrap_or(0)
}

/// The latency at quantile `q` (0..=1) of a sorted sample, in ms.
fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

#[derive(Default)]
struct Tally {
    hit: AtomicU64,
    miss: AtomicU64,
    coalesced: AtomicU64,
    other: AtomicU64,
    failed: AtomicU64,
    /// Retry attempts issued (a request retried twice counts 2).
    retries: AtomicU64,
    /// Requests that needed at least one retry (succeeded or not).
    retried_requests: AtomicU64,
}

/// Attempts per request: the first try plus up to 3 retries.
const MAX_ATTEMPTS: u32 = 4;

/// Backoff before retry `attempt` (1-based) of request `req`: capped
/// exponential (10ms, 20ms, 40ms... <= 250ms) plus deterministic jitter
/// hashed from `(req, attempt)` so two runs sleep identically.
fn retry_backoff(req: usize, attempt: u32) -> Duration {
    let base_us = (10_000u64 << (attempt - 1).min(6)).min(250_000);
    let mut bytes = [0u8; 12];
    bytes[..8].copy_from_slice(&(req as u64).to_le_bytes());
    bytes[8..].copy_from_slice(&attempt.to_le_bytes());
    let jitter_us = fnv1a(&bytes) % (base_us / 2 + 1);
    Duration::from_micros(base_us + jitter_us)
}

/// Whether a response status is worth retrying: 5xx are transient
/// (e.g. a failed execution that resumes its journal on resubmission);
/// 4xx are deterministic rejections.
fn retryable_status(status: u16) -> bool {
    status >= 500
}

fn main() {
    let args = parse_args();
    println!(
        "loadgen: {} requests x {} clients against http://{} (spec: {})",
        args.requests, args.clients, args.addr, args.spec,
    );

    let before = fetch_stats(args.addr);
    let next = AtomicUsize::new(0);
    let tally = Tally::default();
    let latencies_us = Mutex::new(Vec::with_capacity(args.requests));
    // Body identity across the whole burst, by fingerprint; the first
    // body is kept verbatim for --save-body and byte-level comparison
    // offline.
    let first_body: Mutex<Option<(u64, Vec<u8>)>> = Mutex::new(None);

    let t0 = Instant::now();
    thread::scope(|scope| {
        for _ in 0..args.clients {
            scope.spawn(|| loop {
                let req = next.fetch_add(1, Ordering::Relaxed);
                if req >= args.requests {
                    break;
                }
                // Retry loop: transport errors and 5xx get capped
                // exponential backoff; the latency sample covers the
                // whole request including retries (that is what a
                // caller experiences).
                let start = Instant::now();
                let mut attempt = 0u32;
                let resp = loop {
                    attempt += 1;
                    let resp = request(
                        args.addr,
                        "POST",
                        "/campaign",
                        args.spec.as_bytes(),
                        TIMEOUT,
                    );
                    let transient = match &resp {
                        Err(_) => true,
                        Ok(r) => r.status != 200 && retryable_status(r.status),
                    };
                    if !transient || attempt >= MAX_ATTEMPTS {
                        break resp;
                    }
                    tally.retries.fetch_add(1, Ordering::Relaxed);
                    thread::sleep(retry_backoff(req, attempt));
                };
                let elapsed_us = start.elapsed().as_micros() as u64;
                if attempt > 1 {
                    tally.retried_requests.fetch_add(1, Ordering::Relaxed);
                }
                let Ok(resp) = resp else {
                    tally.failed.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                if resp.status != 200 {
                    tally.failed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                match resp.header("x-cache") {
                    Some("hit") => &tally.hit,
                    Some("miss") => &tally.miss,
                    Some("coalesced") => &tally.coalesced,
                    _ => &tally.other,
                }
                .fetch_add(1, Ordering::Relaxed);
                let fp = fnv1a(&resp.body);
                {
                    let mut first = first_body.lock().expect("first body");
                    match first.as_ref() {
                        None => *first = Some((fp, resp.body)),
                        Some((expected, _)) if *expected != fp => {
                            eprintln!(
                                "loadgen: response body diverged (fingerprint {fp:016x} \
                                 vs {expected:016x}) — cache served different bytes"
                            );
                            tally.failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(_) => {}
                    }
                }
                latencies_us.lock().expect("latencies").push(elapsed_us);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let after = fetch_stats(args.addr);

    let mut lat = latencies_us.into_inner().expect("latencies");
    lat.sort_unstable();
    let ok = lat.len();
    let failed = tally.failed.load(Ordering::Relaxed);
    let retries = tally.retries.load(Ordering::Relaxed);
    let retried_requests = tally.retried_requests.load(Ordering::Relaxed);
    let (hit, miss, coalesced, other) = (
        tally.hit.load(Ordering::Relaxed),
        tally.miss.load(Ordering::Relaxed),
        tally.coalesced.load(Ordering::Relaxed),
        tally.other.load(Ordering::Relaxed),
    );
    let executions_delta = stat(&after, "executions") - stat(&before, "executions");
    let cells_delta = stat(&after, "cells_executed") - stat(&before, "cells_executed");
    println!(
        "loadgen: {ok} ok / {failed} failed in {wall_s:.2}s — {:.0} req/s | \
         p50 {:.2}ms p90 {:.2}ms p99 {:.2}ms max {:.2}ms",
        ok as f64 / wall_s,
        percentile(&lat, 0.50),
        percentile(&lat, 0.90),
        percentile(&lat, 0.99),
        percentile(&lat, 1.0),
    );
    println!(
        "loadgen: dispositions {hit} hit / {miss} miss / {coalesced} coalesced / {other} other; \
         server executed {executions_delta} campaigns ({cells_delta} cells) during the burst",
    );
    if retries > 0 {
        println!(
            "loadgen: {retried_requests} request(s) needed retries ({retries} retry attempts)"
        );
    }

    if let Some(path) = &args.save_body {
        let body = first_body
            .into_inner()
            .expect("first body")
            .map(|(_, b)| b)
            .unwrap_or_default();
        tv_core::write_atomic(path, &body).expect("save body");
        println!("loadgen: saved response body to {}", path.display());
    }

    let mut doc = Obj::new();
    doc.str("bench", "serve")
        .str("addr", &args.addr.to_string())
        .str("spec", &args.spec)
        .u64("requests", args.requests as u64)
        .u64("clients", args.clients as u64)
        .u64("ok", ok as u64)
        .u64("failed", failed)
        .u64("hit", hit)
        .u64("miss", miss)
        .u64("coalesced", coalesced)
        .u64("retries", retries)
        .u64("retried_requests", retried_requests)
        .num("wall_s", wall_s)
        .num("requests_per_sec", ok as f64 / wall_s)
        .num("p50_ms", percentile(&lat, 0.50))
        .num("p90_ms", percentile(&lat, 0.90))
        .num("p99_ms", percentile(&lat, 0.99))
        .num("max_ms", percentile(&lat, 1.0))
        .u64("executions_during_burst", executions_delta)
        .u64("cells_executed_during_burst", cells_delta)
        .raw("stats_before", before.as_obj().map_or("{}".into(), |_| render_stats(&before)))
        .raw("stats_after", after.as_obj().map_or("{}".into(), |_| render_stats(&after)));
    if let Some(dir) = args.out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    tv_core::write_atomic_str(&args.out, &format!("{}\n", doc.render())).expect("write bench json");
    println!("loadgen: wrote {}", args.out.display());

    let mut pass = failed == 0 && other == 0;
    if let Some(expected) = &args.expect_cache {
        let (want, got) = match expected.as_str() {
            "hit" => (ok as u64, hit),
            "miss" => (ok as u64, miss),
            _ => (ok as u64, coalesced),
        };
        if got != want {
            eprintln!("loadgen: FAIL — expected every response to be `{expected}`, got {got}/{want}");
            pass = false;
        }
    }
    if args.expect_warm && (executions_delta != 0 || cells_delta != 0) {
        eprintln!(
            "loadgen: FAIL — warm burst re-simulated: {executions_delta} executions, \
             {cells_delta} cells"
        );
        pass = false;
    }
    if !pass {
        std::process::exit(1);
    }
    println!("loadgen: PASS");
}

/// Re-renders a parsed stats object with sorted keys (the counters are
/// flat `u64`s, so this is lossless).
fn render_stats(stats: &Json) -> String {
    let mut o = Obj::new();
    if let Some(map) = stats.as_obj() {
        for (k, v) in map {
            if let Some(n) = v.as_u64() {
                o.u64(k, n);
            }
        }
    }
    o.render()
}
