//! Regenerates **Table 3**: gate count and logic depth of the four
//! synthesized processor components of the §S1 study, plus the synthesis
//! characterization (area, critical path, power) our netlists yield.

use tv_bench::{write_csv, HarnessArgs};
use tv_netlist::components::study_components;
use tv_netlist::SynthReport;

/// Paper Table 3 values for side-by-side comparison.
const PAPER: [(&str, usize, u32); 4] = [
    ("issue_select32", 189, 33),
    ("agen32", 491, 43),
    ("forward_check", 428, 15),
    ("alu32", 4728, 46),
];

fn main() {
    let args = HarnessArgs::parse();
    println!("Table 3 — synthesized processor components\n");
    println!(
        "{:<16} {:>7} {:>7} {:>9} {:>10} {:>11} | {:>11} {:>11}",
        "module", "gates", "depth", "area", "Tcrit(ps)", "Pdyn(µW)", "paper gates", "paper depth"
    );
    // Characterization is independent per component — fan it out.
    let run = args
        .fleet()
        .map(study_components(), |netlist| {
            SynthReport::characterize(netlist, 0.15, 2.0)
        });
    let mut csv = Vec::new();
    for r in &run.results {
        let (pg, pd) = PAPER
            .iter()
            .find(|(n, _, _)| *n == r.name)
            .map(|&(_, g, d)| (g, d))
            .expect("paper row exists");
        println!(
            "{:<16} {:>7} {:>7} {:>9.1} {:>10.0} {:>11.2} | {:>11} {:>11}",
            r.name, r.num_gates, r.logic_depth, r.area, r.critical_path_ps, r.dynamic_power_uw, pg, pd
        );
        csv.push(format!(
            "{},{},{},{:.1},{:.0},{:.2},{},{}",
            r.name, r.num_gates, r.logic_depth, r.area, r.critical_path_ps, r.dynamic_power_uw, pg, pd
        ));
    }
    write_csv(
        &args.out_path("table3.csv"),
        "module,gates,depth,area_nand2,tcrit_ps,pdyn_uw,paper_gates,paper_depth",
        &csv,
    );
    args.record_timing("table3", &run.stats);
}
