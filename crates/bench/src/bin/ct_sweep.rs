//! Ablation: sweeps the CDL Criticality Threshold (paper §3.5.2: "we find
//! that a CT of 8 gives the best outcome") and reports the CDS scheme's
//! relative performance overhead at each setting.

use tv_bench::{write_csv, HarnessArgs};
use tv_core::{run_evaluations, Experiment, RunConfig, Scheme};
use tv_timing::Voltage;
use tv_workloads::Benchmark;

const THRESHOLDS: [u32; 5] = [2, 4, 8, 16, 24];
const BENCHES: [Benchmark; 4] = [
    Benchmark::Libquantum,
    Benchmark::Astar,
    Benchmark::Sjeng,
    Benchmark::Mcf,
];

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "CT sweep — CDS relative performance overhead vs EP at 1.04 V ({} commits)\n",
        args.config.commits
    );
    print!("{:<12}", "bench");
    for ct in THRESHOLDS {
        print!(" {:>8}", format!("CT={ct}"));
    }
    println!();

    // One flat job bag: benchmark × threshold × {baseline, EP, CDS}.
    let specs: Vec<_> = BENCHES
        .into_iter()
        .flat_map(|bench| {
            THRESHOLDS.map(|ct| {
                let config = RunConfig {
                    criticality_threshold: ct,
                    ..args.config
                };
                (
                    Experiment::new(bench, Voltage::low_fault(), config),
                    vec![Scheme::ErrorPadding, Scheme::Cds],
                )
            })
        })
        .collect();
    let (evals, stats) = run_evaluations(&args.fleet(), &specs);

    let mut csv = Vec::new();
    for (bench, sweep) in BENCHES.iter().zip(evals.chunks(THRESHOLDS.len())) {
        print!("{:<12}", bench.name());
        let mut line = bench.name().to_string();
        for eval in sweep {
            let rel = eval.relative_perf_overhead(Scheme::Cds);
            print!(" {rel:>8.3}");
            line.push_str(&format!(",{rel:.4}"));
        }
        println!();
        csv.push(line);
    }
    write_csv(
        &args.out_path("ct_sweep.csv"),
        "bench,ct2,ct4,ct8,ct16,ct24",
        &csv,
    );
    args.record_timing("ct_sweep", &stats);
}
