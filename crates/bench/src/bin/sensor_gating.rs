//! Extension experiment: thermal/voltage sensor gating of the TEP
//! (paper §2.1.1: "The prediction also considers favorable conditions for
//! timing errors through the use of thermal and voltage sensors").
//!
//! With a temporally varying sensor, marginal PCs fault only in hot or
//! droopy windows. An armed predictor (threshold −0.8, nearly always on)
//! is compared against a disarmed-in-cool-windows configuration and a
//! quiescent-sensor baseline.

use tv_bench::{write_csv, HarnessArgs};
use tv_core::Scheme;
use tv_timing::{SensorModel, Voltage};
use tv_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    let bench = Benchmark::Bzip2;
    println!(
        "Sensor gating — {} at 0.97 V ({} commits)\n",
        bench, args.config.commits
    );
    println!(
        "{:<26} {:>8} {:>9} {:>9} {:>9}",
        "sensor", "FR(%)", "pred(%)", "replays", "ov%"
    );

    let configs: Vec<(&str, SensorModel)> = vec![
        ("quiescent", SensorModel::quiescent()),
        ("varying, armed (-0.8)", SensorModel::paper_default(args.config.seed)),
        (
            "varying, gated (+0.05)",
            SensorModel {
                arming_threshold: 0.05,
                ..SensorModel::paper_default(args.config.seed)
            },
        ),
    ];

    // One fleet job per sensor × scheme pair.
    let items: Vec<(SensorModel, Scheme)> = configs
        .iter()
        .flat_map(|&(_, sensor)| [(sensor, Scheme::FaultFree), (sensor, Scheme::Abs)])
        .collect();
    let run = args.fleet().map(items, |&(sensor, scheme)| {
        let mut pipe = scheme
            .pipeline_builder(bench, args.config.seed, Voltage::high_fault())
            .sensor(sensor)
            .build();
        pipe.warm_up(args.config.warmup);
        pipe.run(args.config.commits)
    });

    let mut csv = Vec::new();
    for ((label, _), pair) in configs.iter().zip(run.results.chunks(2)) {
        let (base, abs) = (&pair[0], &pair[1]);
        let fr = abs.fault_rate() * 100.0;
        let pred = 100.0 * abs.faults_predicted as f64 / abs.faults_total().max(1) as f64;
        let ov = (abs.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
        println!(
            "{label:<26} {fr:>8.2} {pred:>9.1} {:>9} {ov:>9.2}",
            abs.replays
        );
        csv.push(format!("{label},{fr:.3},{pred:.2},{},{ov:.3}", abs.replays));
    }
    println!(
        "\nan over-aggressive gate (arming only in hot windows) misses the\n\
         violations that strike as conditions turn, paying extra replays."
    );
    write_csv(
        &args.out_path("sensor_gating.csv"),
        "sensor,fault_rate_pct,predicted_pct,replays,abs_overhead_pct",
        &csv,
    );
    args.record_timing("sensor_gating", &run.stats);
}
