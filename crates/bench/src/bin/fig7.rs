//! Regenerates **Figure 7**: commonality in sensitized paths of four
//! microprocessor components (issue-queue select, AGEN, forward-check,
//! ALU) across six SPEC2000-int benchmark input streams (paper §S1.3).
//!
//! Methodology (paper §S1.2): for each dynamic instance of a static PC,
//! the *preceding* instruction's inputs first set the component's internal
//! logic state, then the instance's inputs are applied; the gates that
//! toggle on the second application are the instance's sensitized set.
//! φ/ψ commonality is accumulated per PC over "several repeated instances"
//! and averaged weighted by PC frequency.

use std::collections::HashMap;

use tv_bench::{write_csv, HarnessArgs};
use tv_netlist::components::{
    agen_inputs, agen32, alu_inputs, alu32, forward_check, issue_select32, select_inputs, AluOp,
};
use tv_netlist::{CommonalityAnalyzer, Netlist, Simulator};
use tv_workloads::{Spec2000, ValueSample, ValueStream};

/// Dynamic instances simulated per component × benchmark.
const INSTANCES: usize = 4_000;
/// Static-PC population per stream.
const NUM_PCS: usize = 64;
/// Instances accumulated per PC ("several repeated instances", §S1.2).
const PER_PC_CAP: u64 = 50;

type Encode = fn(&ValueSample) -> Vec<bool>;

fn main() {
    let args = HarnessArgs::parse();

    let components: Vec<(&str, Netlist, Encode, Encode)> = vec![
        (
            "IssueQSelect",
            issue_select32(),
            |s| select_inputs(s.predecessor[0] as u32),
            |s| select_inputs(s.request_vector),
        ),
        (
            "AGen",
            agen32(),
            |s| agen_inputs(s.predecessor[0] as u32, s.predecessor[1] as u16, 0),
            |s| agen_inputs(s.operands[0] as u32, s.operands[1] as u16, 0),
        ),
        (
            "ForwardCheck",
            forward_check(),
            |s| forward_inputs(s.predecessor),
            |s| forward_inputs(s.operands),
        ),
        (
            "ALU",
            alu32(),
            |s| alu_inputs(s.predecessor[0] as u32, s.predecessor[1] as u32, AluOp::Add),
            |s| alu_inputs(s.operands[0] as u32, s.operands[1] as u32, AluOp::Add),
        ),
    ];

    println!(
        "Figure 7 — commonality in sensitized paths ({INSTANCES} instances, ≤{PER_PC_CAP} per PC)\n"
    );
    print!("{:<14}", "component");
    for b in Spec2000::ALL {
        print!(" {:>8}", b.name());
    }
    println!(" {:>8}", "mean");

    let mut csv = Vec::new();
    for (name, netlist, encode_pred, encode) in &components {
        print!("{name:<14}");
        let mut line = name.to_string();
        let mut sum = 0.0;
        for bench in Spec2000::ALL {
            let mut sim = Simulator::new(netlist);
            let mut stream = ValueStream::new(bench, NUM_PCS, args.config.seed);
            let mut analyzer = CommonalityAnalyzer::new(netlist.gates().len());
            let mut per_pc: HashMap<u64, u64> = HashMap::new();
            for _ in 0..INSTANCES {
                let sample = stream.next_sample();
                let seen = per_pc.entry(sample.pc).or_insert(0);
                if *seen >= PER_PC_CAP {
                    continue;
                }
                *seen += 1;
                // Predecessor sets the internal state; the instance's own
                // application yields its sensitized gate set.
                sim.apply(&encode_pred(&sample));
                sim.apply(&encode(&sample));
                analyzer.record(sample.pc, sim.toggled());
            }
            let c = analyzer.finish();
            print!(" {:>8.3}", c.weighted_average);
            line.push_str(&format!(",{:.4}", c.weighted_average));
            sum += c.weighted_average;
        }
        let mean = sum / Spec2000::ALL.len() as f64;
        println!(" {mean:>8.3}");
        line.push_str(&format!(",{mean:.4}"));
        csv.push(line);
    }
    println!(
        "\npaper reports component averages of 87.4% (IQ select), 89% (AGEN),\n\
         92.4% (forward check) and 90% (ALU), with vortex the most common."
    );
    write_csv(
        &args.out_path("fig7.csv"),
        "component,bzip,gap,gzip,mcf,parser,vortex,mean",
        &csv,
    );
}

/// Encodes an operand pair as forward-check inputs: producer tags and
/// consumer tags derived from the pair, so tag-match patterns recur with
/// the per-PC values.
fn forward_inputs(ops: [u64; 2]) -> Vec<bool> {
    let mut v = Vec::with_capacity(4 * 7 + 4 + 8 * 7);
    for p in 0..4u64 {
        let tag = (ops[0] >> (7 * p)) & 0x7f;
        v.extend((0..7).map(|i| (tag >> i) & 1 == 1));
    }
    v.extend((0..4).map(|i| (ops[0] >> (28 + i)) & 1 == 1));
    for c in 0..8u64 {
        let tag = (ops[(c % 2) as usize] >> (7 * (c / 2))) & 0x7f;
        v.extend((0..7).map(|i| (tag >> i) & 1 == 1));
    }
    v
}
