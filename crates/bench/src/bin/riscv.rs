//! Real-program runner: executes RISC-V workloads through the full
//! pipeline under every scheme, with the golden-model oracle on and the
//! committed architectural end state differenced against the standalone
//! in-order executor.
//!
//! ```text
//! riscv [--workload NAME]...   riscv:<builtin|file.asm> or bare builtin
//!                              name (default: every built-in program)
//!       [--seed N]             workload/die seed          (default 42)
//!       [--low-vdd]            0.97 V instead of 1.04 V for faulty runs
//!       [--max-commits N]      per-run commit cap         (default 2 000 000)
//!       [--out DIR]            result directory           (default bench_results)
//!       [--cosim]              run each program's schemes as one
//!                              co-simulation bundle (shared frontend)
//!       [--procs N]            run on the multi-process sharded fleet
//! riscv --worker               cluster protocol worker (spawned by --procs)
//! ```
//!
//! Under `--cosim` every per-scheme column is bit-identical to a solo
//! run (the `tests/cosim_equiv.rs` contract) except `kcommits_per_sec`:
//! the six lanes share one interleaved wall-clock window, so each row
//! reports its lane's commits over the *bundle* wall time.
//!
//! Under `--procs N` each program's scheme sweep is one job on the
//! process fleet; every CSV column except the wall-clock-derived
//! `kcommits_per_sec` is bit-identical to the serial run.
//!
//! Writes one CSV row per `(workload, scheme)` cell to `riscv.csv` and
//! exits non-zero when any cell is not oracle-clean or its committed
//! register file / memory image differs from the executor's.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use tv_bench::harness::Cli;
use tv_bench::write_csv;
use tv_core::{build_cosim, run_groups, worker_loop, ClusterConfig, Scheme, Workload};
use tv_timing::Voltage;
use tv_uarch::{Pipeline, SimStats};
use tv_workloads::riscv::RiscvMachine;

struct Args {
    workloads: Vec<Workload>,
    seed: u64,
    vdd: Voltage,
    max_commits: u64,
    out: PathBuf,
    cosim: bool,
    procs: Option<usize>,
}

fn parse_workload(name: &str) -> Result<Workload, String> {
    // Accept both `riscv:matmul` and bare `matmul`.
    let workload = Workload::parse(name).or_else(|e| Workload::builtin(name).ok_or(e))?;
    if !workload.is_riscv() {
        return Err(format!(
            "{name}: this runner takes RISC-V programs; \
             synthetic benchmarks go through the figure harnesses"
        ));
    }
    Ok(workload)
}

fn parse_args() -> Args {
    let mut parsed = Args {
        workloads: Vec::new(),
        seed: 42,
        vdd: Voltage::high_fault(),
        max_commits: 2_000_000,
        out: PathBuf::from("bench_results"),
        cosim: false,
        procs: None,
    };
    let mut cli = Cli::new(
        "riscv",
        "riscv [--workload NAME]... [--seed N] [--low-vdd] [--max-commits N] \
         [--out DIR] [--cosim] [--procs N] | riscv --worker",
    );
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--workload" => {
                let name = cli.value("--workload");
                match parse_workload(&name) {
                    Ok(w) => parsed.workloads.push(w),
                    Err(e) => cli.fail(&format!("--workload {e}")),
                }
            }
            "--seed" => parsed.seed = cli.parse("--seed"),
            "--low-vdd" => parsed.vdd = Voltage::low_fault(),
            "--max-commits" => parsed.max_commits = cli.parse("--max-commits"),
            "--out" => parsed.out = PathBuf::from(cli.value("--out")),
            "--cosim" => parsed.cosim = true,
            "--procs" => parsed.procs = Some(cli.parse("--procs")),
            other => cli.unknown(other),
        }
    }
    if parsed.workloads.is_empty() {
        parsed.workloads = Workload::builtin_names()
            .into_iter()
            .map(|n| Workload::builtin(n).expect("built-in program"))
            .collect();
    }
    parsed
}

/// Renders one `(workload, scheme)` cell as its CSV row — pure, no
/// printing, so it can run inside a cluster worker whose stdout is the
/// protocol channel.
#[allow(clippy::too_many_arguments)]
fn cell_row(
    workload: &Workload,
    scheme: Scheme,
    seed: u64,
    vdd: Voltage,
    stats: &SimStats,
    wall_s: f64,
    pipe: &Pipeline,
    ref_regs: &[u64],
    ref_mem: &[(u64, u64)],
) -> String {
    let report = pipe.oracle_report().expect("oracle enabled");
    let oracle_clean = report.clean();
    let regs_match = pipe.arch_regs().is_some_and(|r| r[..] == ref_regs[..]);
    let mem_match = pipe.memory_image().is_some_and(|m| m == ref_mem);
    let kcommits = stats.committed as f64 / wall_s / 1e3;
    format!(
        "{},{},{:.3},{},{},{},{},{},{},{},{},{:.1}",
        workload.name(),
        scheme.name(),
        vdd.volts(),
        seed,
        stats.committed,
        stats.cycles,
        stats.faults_total(),
        stats.replays,
        oracle_clean,
        regs_match,
        mem_match,
        kcommits,
    )
}

/// Runs one workload's full scheme sweep (solo or co-sim) to CSV rows,
/// one per scheme in `Scheme::ALL` order.
fn workload_rows(workload: &Workload, seed: u64, vdd: Voltage, max_commits: u64, cosim: bool) -> Vec<String> {
    // Reference end state from the standalone in-order executor.
    let Workload::Riscv { program, .. } = workload else {
        unreachable!("callers admit only RISC-V workloads");
    };
    let mut exec = RiscvMachine::new(program.clone());
    exec.run_to_halt(max_commits);
    let ref_regs: Vec<u64> = exec.regs().iter().map(|&r| u64::from(r)).collect();
    let ref_mem: Vec<(u64, u64)> = exec
        .mem_image()
        .into_iter()
        .map(|(a, w)| (u64::from(a), u64::from(w)))
        .collect();

    if cosim {
        // All six schemes as one bundle: the frontend and the
        // fault-calibration probe are paid once; per-scheme state is
        // bit-identical to a solo run by the co-sim contract.
        let mut cosim = build_cosim(workload, seed, vdd, &Scheme::ALL, |_, b| b.oracle(true));
        let t0 = Instant::now();
        let stats = cosim.run_to_halt(max_commits);
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        Scheme::ALL
            .into_iter()
            .enumerate()
            .map(|(i, scheme)| {
                cell_row(
                    workload, scheme, seed, vdd, &stats[i], wall_s, cosim.lane(i), &ref_regs,
                    &ref_mem,
                )
            })
            .collect()
    } else {
        Scheme::ALL
            .into_iter()
            .map(|scheme| {
                let mut pipe = scheme
                    .pipeline_builder_for(workload, seed, vdd)
                    .oracle(true)
                    .build();
                let t0 = Instant::now();
                let stats = pipe.run_to_halt(max_commits);
                let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
                cell_row(
                    workload, scheme, seed, vdd, &stats, wall_s, &pipe, &ref_regs, &ref_mem,
                )
            })
            .collect()
    }
}

/// Prints the human-readable line for a finished cell row and returns
/// whether the cell passed (oracle clean + end state matches).
fn print_and_grade(row: &str) -> bool {
    let f: Vec<&str> = row.split(',').collect();
    let (oracle_clean, regs_match, mem_match) =
        (f[8] == "true", f[9] == "true", f[10] == "true");
    println!(
        "  {:<22} {:>9}: {:>8} commits, {:>9} cycles, {} faults, \
         {:>7} kcommits/s, oracle {}{}",
        f[0],
        f[1],
        f[4],
        f[5],
        f[6],
        f[11],
        if oracle_clean { "clean" } else { "CORRUPT" },
        if regs_match && mem_match {
            ""
        } else {
            ", END-STATE MISMATCH"
        },
    );
    oracle_clean && regs_match && mem_match
}

/// Serializes the sweep as a one-line cluster worker context.
fn riscv_ctx(args: &Args) -> Result<String, String> {
    let mut names = Vec::with_capacity(args.workloads.len());
    for w in &args.workloads {
        let name = w.name();
        if name.contains(|c: char| c.is_whitespace() || c == ',') {
            return Err(format!(
                "workload name `{name}` cannot cross the cluster protocol \
                 (contains whitespace or `,`)"
            ));
        }
        names.push(name);
    }
    Ok(format!(
        "riscv seed={} vdd={} max={} cosim={} workloads={}",
        args.seed,
        args.vdd.volts(),
        args.max_commits,
        u8::from(args.cosim),
        names.join(","),
    ))
}

/// Parses a [`riscv_ctx`] line back into worker-side parameters.
fn parse_riscv_ctx(ctx: &str) -> Result<Args, String> {
    let ctx = ctx
        .strip_prefix("riscv ")
        .ok_or_else(|| format!("not a riscv ctx: {ctx}"))?;
    let mut args = Args {
        workloads: Vec::new(),
        seed: 42,
        vdd: Voltage::high_fault(),
        max_commits: 2_000_000,
        out: PathBuf::new(),
        cosim: false,
        procs: None,
    };
    for word in ctx.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| format!("malformed ctx word: {word}"))?;
        match key {
            "seed" => args.seed = value.parse().map_err(|_| format!("bad seed: {value}"))?,
            "vdd" => {
                args.vdd = Voltage::new(
                    value.parse::<f64>().map_err(|_| format!("bad vdd: {value}"))?,
                )
            }
            "max" => {
                args.max_commits = value.parse().map_err(|_| format!("bad max: {value}"))?
            }
            "cosim" => args.cosim = value == "1",
            "workloads" => {
                args.workloads = value
                    .split(',')
                    .filter(|n| !n.is_empty())
                    .map(parse_workload)
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown ctx field: {other}")),
        }
    }
    if args.workloads.is_empty() {
        return Err("riscv ctx carries no workloads".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    // Worker mode speaks the cluster protocol on stdin/stdout and must
    // be dispatched before anything can print to stdout.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        return worker_loop(parse_riscv_ctx, |args: &Args, spec| {
            let wi: usize = spec
                .parse()
                .map_err(|_| format!("bad workload index: {spec}"))?;
            let workload = args
                .workloads
                .get(wi)
                .ok_or_else(|| format!("workload index out of range: {wi}"))?;
            Ok(workload_rows(
                workload,
                args.seed,
                args.vdd,
                args.max_commits,
                args.cosim,
            ))
        });
    }

    let args = parse_args();
    println!(
        "RISC-V pipeline runner — {} programs x {} schemes, seed {}, {:.3} V faulty",
        args.workloads.len(),
        Scheme::ALL.len(),
        args.seed,
        args.vdd.volts(),
    );

    // One job per program: the full scheme sweep, reassembled in
    // submission order so the CSV matches the serial run row-for-row.
    let mut groups: Vec<Option<Vec<String>>> = vec![None; args.workloads.len()];
    if let Some(procs) = args.procs {
        println!("process fleet: {procs} workers");
        let ctx = match riscv_ctx(&args) {
            Ok(ctx) => ctx,
            Err(e) => {
                eprintln!("riscv --procs: {e}");
                return ExitCode::FAILURE;
            }
        };
        let specs: Vec<String> = (0..args.workloads.len()).map(|i| i.to_string()).collect();
        let run = run_groups(&ClusterConfig::new(procs), &ctx, &specs, |gid, rows| {
            if rows.len() != Scheme::ALL.len() {
                return Err(format!(
                    "workload {gid} returned {} rows for {} schemes",
                    rows.len(),
                    Scheme::ALL.len(),
                ));
            }
            groups[gid] = Some(rows.to_vec());
            Ok(())
        });
        if let Err(e) = run {
            eprintln!("riscv cluster run failed: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        for (i, workload) in args.workloads.iter().enumerate() {
            groups[i] = Some(workload_rows(
                workload,
                args.seed,
                args.vdd,
                args.max_commits,
                args.cosim,
            ));
        }
    }

    let mut rows = Vec::new();
    let mut failed = false;
    for group in groups {
        for row in group.expect("every workload produced rows") {
            failed |= !print_and_grade(&row);
            rows.push(row);
        }
    }

    std::fs::create_dir_all(&args.out).expect("create output directory");
    write_csv(
        &args.out.join("riscv.csv"),
        "workload,scheme,vdd,seed,commits,cycles,faults,replays,oracle_clean,regs_match,mem_match,kcommits_per_sec",
        &rows,
    );

    if failed {
        eprintln!("FAIL: at least one cell corrupted or diverged from the executor");
        return ExitCode::FAILURE;
    }
    println!("all programs oracle-clean with executor-identical end states");
    ExitCode::SUCCESS
}
