//! Real-program runner: executes RISC-V workloads through the full
//! pipeline under every scheme, with the golden-model oracle on and the
//! committed architectural end state differenced against the standalone
//! in-order executor.
//!
//! ```text
//! riscv [--workload NAME]...   riscv:<builtin|file.asm> or bare builtin
//!                              name (default: every built-in program)
//!       [--seed N]             workload/die seed          (default 42)
//!       [--low-vdd]            0.97 V instead of 1.04 V for faulty runs
//!       [--max-commits N]      per-run commit cap         (default 2 000 000)
//!       [--out DIR]            result directory           (default bench_results)
//!       [--cosim]              run each program's schemes as one
//!                              co-simulation bundle (shared frontend)
//! ```
//!
//! Under `--cosim` every per-scheme column is bit-identical to a solo
//! run (the `tests/cosim_equiv.rs` contract) except `kcommits_per_sec`:
//! the six lanes share one interleaved wall-clock window, so each row
//! reports its lane's commits over the *bundle* wall time.
//!
//! Writes one CSV row per `(workload, scheme)` cell to `riscv.csv` and
//! exits non-zero when any cell is not oracle-clean or its committed
//! register file / memory image differs from the executor's.

use std::path::PathBuf;
use std::time::Instant;

use tv_bench::harness::Cli;
use tv_bench::write_csv;
use tv_core::{build_cosim, Scheme, Workload};
use tv_timing::Voltage;
use tv_uarch::{Pipeline, SimStats};
use tv_workloads::riscv::RiscvMachine;

struct Args {
    workloads: Vec<Workload>,
    seed: u64,
    vdd: Voltage,
    max_commits: u64,
    out: PathBuf,
    cosim: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        workloads: Vec::new(),
        seed: 42,
        vdd: Voltage::high_fault(),
        max_commits: 2_000_000,
        out: PathBuf::from("bench_results"),
        cosim: false,
    };
    let mut cli = Cli::new(
        "riscv",
        "riscv [--workload NAME]... [--seed N] [--low-vdd] [--max-commits N] \
         [--out DIR] [--cosim]",
    );
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--workload" => {
                let name = cli.value("--workload");
                // Accept both `riscv:matmul` and bare `matmul`.
                let workload = match Workload::parse(&name).or_else(|e| {
                    Workload::builtin(&name).ok_or(e)
                }) {
                    Ok(w) => w,
                    Err(e) => cli.fail(&format!("--workload: {e}")),
                };
                if !workload.is_riscv() {
                    cli.fail(&format!(
                        "--workload {name}: this runner takes RISC-V programs; \
                         synthetic benchmarks go through the figure harnesses"
                    ));
                }
                parsed.workloads.push(workload);
            }
            "--seed" => parsed.seed = cli.parse("--seed"),
            "--low-vdd" => parsed.vdd = Voltage::low_fault(),
            "--max-commits" => parsed.max_commits = cli.parse("--max-commits"),
            "--out" => parsed.out = PathBuf::from(cli.value("--out")),
            "--cosim" => parsed.cosim = true,
            other => cli.unknown(other),
        }
    }
    if parsed.workloads.is_empty() {
        parsed.workloads = Workload::builtin_names()
            .into_iter()
            .map(|n| Workload::builtin(n).expect("built-in program"))
            .collect();
    }
    parsed
}

/// Grades one `(workload, scheme)` cell — oracle verdict plus end-state
/// diff against the executor — printing its line and appending its CSV
/// row. Returns whether the cell passed.
#[allow(clippy::too_many_arguments)]
fn grade_cell(
    args: &Args,
    workload: &Workload,
    scheme: Scheme,
    stats: &SimStats,
    wall_s: f64,
    pipe: &Pipeline,
    ref_regs: &[u64],
    ref_mem: &[(u64, u64)],
    rows: &mut Vec<String>,
) -> bool {
    let report = pipe.oracle_report().expect("oracle enabled");
    let oracle_clean = report.clean();
    let regs_match = pipe.arch_regs().is_some_and(|r| r[..] == ref_regs[..]);
    let mem_match = pipe.memory_image().is_some_and(|m| m == ref_mem);
    let kcommits = stats.committed as f64 / wall_s / 1e3;
    println!(
        "  {:<22} {:>9}: {:>8} commits, {:>9} cycles, {} faults, \
         {:>7.1} kcommits/s, oracle {}{}",
        workload.name(),
        scheme.name(),
        stats.committed,
        stats.cycles,
        stats.faults_total(),
        kcommits,
        if oracle_clean { "clean" } else { "CORRUPT" },
        if regs_match && mem_match {
            ""
        } else {
            ", END-STATE MISMATCH"
        },
    );
    rows.push(format!(
        "{},{},{:.3},{},{},{},{},{},{},{},{},{:.1}",
        workload.name(),
        scheme.name(),
        args.vdd.volts(),
        args.seed,
        stats.committed,
        stats.cycles,
        stats.faults_total(),
        stats.replays,
        oracle_clean,
        regs_match,
        mem_match,
        kcommits,
    ));
    oracle_clean && regs_match && mem_match
}

fn main() {
    let args = parse_args();
    println!(
        "RISC-V pipeline runner — {} programs x {} schemes, seed {}, {:.3} V faulty",
        args.workloads.len(),
        Scheme::ALL.len(),
        args.seed,
        args.vdd.volts(),
    );

    let mut rows = Vec::new();
    let mut failed = false;
    for workload in &args.workloads {
        // Reference end state from the standalone in-order executor.
        let Workload::Riscv { program, .. } = workload else {
            unreachable!("parse_args admits only RISC-V workloads");
        };
        let mut exec = RiscvMachine::new(program.clone());
        exec.run_to_halt(args.max_commits);
        let ref_regs: Vec<u64> = exec.regs().iter().map(|&r| u64::from(r)).collect();
        let ref_mem: Vec<(u64, u64)> = exec
            .mem_image()
            .into_iter()
            .map(|(a, w)| (u64::from(a), u64::from(w)))
            .collect();

        if args.cosim {
            // All six schemes as one bundle: the frontend and the
            // fault-calibration probe are paid once; per-scheme state is
            // bit-identical to a solo run by the co-sim contract.
            let mut cosim = build_cosim(workload, args.seed, args.vdd, &Scheme::ALL, |_, b| {
                b.oracle(true)
            });
            let t0 = Instant::now();
            let stats = cosim.run_to_halt(args.max_commits);
            let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
            for (i, scheme) in Scheme::ALL.into_iter().enumerate() {
                failed |= !grade_cell(
                    &args,
                    workload,
                    scheme,
                    &stats[i],
                    wall_s,
                    cosim.lane(i),
                    &ref_regs,
                    &ref_mem,
                    &mut rows,
                );
            }
        } else {
            for scheme in Scheme::ALL {
                let mut pipe = scheme
                    .pipeline_builder_for(workload, args.seed, args.vdd)
                    .oracle(true)
                    .build();
                let t0 = Instant::now();
                let stats = pipe.run_to_halt(args.max_commits);
                let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
                failed |= !grade_cell(
                    &args, workload, scheme, &stats, wall_s, &pipe, &ref_regs, &ref_mem, &mut rows,
                );
            }
        }
    }

    std::fs::create_dir_all(&args.out).expect("create output directory");
    write_csv(
        &args.out.join("riscv.csv"),
        "workload,scheme,vdd,seed,commits,cycles,faults,replays,oracle_clean,regs_match,mem_match,kcommits_per_sec",
        &rows,
    );

    if failed {
        eprintln!("FAIL: at least one cell corrupted or diverged from the executor");
        std::process::exit(1);
    }
    println!("all programs oracle-clean with executor-identical end states");
}
