//! The campaign server binary: `tv-serve` over a result-store directory.
//!
//! ```text
//! serve [--addr HOST:PORT]   bind address      (default 127.0.0.1:7713;
//!                            port 0 picks a free port)
//!       [--store DIR]        result store      (default bench_results/store)
//!       [--workers N]        fleet workers     (default: one per core)
//!       [--http-workers N]   connections in service concurrently (default 8)
//!       [--procs N]          run campaigns on N worker *processes* (the
//!                            multi-process sharded fleet) instead of
//!                            in-process threads
//!       [--io-timeout SECS]  per-connection socket timeout (default 10;
//!                            0 disables)
//!       [--max-body BYTES]   request-body cap, 413 above it (default 1 MiB)
//!       [--addr-file PATH]   write the bound address to PATH (for scripts
//!                            binding port 0)
//! serve --fsck [--store DIR] offline store check: verify every entry's
//!                            checksum sidecar, evict corrupt ones, print
//!                            a JSON report and exit (0 = store healthy,
//!                            1 = entries were evicted)
//! serve --worker             cluster protocol worker (spawned by --procs)
//! ```
//!
//! Prints `listening on http://ADDR` once bound, then serves until
//! `POST /shutdown` or SIGTERM (graceful drain: stop accepting, finish
//! in-flight requests, exit 0). A `kill -9` is also safe — in-flight
//! campaign journals survive in the store and resume on the next request
//! for the same spec.
//!
//! Endpoints: `POST /campaign` (JSON spec -> streamed verdict CSV, with
//! `X-Cache: hit|miss|coalesced` and `X-Store-Key` headers),
//! `GET /stats`, `GET /healthz`, `GET /health` (pool/store JSON),
//! `GET /fsck` (on-demand store verification), `POST /shutdown`.

use std::path::PathBuf;
use std::time::Duration;

use tv_bench::harness::Cli;
use tv_serve::{ServeConfig, Server};

/// `serve --fsck`: verify-and-heal the store without serving.
fn run_fsck(store_dir: &std::path::Path) -> std::process::ExitCode {
    let store = match tv_serve::ResultStore::open(store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot open store {}: {e}", store_dir.display());
            return std::process::ExitCode::from(2);
        }
    };
    let report = store.fsck();
    let mut o = tv_serve::json::Obj::new();
    o.str("store", &store_dir.display().to_string())
        .u64("checked", report.checked as u64)
        .u64("ok", report.ok as u64)
        .u64("evicted", report.evicted.len() as u64)
        .u64("journals", report.journals as u64);
    println!("{}", o.render());
    if report.evicted.is_empty() {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}

fn main() -> std::process::ExitCode {
    // Chaos injection (TV_CHAOS=<seed>:<profile>) covers the server's
    // connection handling and, via derived worker schedules, --procs
    // campaign workers.
    if let Err(e) = tv_core::chaos::install_from_env() {
        eprintln!("serve: {e}");
        return std::process::ExitCode::from(2);
    }
    // Worker mode speaks the cluster protocol on stdin/stdout and must
    // be dispatched before anything can print to stdout. The server
    // spawns `serve --worker` processes when started with `--procs`.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        return tv_core::campaign_worker();
    }
    let mut config = ServeConfig {
        addr: "127.0.0.1:7713".to_string(),
        ..ServeConfig::default()
    };
    let mut addr_file: Option<PathBuf> = None;
    let mut fsck_only = false;
    let mut cli = Cli::new(
        "serve",
        "serve [--addr HOST:PORT] [--store DIR] [--workers N] [--http-workers N] \
         [--procs N] [--io-timeout SECS] [--max-body BYTES] [--addr-file PATH] \
         | serve --fsck [--store DIR] | serve --worker",
    );
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--fsck" => fsck_only = true,
            "--addr" => config.addr = cli.value("--addr"),
            "--store" => config.store_dir = PathBuf::from(cli.value("--store")),
            "--workers" => config.fleet_workers = cli.parse("--workers"),
            "--http-workers" => config.http_workers = cli.parse("--http-workers"),
            "--procs" => config.procs = cli.parse("--procs"),
            "--io-timeout" => {
                let secs: u64 = cli.parse("--io-timeout");
                config.io_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--max-body" => config.max_body = cli.parse("--max-body"),
            "--addr-file" => addr_file = Some(PathBuf::from(cli.value("--addr-file"))),
            other => cli.unknown(other),
        }
    }

    if fsck_only {
        return run_fsck(&config.store_dir);
    }

    // Graceful drain: SIGTERM latches a flag; the monitor thread then
    // triggers the normal shutdown path (stop accepting, finish
    // in-flight requests) and `wait()` below returns for a clean exit 0.
    tv_serve::install_sigterm_handler();
    let server = match Server::start(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot start on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    std::thread::spawn(move || loop {
        if tv_serve::sigterm_received() {
            eprintln!("serve: SIGTERM — draining (no new connections, finishing in-flight)");
            let _ = tv_serve::http::request(
                addr,
                "POST",
                "/shutdown",
                b"",
                Duration::from_secs(10),
            );
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    println!("listening on http://{addr}");
    println!(
        "store {} | fleet workers {} | http workers {}{}",
        config.store_dir.display(),
        if config.fleet_workers == 0 {
            "auto".to_string()
        } else {
            config.fleet_workers.to_string()
        },
        config.http_workers,
        if config.procs > 0 {
            format!(" | worker procs {}", config.procs)
        } else {
            String::new()
        },
    );
    if let Some(path) = addr_file {
        // Atomic so a script polling for the file never reads half an
        // address.
        tv_core::write_atomic_str(&path, &format!("{addr}\n")).expect("write addr file");
    }
    server.wait();
    if tv_serve::sigterm_received() {
        println!("serve: drained after SIGTERM");
    } else {
        println!("serve: shut down cleanly");
    }
    std::process::ExitCode::SUCCESS
}
