//! Scheme-equivalence differential audit: every tolerance scheme must
//! commit the identical architectural instruction stream, with the
//! cycle-level invariant auditor reporting zero violations.
//!
//! ```text
//! --commits N       measured commits per run        (default 20 000)
//! --warmup N        warm-up commits per run         (default 5 000)
//! --seed N          base seed; runs use N and N+1   (default 42)
//! --out DIR         result directory                (default bench_results)
//! --workers N       fleet worker threads
//! --basic           Basic audit level (default: Full)
//! --cosim           run each tuple's schemes as one co-simulation job
//!                   (shared frontend, N timing lanes; rows bit-identical
//!                   to solo mode by the tests/cosim_equiv.rs contract)
//! --fast            CI preset: 1 benchmark x 4 schemes x 2 seeds, 8k commits
//! --workload NAME   diff a single workload instead of the benchmark sweep;
//!                   NAME is a benchmark or riscv:<program|file.asm>, and
//!                   RISC-V workloads also run the golden-model oracle
//! --procs N         run on the multi-process sharded fleet (one job per
//!                   tuple; report identical to the in-process run)
//! --worker          cluster protocol worker mode (spawned by --procs)
//! ```
//!
//! Exits non-zero on any stream mismatch or invariant violation.

use std::path::PathBuf;

use tv_bench::harness::Cli;
use tv_bench::write_csv;
use tv_core::{
    run_differential, run_differential_cluster, ClusterConfig, DiffConfig, DiffTuple, Fleet,
    Scheme, Workload,
};
use tv_timing::Voltage;
use tv_uarch::AuditLevel;
use tv_workloads::Benchmark;

struct Args {
    commits: u64,
    warmup: u64,
    seed: u64,
    out: PathBuf,
    workers: Option<usize>,
    audit: AuditLevel,
    cosim: bool,
    fast: bool,
    workload: Option<Workload>,
    procs: Option<usize>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        commits: 20_000,
        warmup: 5_000,
        seed: 42,
        out: PathBuf::from("bench_results"),
        workers: None,
        audit: AuditLevel::Full,
        cosim: false,
        fast: false,
        workload: None,
        procs: None,
    };
    let mut cli = Cli::new(
        "audit_diff",
        "audit_diff [--commits N] [--warmup N] [--seed N] [--out DIR] [--workers N] \
         [--basic] [--cosim] [--fast] [--workload NAME] [--procs N] | audit_diff --worker",
    );
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--commits" => parsed.commits = cli.parse("--commits"),
            "--warmup" => parsed.warmup = cli.parse("--warmup"),
            "--seed" => parsed.seed = cli.parse("--seed"),
            "--out" => parsed.out = PathBuf::from(cli.value("--out")),
            "--workers" => parsed.workers = Some(cli.parse("--workers")),
            "--basic" => parsed.audit = AuditLevel::Basic,
            "--cosim" => parsed.cosim = true,
            "--fast" => parsed.fast = true,
            "--workload" => {
                let name = cli.value("--workload");
                match Workload::parse(&name) {
                    Ok(w) => parsed.workload = Some(w),
                    Err(e) => cli.fail(&format!("--workload: {e}")),
                }
            }
            "--procs" => parsed.procs = Some(cli.parse("--procs")),
            other => cli.unknown(other),
        }
    }
    parsed
}

fn main() -> std::process::ExitCode {
    // Worker mode speaks the cluster protocol on stdin/stdout and must
    // be dispatched before anything can print to stdout.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        return tv_core::diff_worker();
    }
    let args = parse_args();
    let seeds = [args.seed, args.seed + 1];
    let oracle = args.workload.as_ref().is_some_and(Workload::is_riscv);
    let (tuples, schemes, commits, warmup) = if let Some(workload) = &args.workload {
        (
            DiffTuple::sweep_workloads(
                std::slice::from_ref(workload),
                &[Voltage::low_fault(), Voltage::high_fault()],
                &seeds,
            ),
            Scheme::ALL.to_vec(),
            args.commits,
            args.warmup,
        )
    } else if args.fast {
        (
            DiffTuple::sweep(&[Benchmark::Gcc], &[Voltage::high_fault()], &seeds),
            vec![Scheme::FaultFree, Scheme::Razor, Scheme::ErrorPadding, Scheme::Abs],
            args.commits.min(8_000),
            args.warmup.min(2_000),
        )
    } else {
        (
            DiffTuple::sweep(
                &[Benchmark::Gcc, Benchmark::Astar],
                &[Voltage::low_fault(), Voltage::high_fault()],
                &seeds,
            ),
            Scheme::ALL.to_vec(),
            args.commits,
            args.warmup,
        )
    };
    let cfg = DiffConfig {
        commits,
        warmup,
        audit: args.audit,
        schemes: schemes.clone(),
        oracle,
        cosim: args.cosim,
    };
    println!(
        "scheme-equivalence differential audit — {} tuples x {} schemes, \
         {} commits (+{} warm-up) per run, {:?} audit{}",
        tuples.len(),
        cfg.schemes.len(),
        cfg.commits,
        cfg.warmup,
        args.audit,
        if cfg.cosim { ", co-sim jobs" } else { "" },
    );

    let report = if let Some(procs) = args.procs {
        println!("process fleet: {procs} workers");
        match run_differential_cluster(&ClusterConfig::new(procs), &tuples, &cfg) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("audit_diff cluster run failed: {e}");
                return std::process::ExitCode::FAILURE;
            }
        }
    } else {
        let fleet = match args.workers {
            Some(n) => Fleet::new(n),
            None => Fleet::auto(),
        }
        .with_progress(true);
        run_differential(&fleet, &tuples, &cfg)
    };

    let mut rows = Vec::new();
    for group in report.runs.chunks(cfg.schemes.len()) {
        let reference = group.first().expect("non-empty group").stream_hash;
        for run in group {
            rows.push(format!(
                "{},{:.3},{},{},{},{},{:016x},{},{},{},{}",
                run.workload,
                run.vdd.volts(),
                run.scheme.name(),
                run.seed,
                run.commits,
                run.cycles,
                run.stream_hash,
                run.audit_cycles,
                run.audit_checks,
                run.audit_violations,
                run.stream_hash == reference,
            ));
        }
    }
    std::fs::create_dir_all(&args.out).expect("create output directory");
    write_csv(
        &args.out.join("audit_diff.csv"),
        "bench,vdd,scheme,seed,commits,cycles,stream_hash,audit_cycles,audit_checks,audit_violations,stream_match",
        &rows,
    );

    let checks: u64 = report.runs.iter().map(|r| r.audit_checks).sum();
    println!(
        "{} runs, {} invariant checks, {} violations, {} stream mismatches",
        report.runs.len(),
        checks,
        report.total_violations(),
        report.mismatches.len(),
    );
    for m in &report.mismatches {
        eprintln!("STREAM MISMATCH: {m}");
    }
    for run in report.runs.iter().filter(|r| r.audit_violations > 0) {
        eprintln!(
            "VIOLATIONS: {}/{}@{:.3}V seed {}: {} ({})",
            run.workload,
            run.scheme.name(),
            run.vdd.volts(),
            run.seed,
            run.audit_violations,
            run.first_violation.as_deref().unwrap_or("?"),
        );
    }
    let corrupted: Vec<_> = report
        .runs
        .iter()
        .filter(|r| r.oracle_clean == Some(false))
        .collect();
    for run in &corrupted {
        eprintln!(
            "ORACLE CORRUPTION: {}/{}@{:.3}V seed {}",
            run.workload,
            run.scheme.name(),
            run.vdd.volts(),
            run.seed,
        );
    }
    if !report.clean() || !corrupted.is_empty() {
        return std::process::ExitCode::FAILURE;
    }
    println!("all schemes commit identical architectural streams; all invariants hold");
    std::process::ExitCode::SUCCESS
}
