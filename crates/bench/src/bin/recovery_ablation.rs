//! Ablation: Razor recovery mechanism — in-situ replay (the paper's
//! Razor-style recovery, default) versus a full pipeline flush. The flush
//! model squashes the faulty instruction and everything younger, which
//! multiplies the per-violation cost; the comparison quantifies how much
//! the recovery mechanism itself matters to the Razor baseline.

use tv_bench::{write_csv, HarnessArgs};
use tv_core::Scheme;
use tv_timing::Voltage;
use tv_uarch::{CoreConfig, RecoveryModel};
use tv_workloads::Benchmark;

const BENCHES: [Benchmark; 4] = [
    Benchmark::Astar,
    Benchmark::Bzip2,
    Benchmark::Sjeng,
    Benchmark::Mcf,
];

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Recovery ablation — Razor performance overhead at 0.97 V ({} commits)\n",
        args.config.commits
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "bench", "in-situ%", "flush%", "ratio"
    );

    // One fleet job per bench × recovery × scheme; results come back in
    // submission order, so chunks of four reassemble each bench's row.
    let items: Vec<(Benchmark, RecoveryModel, Scheme)> = BENCHES
        .iter()
        .flat_map(|&bench| {
            [RecoveryModel::InSitu, RecoveryModel::Flush].into_iter().flat_map(
                move |recovery| {
                    [
                        (bench, recovery, Scheme::FaultFree),
                        (bench, recovery, Scheme::Razor),
                    ]
                },
            )
        })
        .collect();
    let run = args.fleet().map(items, |&(bench, recovery, scheme)| {
        let cfg = CoreConfig {
            recovery,
            replay_latency: if recovery == RecoveryModel::Flush { 6 } else { 3 },
            ..CoreConfig::core1()
        };
        let mut pipe = scheme
            .pipeline_builder(bench, args.config.seed, Voltage::high_fault())
            .config(cfg)
            .build();
        pipe.warm_up(args.config.warmup);
        pipe.run(args.config.commits).cycles
    });

    let mut csv = Vec::new();
    for (bench, group) in BENCHES.iter().zip(run.results.chunks(4)) {
        // group = [insitu base, insitu razor, flush base, flush razor]
        let overheads: Vec<f64> = group
            .chunks(2)
            .map(|pair| (pair[1] as f64 / pair[0] as f64 - 1.0) * 100.0)
            .collect();
        let ratio = overheads[1] / overheads[0].max(1e-9);
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>9.1}x",
            bench.name(),
            overheads[0],
            overheads[1],
            ratio
        );
        csv.push(format!(
            "{},{:.3},{:.3},{:.2}",
            bench.name(),
            overheads[0],
            overheads[1],
            ratio
        ));
    }
    write_csv(
        &args.out_path("recovery_ablation.csv"),
        "bench,insitu_pct,flush_pct,ratio",
        &csv,
    );
    args.record_timing("recovery_ablation", &run.stats);
}
