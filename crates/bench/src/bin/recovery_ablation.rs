//! Ablation: Razor recovery mechanism — in-situ replay (the paper's
//! Razor-style recovery, default) versus a full pipeline flush. The flush
//! model squashes the faulty instruction and everything younger, which
//! multiplies the per-violation cost; the comparison quantifies how much
//! the recovery mechanism itself matters to the Razor baseline.

use tv_bench::{write_csv, HarnessArgs};
use tv_core::Scheme;
use tv_timing::Voltage;
use tv_uarch::{CoreConfig, RecoveryModel};
use tv_workloads::Benchmark;

const BENCHES: [Benchmark; 4] = [
    Benchmark::Astar,
    Benchmark::Bzip2,
    Benchmark::Sjeng,
    Benchmark::Mcf,
];

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Recovery ablation — Razor performance overhead at 0.97 V ({} commits)\n",
        args.config.commits
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "bench", "in-situ%", "flush%", "ratio"
    );

    let mut csv = Vec::new();
    for bench in BENCHES {
        let mut overheads = Vec::new();
        for recovery in [RecoveryModel::InSitu, RecoveryModel::Flush] {
            let cfg = CoreConfig {
                recovery,
                replay_latency: if recovery == RecoveryModel::Flush { 6 } else { 3 },
                ..CoreConfig::core1()
            };
            let run = |scheme: Scheme| {
                let mut pipe = scheme
                    .pipeline_builder(bench, args.config.seed, Voltage::high_fault())
                    .config(cfg.clone())
                    .build();
                pipe.warm_up(args.config.warmup);
                pipe.run(args.config.commits).cycles
            };
            let base = run(Scheme::FaultFree);
            let razor = run(Scheme::Razor);
            overheads.push((razor as f64 / base as f64 - 1.0) * 100.0);
        }
        let ratio = overheads[1] / overheads[0].max(1e-9);
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>9.1}x",
            bench.name(),
            overheads[0],
            overheads[1],
            ratio
        );
        csv.push(format!(
            "{},{:.3},{:.3},{:.2}",
            bench.name(),
            overheads[0],
            overheads[1],
            ratio
        ));
    }
    write_csv(
        &args.out_path("recovery_ablation.csv"),
        "bench,insitu_pct,flush_pct,ratio",
        &csv,
    );
}
