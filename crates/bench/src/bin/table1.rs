//! Regenerates **Table 1**: per-benchmark fault-free IPC, fault rates at
//! 0.97 V and 1.04 V, and the (performance %, ED %) overhead tuples of the
//! Razor and Error Padding schemes at both voltages.

use tv_bench::{write_csv, HarnessArgs};
use tv_core::{run_evaluations, Experiment, Scheme, Table1Row};
use tv_timing::Voltage;
use tv_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Table 1 — fault rates and Razor/EP overheads ({} commits/run)\n",
        args.config.commits
    );
    println!(
        "{:<12} {:>5}  {:>6} {:>16} {:>16}  {:>6} {:>16} {:>16}",
        "bench",
        "IPC",
        "FR.97",
        "Razor@0.97",
        "EP@0.97",
        "FR1.04",
        "Razor@1.04",
        "EP@1.04"
    );

    // One flat job bag: benchmark × voltage × {baseline, Razor, EP}.
    let schemes = vec![Scheme::Razor, Scheme::ErrorPadding];
    let specs: Vec<_> = Benchmark::ALL
        .into_iter()
        .flat_map(|bench| {
            [Voltage::high_fault(), Voltage::low_fault()].map(|vdd| {
                (Experiment::new(bench, vdd, args.config), schemes.clone())
            })
        })
        .collect();
    let (evals, stats) = run_evaluations(&args.fleet(), &specs);

    let mut csv = Vec::new();
    for pair in evals.chunks(2) {
        let (hi, lo) = (&pair[0], &pair[1]);
        let row = Table1Row::from_evaluations(hi, lo);
        println!("{row}");
        csv.push(format!(
            "{},{:.3},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            row.bench,
            row.fault_free_ipc,
            row.fr_097,
            row.razor_097.perf_pct,
            row.razor_097.ed_pct,
            row.ep_097.perf_pct,
            row.ep_097.ed_pct,
            row.fr_104,
            row.razor_104.perf_pct,
            row.razor_104.ed_pct,
            row.ep_104.perf_pct,
            row.ep_104.ed_pct,
        ));
    }
    write_csv(
        &args.out_path("table1.csv"),
        "bench,ipc,fr_097,razor_perf_097,razor_ed_097,ep_perf_097,ep_ed_097,\
         fr_104,razor_perf_104,razor_ed_104,ep_perf_104,ep_ed_104",
        &csv,
    );
    args.record_timing("table1", &stats);
}
