//! Minimal in-tree micro-benchmark harness.
//!
//! Replaces the `criterion` dev-dependency (unavailable in offline
//! builds) for the `benches/` targets. It keeps the parts these benches
//! actually used: named benchmarks, automatic iteration-count calibration,
//! and a stable one-line report of the per-iteration time.
//!
//! ```text
//! pipeline_kernel/simulate_20k/CDS   time: 12.41 ms/iter  (5 samples x 3 iters)
//! ```
//!
//! Timings come from `std::time::Instant`; results are reported as the
//! median of the per-sample means, which is robust to a stray slow sample
//! on a shared host.

use std::hint::black_box;
use std::str::FromStr;
use std::time::{Duration, Instant};

/// Shared command-line parsing for the harness binaries.
///
/// Every bin in this crate used to hand-roll the same loop — `args.next()`
/// plus `panic!` on a bad flag, which aborts with a backtrace and exit
/// code 101. This parser keeps the loop shape (the bins still own their
/// `match arg`), but malformed input prints the offending flag and the
/// binary's usage line to **stderr** and exits with status **2**, the
/// conventional usage-error code.
///
/// ```no_run
/// use tv_bench::harness::Cli;
/// let mut cli = Cli::new("example", "example [--commits N] [--out DIR]");
/// let mut commits: u64 = 20_000;
/// while let Some(arg) = cli.next_arg() {
///     match arg.as_str() {
///         "--commits" => commits = cli.parse("--commits"),
///         other => cli.unknown(other),
///     }
/// }
/// ```
pub struct Cli {
    bin: &'static str,
    usage: &'static str,
    args: std::vec::IntoIter<String>,
}

/// A usage error: what went wrong, before [`Cli`] renders it and exits.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl Cli {
    /// Parses the process arguments (after the binary name).
    pub fn new(bin: &'static str, usage: &'static str) -> Self {
        Self::from_vec(bin, usage, std::env::args().skip(1).collect())
    }

    /// Parser over explicit arguments — the testable constructor.
    pub fn from_vec(bin: &'static str, usage: &'static str, args: Vec<String>) -> Self {
        Cli {
            bin,
            usage,
            args: args.into_iter(),
        }
    }

    /// The next argument, if any.
    #[allow(clippy::should_implement_trait)]
    pub fn next_arg(&mut self) -> Option<String> {
        self.args.next()
    }

    /// The value following `flag`, or a usage exit when it is missing.
    pub fn value(&mut self, flag: &str) -> String {
        self.try_value(flag).unwrap_or_else(|e| self.exit(e))
    }

    /// The value following `flag`, parsed as `T`; usage exit on a missing
    /// value or a parse failure.
    pub fn parse<T: FromStr>(&mut self, flag: &str) -> T
    where
        T::Err: std::fmt::Display,
    {
        self.try_parse(flag).unwrap_or_else(|e| self.exit(e))
    }

    /// Reports an unrecognized argument and exits with status 2.
    pub fn unknown(&self, arg: &str) -> ! {
        self.exit(UsageError(format!("unknown argument `{arg}`")))
    }

    /// Reports an arbitrary usage error and exits with status 2.
    pub fn fail(&self, message: &str) -> ! {
        self.exit(UsageError(message.to_string()))
    }

    fn try_value(&mut self, flag: &str) -> Result<String, UsageError> {
        self.args
            .next()
            .ok_or_else(|| UsageError(format!("{flag} requires a value")))
    }

    fn try_parse<T: FromStr>(&mut self, flag: &str) -> Result<T, UsageError>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self.try_value(flag)?;
        raw.parse()
            .map_err(|e| UsageError(format!("{flag}: invalid value `{raw}`: {e}")))
    }

    fn exit(&self, err: UsageError) -> ! {
        eprintln!("{}: {}", self.bin, err.0);
        eprintln!("usage: {}", self.usage);
        std::process::exit(2);
    }
}

/// Wall-clock budget per benchmark used to calibrate iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(300);
/// Samples taken per benchmark (median reported).
const SAMPLES: usize = 5;

/// A named group of benchmarks (mirrors the `criterion` group concept).
pub struct Harness {
    group: &'static str,
    filter: Option<String>,
}

impl Harness {
    /// Creates a harness for one bench target.
    ///
    /// Accepts and ignores the arguments `cargo bench` forwards
    /// (`--bench`, and an optional name filter which is honored).
    pub fn new(group: &'static str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--"));
        Harness { group, filter }
    }

    /// Runs one benchmark: calibrates an iteration count so a sample
    /// lasts roughly [`TARGET_SAMPLE`], takes [`SAMPLES`] samples and
    /// reports the median per-iteration time.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        let full = format!("{}/{}", self.group, name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration: one untimed warmup, then measure a single call.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() / f64::from(iters)
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = per_iter[SAMPLES / 2];
        println!(
            "{full:<48} time: {:>12}  ({SAMPLES} samples x {iters} iters)",
            humanize(median)
        );
    }
}

/// Formats seconds-per-iteration with an adaptive unit.
fn humanize(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:.2} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} us/iter", secs * 1e6)
    } else {
        format!("{:.1} ns/iter", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_reads_flags_values_and_typed_values() {
        let mut cli = Cli::from_vec(
            "t",
            "t [--n N] [--name S]",
            vec!["--n".into(), "42".into(), "--name".into(), "gcc".into()],
        );
        assert_eq!(cli.next_arg().as_deref(), Some("--n"));
        assert_eq!(cli.try_parse::<u64>("--n"), Ok(42));
        assert_eq!(cli.next_arg().as_deref(), Some("--name"));
        assert_eq!(cli.try_value("--name"), Ok("gcc".into()));
        assert_eq!(cli.next_arg(), None);
    }

    #[test]
    fn cli_usage_errors_name_the_flag() {
        let mut cli = Cli::from_vec("t", "t", vec!["--n".into(), "nope".into()]);
        cli.next_arg();
        let err = cli.try_parse::<u64>("--n").unwrap_err();
        assert!(err.0.contains("--n"), "{}", err.0);
        assert!(err.0.contains("nope"), "{}", err.0);
        let mut cli = Cli::from_vec("t", "t", vec!["--n".into()]);
        cli.next_arg();
        let err = cli.try_parse::<u64>("--n").unwrap_err();
        assert_eq!(err.0, "--n requires a value");
    }

    #[test]
    fn humanize_picks_sane_units() {
        assert!(humanize(2.5).ends_with("s/iter"));
        assert!(humanize(2.5e-3).contains("ms"));
        assert!(humanize(2.5e-6).contains("us"));
        assert!(humanize(2.5e-9).contains("ns"));
    }

    #[test]
    fn bench_runs_each_closure() {
        let h = Harness {
            group: "test",
            filter: None,
        };
        let mut calls = 0u32;
        h.bench("counting", || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let h = Harness {
            group: "test",
            filter: Some("nomatch".into()),
        };
        let mut calls = 0u32;
        h.bench("other", || calls += 1);
        assert_eq!(calls, 0);
    }
}
