//! Minimal in-tree micro-benchmark harness.
//!
//! Replaces the `criterion` dev-dependency (unavailable in offline
//! builds) for the `benches/` targets. It keeps the parts these benches
//! actually used: named benchmarks, automatic iteration-count calibration,
//! and a stable one-line report of the per-iteration time.
//!
//! ```text
//! pipeline_kernel/simulate_20k/CDS   time: 12.41 ms/iter  (5 samples x 3 iters)
//! ```
//!
//! Timings come from `std::time::Instant`; results are reported as the
//! median of the per-sample means, which is robust to a stray slow sample
//! on a shared host.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark used to calibrate iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(300);
/// Samples taken per benchmark (median reported).
const SAMPLES: usize = 5;

/// A named group of benchmarks (mirrors the `criterion` group concept).
pub struct Harness {
    group: &'static str,
    filter: Option<String>,
}

impl Harness {
    /// Creates a harness for one bench target.
    ///
    /// Accepts and ignores the arguments `cargo bench` forwards
    /// (`--bench`, and an optional name filter which is honored).
    pub fn new(group: &'static str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--"));
        Harness { group, filter }
    }

    /// Runs one benchmark: calibrates an iteration count so a sample
    /// lasts roughly [`TARGET_SAMPLE`], takes [`SAMPLES`] samples and
    /// reports the median per-iteration time.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        let full = format!("{}/{}", self.group, name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration: one untimed warmup, then measure a single call.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() / f64::from(iters)
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = per_iter[SAMPLES / 2];
        println!(
            "{full:<48} time: {:>12}  ({SAMPLES} samples x {iters} iters)",
            humanize(median)
        );
    }
}

/// Formats seconds-per-iteration with an adaptive unit.
fn humanize(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s/iter")
    } else if secs >= 1e-3 {
        format!("{:.2} ms/iter", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} us/iter", secs * 1e6)
    } else {
        format!("{:.1} ns/iter", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn humanize_picks_sane_units() {
        assert!(humanize(2.5).ends_with("s/iter"));
        assert!(humanize(2.5e-3).contains("ms"));
        assert!(humanize(2.5e-6).contains("us"));
        assert!(humanize(2.5e-9).contains("ns"));
    }

    #[test]
    fn bench_runs_each_closure() {
        let h = Harness {
            group: "test",
            filter: None,
        };
        let mut calls = 0u32;
        h.bench("counting", || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let h = Harness {
            group: "test",
            filter: Some("nomatch".into()),
        };
        let mut calls = 0u32;
        h.bench("other", || calls += 1);
        assert_eq!(calls, 0);
    }
}
