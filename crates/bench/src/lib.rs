//! Shared harness plumbing for the table/figure binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md`'s experiment index). They share the
//! command-line convention implemented by [`HarnessArgs`]:
//!
//! ```text
//! --commits N   measured committed instructions per run (default 1 000 000)
//! --warmup N    warm-up commits before measurement   (default 200 000)
//! --seed N      workload/die seed                    (default 42)
//! --out DIR     result directory                     (default bench_results)
//! --workers N   fleet worker threads (default: TV_WORKERS, else all cores)
//! --quick       shorthand for --commits 100000 --warmup 50000
//! ```
//!
//! Simulation jobs are fanned across threads by the [`Fleet`] engine in
//! `tv-core`; results are bit-identical to a serial run at any worker
//! count, and each binary appends its wall-clock accounting to
//! `runner_timing.csv` in the output directory.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use tv_core::{run_evaluations, Experiment, FigureRow, Fleet, FleetStats, RunConfig, Scheme};
use tv_timing::Voltage;
use tv_workloads::Benchmark;

pub mod harness;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Measurement parameters forwarded to the experiment driver.
    pub config: RunConfig,
    /// Output directory for `.csv`/`.txt` artifacts.
    pub out: PathBuf,
    /// Fleet worker-thread override (`--workers`).
    pub workers: Option<usize>,
}

impl HarnessArgs {
    /// Parses `std::env::args`. Malformed arguments print a usage line to
    /// stderr and exit with status 2 (see [`harness::Cli`]).
    pub fn parse() -> Self {
        let mut cli = harness::Cli::new(
            "harness",
            "<bin> [--commits N] [--warmup N] [--seed N] [--out DIR] [--workers N] [--quick]",
        );
        let mut config = RunConfig::paper();
        let mut out = PathBuf::from("bench_results");
        let mut workers = None;
        while let Some(arg) = cli.next_arg() {
            match arg.as_str() {
                "--commits" => config.commits = cli.parse("--commits"),
                "--warmup" => config.warmup = cli.parse("--warmup"),
                "--seed" => config.seed = cli.parse("--seed"),
                "--out" => out = PathBuf::from(cli.value("--out")),
                "--workers" => workers = Some(cli.parse("--workers")),
                "--quick" => {
                    config.commits = 100_000;
                    config.warmup = 50_000;
                }
                other => cli.unknown(other),
            }
        }
        HarnessArgs {
            config,
            out,
            workers,
        }
    }

    /// Builds the experiment engine: `--workers` wins, then `TV_WORKERS`,
    /// then every available core. Progress lines go to stderr.
    pub fn fleet(&self) -> Fleet {
        match self.workers {
            Some(n) => Fleet::new(n),
            None => Fleet::auto(),
        }
        .with_progress(true)
    }

    /// Appends this run's engine accounting to `runner_timing.csv` in the
    /// output directory (header written on first use) and prints the
    /// summary line.
    ///
    /// When the `stage-profile` feature is compiled in, one extra row per
    /// pipeline stage follows the summary row, reusing the same columns:
    /// `figure` is `<figure>/stage:<name>`, `jobs` carries the number of
    /// timed stage invocations (aggregated across all fleet workers),
    /// both time columns carry the stage's total wall-clock seconds, and
    /// `speedup` carries the mean nanoseconds per invocation. The counters
    /// are reset afterwards so consecutive figures report disjoint
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn record_timing(&self, figure: &str, stats: &FleetStats) {
        println!("fleet: {}", stats.summary());
        let path = self.out_path("runner_timing.csv");
        let new = !path.exists();
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open runner_timing.csv");
        if new {
            writeln!(f, "figure,jobs,workers,elapsed_s,serial_equivalent_s,speedup")
                .expect("write runner_timing.csv");
        }
        writeln!(
            f,
            "{figure},{},{},{:.3},{:.3},{:.3}",
            stats.jobs,
            stats.workers,
            stats.elapsed.as_secs_f64(),
            stats.serial_equivalent.as_secs_f64(),
            stats.speedup()
        )
        .expect("write runner_timing.csv");
        if tv_uarch::profile::enabled() {
            for s in tv_uarch::profile::snapshot() {
                if s.calls == 0 {
                    continue;
                }
                let secs = s.nanos as f64 / 1e9;
                writeln!(
                    f,
                    "{figure}/stage:{},{},{},{:.3},{:.3},{:.1}",
                    s.name,
                    s.calls,
                    stats.workers,
                    secs,
                    secs,
                    s.nanos as f64 / s.calls as f64,
                )
                .expect("write runner_timing.csv");
            }
            tv_uarch::profile::reset();
        }
    }

    /// Ensures the output directory exists and returns the path of `name`
    /// inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, name: &str) -> PathBuf {
        fs::create_dir_all(&self.out).expect("create output directory");
        self.out.join(name)
    }
}

/// Writes a CSV file (header + rows) and reports the path on stdout.
///
/// Published atomically (write-temp-then-rename via
/// [`tv_core::persist::write_atomic`]): a crash mid-write can never leave
/// a torn CSV for verify scripts, resumed runs or the campaign server's
/// result store to trust.
///
/// # Panics
///
/// Panics on I/O errors — harness binaries want loud failures.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) {
    let mut doc = String::with_capacity(header.len() + 1 + rows.iter().map(|r| r.len() + 1).sum::<usize>());
    doc.push_str(header);
    doc.push('\n');
    for row in rows {
        doc.push_str(row);
        doc.push('\n');
    }
    tv_core::persist::write_atomic_str(path, &doc).expect("write csv");
    println!("wrote {}", path.display());
}

/// Runs one EP-normalized figure (4, 5, 8 or 9): per-benchmark relative
/// overheads of ABS/FFS/CDS at `vdd`, using `metric` to extract either the
/// performance or the ED variant. All benchmark × scheme jobs go through
/// the fleet as one bag; rows come back in benchmark order, plus the
/// AVERAGE row. Timing is appended to `runner_timing.csv` under `figure`.
pub fn run_relative_figure(
    args: &HarnessArgs,
    figure: &str,
    vdd: Voltage,
    metric: fn(&tv_core::Evaluation) -> FigureRow,
) -> Vec<FigureRow> {
    let specs: Vec<_> = Benchmark::ALL
        .into_iter()
        .map(|bench| {
            (
                Experiment::new(bench, vdd, args.config),
                vec![Scheme::ErrorPadding, Scheme::Abs, Scheme::Ffs, Scheme::Cds],
            )
        })
        .collect();
    let (evals, stats) = run_evaluations(&args.fleet(), &specs);
    let mut rows = Vec::with_capacity(evals.len() + 1);
    for eval in &evals {
        let row = metric(eval);
        println!("{row}");
        rows.push(row);
    }
    let avg = tv_core::average_row(&rows);
    println!("{avg}");
    rows.push(avg);
    args.record_timing(figure, &stats);
    rows
}

/// Formats figure rows as CSV lines.
pub fn figure_csv_rows(rows: &[FigureRow]) -> Vec<String> {
    rows.iter()
        .map(|r| format!("{},{:.4},{:.4},{:.4}", r.bench, r.abs, r.ffs, r.cds))
        .collect()
}
