//! Shared harness plumbing for the table/figure binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md`'s experiment index). They share the
//! command-line convention implemented by [`HarnessArgs`]:
//!
//! ```text
//! --commits N   measured committed instructions per run (default 1 000 000)
//! --warmup N    warm-up commits before measurement   (default 200 000)
//! --seed N      workload/die seed                    (default 42)
//! --out DIR     result directory                     (default bench_results)
//! --quick       shorthand for --commits 100000 --warmup 50000
//! ```

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use tv_core::{Experiment, FigureRow, RunConfig, Scheme};
use tv_timing::Voltage;
use tv_workloads::Benchmark;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Measurement parameters forwarded to the experiment driver.
    pub config: RunConfig,
    /// Output directory for `.csv`/`.txt` artifacts.
    pub out: PathBuf,
}

impl HarnessArgs {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut config = RunConfig::paper();
        let mut out = PathBuf::from("bench_results");
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--commits" => {
                    config.commits = value("--commits").parse().expect("--commits: integer")
                }
                "--warmup" => {
                    config.warmup = value("--warmup").parse().expect("--warmup: integer")
                }
                "--seed" => config.seed = value("--seed").parse().expect("--seed: integer"),
                "--out" => out = PathBuf::from(value("--out")),
                "--quick" => {
                    config.commits = 100_000;
                    config.warmup = 50_000;
                }
                other => panic!(
                    "unknown argument {other}; supported: --commits --warmup --seed --out --quick"
                ),
            }
        }
        HarnessArgs { config, out }
    }

    /// Ensures the output directory exists and returns the path of `name`
    /// inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, name: &str) -> PathBuf {
        fs::create_dir_all(&self.out).expect("create output directory");
        self.out.join(name)
    }
}

/// Writes a CSV file (header + rows) and reports the path on stdout.
///
/// # Panics
///
/// Panics on I/O errors — harness binaries want loud failures.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) {
    let mut f = fs::File::create(path).expect("create csv");
    writeln!(f, "{header}").expect("write csv");
    for row in rows {
        writeln!(f, "{row}").expect("write csv");
    }
    println!("wrote {}", path.display());
}

/// Runs one EP-normalized figure (4, 5, 8 or 9): per-benchmark relative
/// overheads of ABS/FFS/CDS at `vdd`, using `metric` to extract either the
/// performance or the ED variant. Returns the rows plus the AVERAGE row.
pub fn run_relative_figure(
    config: RunConfig,
    vdd: Voltage,
    metric: fn(&tv_core::Evaluation) -> FigureRow,
) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let eval = Experiment::new(bench, vdd, config).run_schemes(&[
            Scheme::ErrorPadding,
            Scheme::Abs,
            Scheme::Ffs,
            Scheme::Cds,
        ]);
        let row = metric(&eval);
        println!("{row}");
        rows.push(row);
    }
    let avg = tv_core::average_row(&rows);
    println!("{avg}");
    rows.push(avg);
    rows
}

/// Formats figure rows as CSV lines.
pub fn figure_csv_rows(rows: &[FigureRow]) -> Vec<String> {
    rows.iter()
        .map(|r| format!("{},{:.4},{:.4},{:.4}", r.bench, r.abs, r.ffs, r.cds))
        .collect()
}
