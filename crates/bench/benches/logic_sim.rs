//! Bench of the gate-level logic simulator (the Figure 7 kernel).

use tv_bench::harness::Harness;
use tv_netlist::components::{alu_inputs, study_components, AluOp};
use tv_netlist::Simulator;

fn main() {
    let h = Harness::new("logic_sim");
    for netlist in study_components() {
        let inputs: Vec<Vec<bool>> = (0..64u32)
            .map(|i| {
                let alu = alu_inputs(i.wrapping_mul(2654435761), !i, AluOp::Add);
                alu.into_iter()
                    .cycle()
                    .take(netlist.inputs().len())
                    .collect()
            })
            .collect();
        h.bench(&format!("apply_64_vectors/{}", netlist.name()), || {
            let mut sim = Simulator::new(&netlist);
            let mut toggles = 0usize;
            for v in &inputs {
                sim.apply(v);
                toggles += sim.toggled().len();
            }
            toggles
        });
    }
}
