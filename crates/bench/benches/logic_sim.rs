//! Criterion bench of the gate-level logic simulator (the Figure 7 kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tv_netlist::components::{alu_inputs, study_components, AluOp};
use tv_netlist::Simulator;

fn logic_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_sim");
    for netlist in study_components() {
        let inputs: Vec<Vec<bool>> = (0..64u32)
            .map(|i| {
                let alu = alu_inputs(i.wrapping_mul(2654435761), !i, AluOp::Add);
                alu.into_iter()
                    .cycle()
                    .take(netlist.inputs().len())
                    .collect()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("apply_64_vectors", netlist.name()),
            &netlist,
            |b, netlist| {
                b.iter(|| {
                    let mut sim = Simulator::new(netlist);
                    let mut toggles = 0usize;
                    for v in &inputs {
                        sim.apply(v);
                        toggles += sim.toggled().len();
                    }
                    toggles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, logic_sim);
criterion_main!(benches);
