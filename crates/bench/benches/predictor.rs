//! Bench of the Timing Error Predictor's lookup/train loop.

use tv_bench::harness::Harness;
use tv_tep::{Tep, TepConfig};
use tv_timing::PipeStage;

fn main() {
    let h = Harness::new("predictor");
    h.bench("tep_lookup_train_10k", || {
        let mut tep = Tep::new(TepConfig::paper_default());
        let mut predicted = 0u64;
        for i in 0..10_000u64 {
            let pc = 0x1000 + 4 * (i % 512);
            if tep.predict(pc, true).faulty {
                predicted += 1;
            }
            if i % 7 == 0 {
                tep.train_fault(pc, PipeStage::Issue);
            }
            if i % 13 == 0 {
                tep.record_branch(i % 2 == 0);
            }
        }
        predicted
    });
}
