//! Criterion bench of the Timing Error Predictor's lookup/train loop.

use criterion::{criterion_group, criterion_main, Criterion};
use tv_tep::{Tep, TepConfig};
use tv_timing::PipeStage;

fn predictor(c: &mut Criterion) {
    c.bench_function("tep_lookup_train_10k", |b| {
        b.iter(|| {
            let mut tep = Tep::new(TepConfig::paper_default());
            let mut predicted = 0u64;
            for i in 0..10_000u64 {
                let pc = 0x1000 + 4 * (i % 512);
                if tep.predict(pc, true).faulty {
                    predicted += 1;
                }
                if i % 7 == 0 {
                    tep.train_fault(pc, PipeStage::Issue);
                }
                if i % 13 == 0 {
                    tep.record_branch(i % 2 == 0);
                }
            }
            predicted
        })
    });
}

criterion_group!(benches, predictor);
criterion_main!(benches);
