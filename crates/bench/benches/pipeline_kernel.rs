//! Bench of the hot simulation kernel: cycles simulated per second for
//! each tolerance scheme (the inner loop behind every table and figure).

use tv_bench::harness::Harness;
use tv_core::Scheme;
use tv_timing::Voltage;
use tv_workloads::Benchmark;

fn main() {
    let h = Harness::new("pipeline_kernel");
    for scheme in [
        Scheme::FaultFree,
        Scheme::Razor,
        Scheme::ErrorPadding,
        Scheme::Cds,
    ] {
        h.bench(&format!("simulate_20k/{}", scheme.name()), || {
            scheme
                .pipeline_builder(Benchmark::Gcc, 42, Voltage::high_fault())
                .build()
                .run(20_000)
        });
    }
}
