//! Criterion bench of the hot simulation kernel: cycles simulated per
//! second for each tolerance scheme (the inner loop behind every table
//! and figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tv_core::Scheme;
use tv_timing::Voltage;
use tv_workloads::Benchmark;

fn pipeline_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_kernel");
    group.sample_size(10);
    for scheme in [Scheme::FaultFree, Scheme::Razor, Scheme::ErrorPadding, Scheme::Cds] {
        group.bench_with_input(
            BenchmarkId::new("simulate_20k", scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    scheme
                        .pipeline_builder(Benchmark::Gcc, 42, Voltage::high_fault())
                        .build()
                        .run(20_000)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, pipeline_kernel);
criterion_main!(benches);
