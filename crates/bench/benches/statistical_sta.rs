//! Criterion bench of the Monte-Carlo statistical STA engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tv_netlist::components::{agen32, forward_check};
use tv_timing::{StatisticalSta, Voltage};

fn statistical_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("statistical_sta");
    group.sample_size(10);
    for (name, netlist) in [("agen32", agen32()), ("forward_check", forward_check())] {
        group.bench_with_input(
            BenchmarkId::new("mc100", name),
            &netlist,
            |b, netlist| {
                b.iter(|| {
                    StatisticalSta::new(netlist)
                        .with_samples(100)
                        .run(Voltage::high_fault(), 7)
                        .mu_plus_two_sigma()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, statistical_sta);
criterion_main!(benches);
