//! Bench of the Monte-Carlo statistical STA engine.

use tv_bench::harness::Harness;
use tv_netlist::components::{agen32, forward_check};
use tv_timing::{StatisticalSta, Voltage};

fn main() {
    let h = Harness::new("statistical_sta");
    for (name, netlist) in [("agen32", agen32()), ("forward_check", forward_check())] {
        h.bench(&format!("mc100/{name}"), || {
            StatisticalSta::new(&netlist)
                .with_samples(100)
                .run(Voltage::high_fault(), 7)
                .mu_plus_two_sigma()
        });
    }
}
