//! Steady-state zero-allocation guarantee for `Pipeline::step`.
//!
//! Every per-cycle buffer in the simulator is hoisted and reused: the
//! issue stage's candidate scratch, the wakeup index's waiter lists and
//! ready list, the flat cache tag arrays, the event heap, and the slab's
//! free list all reach a stable capacity during warm-up. After that, a
//! measured run must perform **zero** heap allocations — the property the
//! throughput work relies on, pinned here with a counting global
//! allocator across all four tolerance modes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tv_core::Scheme;
use tv_timing::Voltage;
use tv_workloads::Benchmark;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// One scheme per tolerance mode: fault-free baseline, Razor flush
/// recovery, Error Padding's global stalls, and the violation-aware
/// machinery (CDS exercises the TEP, CDL, replay and delayed-broadcast
/// paths — the richest allocation surface).
const MODES: [Scheme; 4] = [
    Scheme::FaultFree,
    Scheme::Razor,
    Scheme::ErrorPadding,
    Scheme::Cds,
];

#[test]
fn steady_state_makes_no_allocations() {
    for scheme in MODES {
        let mut pipe = scheme
            .pipeline_builder(Benchmark::Gcc, 42, Voltage::high_fault())
            .build();
        // Warm-up grows every buffer to its steady capacity (caches fill,
        // the slab and waiter lists reach their high-water marks, the
        // CDL's criticality ranking is materialized).
        pipe.warm_up(30_000);
        let before = ALLOCS.load(Ordering::Relaxed);
        let stats = pipe.run(30_000);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(stats.committed, 30_000, "{}: short run", scheme.name());
        assert_eq!(
            after - before,
            0,
            "{}: {} heap allocations in a steady-state window of {} cycles",
            scheme.name(),
            after - before,
            stats.cycles,
        );
    }
}
