//! Input-permutation invariance of the selection policies.
//!
//! The wakeup index hands candidates to `SelectPolicy::prioritize` in
//! index order — an implementation detail that changes whenever the ready
//! list's internal bookkeeping changes (entries are swap-removed on issue
//! and demotion). The simulated schedule must not depend on that order:
//! every policy's sort key embeds the unique sequence number, so the
//! prioritized order is a total function of the candidate *set*. This
//! regression test pins that property by shuffling each candidate set many
//! ways and asserting the prioritized output never changes.

use tv_core::{CriticalityDrivenSelect, FaultyFirstSelect};
use tv_uarch::{AgeBasedSelect, IssueCandidate, SelectPolicy};
use tv_workloads::OpClass;

fn splitmix(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn shuffle(cands: &mut [IssueCandidate], s: &mut u64) {
    for i in (1..cands.len()).rev() {
        let j = (splitmix(s) as usize) % (i + 1);
        cands.swap(i, j);
    }
}

/// A random candidate set with unique, non-contiguous sequence numbers and
/// every faulty/critical combination represented over time.
fn random_set(s: &mut u64, len: usize) -> Vec<IssueCandidate> {
    let mut seq = 0u64;
    (0..len)
        .map(|_| {
            seq += 1 + splitmix(s) % 7; // unique, gappy
            IssueCandidate {
                slot: seq as usize,
                seq,
                timestamp: (seq % 64) as u8,
                faulty: splitmix(s) % 3 == 0,
                critical: splitmix(s) % 3 == 0,
                op: OpClass::IntAlu,
            }
        })
        .collect()
}

fn assert_permutation_invariant(policy: &mut dyn SelectPolicy) {
    let mut s = 0x5eed_0000 ^ policy.name().len() as u64;
    for trial in 0..64 {
        let len = 1 + (splitmix(&mut s) as usize) % 24;
        let set = random_set(&mut s, len);

        let mut reference = set.clone();
        policy.prioritize(&mut reference);

        for round in 0..16 {
            let mut shuffled = set.clone();
            shuffle(&mut shuffled, &mut s);
            policy.prioritize(&mut shuffled);
            assert_eq!(
                shuffled,
                reference,
                "{} order depends on input order (trial {trial}, round {round})",
                policy.name(),
            );
        }
    }
}

#[test]
fn abs_is_input_permutation_invariant() {
    assert_permutation_invariant(&mut AgeBasedSelect::new());
}

#[test]
fn ffs_is_input_permutation_invariant() {
    assert_permutation_invariant(&mut FaultyFirstSelect::new());
}

#[test]
fn cds_is_input_permutation_invariant() {
    assert_permutation_invariant(&mut CriticalityDrivenSelect::new());
}
