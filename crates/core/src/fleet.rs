//! The parallel experiment engine.
//!
//! Every table and figure of the evaluation is a bag of independent
//! simulation jobs — one `(benchmark, voltage, scheme, config)` tuple
//! each. The [`Fleet`] fans such bags across `std::thread::scope` workers
//! and returns the results **in submission order**, so harnesses and
//! tests see output identical to a serial loop.
//!
//! # Determinism contract
//!
//! Every job is a pure function of its tuple: the pipeline, workload
//! trace, fault model and TEP are all (re)constructed inside the job from
//! `config.seed`, and no RNG state is shared between jobs. Results are
//! written into per-job slots indexed by submission order. Consequently a
//! fleet run is **bit-identical** to a serial run — and to any other
//! fleet run — regardless of worker count, scheduling interleavings or
//! completion order. `tests/determinism.rs` at the workspace root pins
//! this contract for 1, 2 and N workers and for shuffled submission.
//!
//! # Worker count
//!
//! [`Fleet::auto`] honours the `TV_WORKERS` environment variable and
//! falls back to [`std::thread::available_parallelism`]. Worker threads
//! pull jobs off a shared atomic cursor (work stealing by competition),
//! so long jobs do not convoy short ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tv_timing::Voltage;
use tv_workloads::Benchmark;

use crate::experiment::{Experiment, RunConfig, SchemeResult};
use crate::schemes::Scheme;

/// One unit of simulation work: a single scheme run of one benchmark at
/// one supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Benchmark under test.
    pub bench: Benchmark,
    /// Faulty-environment supply voltage.
    pub vdd: Voltage,
    /// Tolerance scheme to run.
    pub scheme: Scheme,
    /// Measurement parameters (carries the seed).
    pub config: RunConfig,
}

impl Job {
    /// Creates a job.
    pub fn new(bench: Benchmark, vdd: Voltage, scheme: Scheme, config: RunConfig) -> Self {
        Job {
            bench,
            vdd,
            scheme,
            config,
        }
    }

    /// The seed all of this job's random streams derive from. Seeding is
    /// per job and deterministic: two jobs with equal tuples produce
    /// bit-identical results on any worker.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Human-readable label for progress lines (`gcc/ABS@0.970V`).
    pub fn label(&self) -> String {
        format!(
            "{}/{}@{:.3}V",
            self.bench.name(),
            self.scheme.name(),
            self.vdd.volts()
        )
    }

    /// Runs the job to completion on the calling thread.
    pub fn run(&self) -> SchemeResult {
        Experiment::new(self.bench, self.vdd, self.config).run_scheme(self.scheme)
    }
}

/// Wall-clock timing of one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTiming {
    /// Submission index of the job.
    pub index: usize,
    /// The job's [`label`](Job::label) (empty for generic [`Fleet::map`]
    /// items).
    pub label: String,
    /// Wall-clock time the job spent executing.
    pub wall: Duration,
    /// Worker thread that executed the job.
    pub worker: usize,
}

/// Aggregate counters for one fleet run — the engine's `SimStats`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Sum of per-job wall-clock times (what a serial loop would cost).
    pub serial_equivalent: Duration,
    /// Per-job timings, in submission order.
    pub timings: Vec<JobTiming>,
}

impl FleetStats {
    /// Parallel speedup: serial-equivalent time over elapsed time.
    /// About 1.0 on a single-core host, approaching the worker count when
    /// jobs are plentiful and balanced.
    pub fn speedup(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            return 1.0;
        }
        self.serial_equivalent.as_secs_f64() / elapsed
    }

    /// The longest-running job, if any ran.
    pub fn slowest(&self) -> Option<&JobTiming> {
        self.timings.iter().max_by_key(|t| t.wall)
    }

    /// One-line human summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs on {} worker{} in {:.2}s (serial-equivalent {:.2}s, speedup {:.2}x)",
            self.jobs,
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.elapsed.as_secs_f64(),
            self.serial_equivalent.as_secs_f64(),
            self.speedup()
        )
    }
}

/// Results plus timing counters of one fleet run. `results[i]` belongs to
/// the `i`-th submitted item, always.
#[derive(Debug)]
pub struct FleetRun<R> {
    /// Per-item results, in submission order.
    pub results: Vec<R>,
    /// Timing/progress counters.
    pub stats: FleetStats,
}

/// The parallel experiment engine.
#[derive(Debug, Clone)]
pub struct Fleet {
    workers: usize,
    progress: bool,
}

impl Fleet {
    /// Creates a fleet with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Fleet {
            workers: workers.max(1),
            progress: false,
        }
    }

    /// A single-worker fleet: runs jobs serially on one spawned thread.
    pub fn serial() -> Self {
        Fleet::new(1)
    }

    /// Picks the worker count from the `TV_WORKERS` environment variable,
    /// falling back to [`std::thread::available_parallelism`].
    pub fn auto() -> Self {
        Fleet::new(auto_workers(std::env::var("TV_WORKERS").ok().as_deref()))
    }

    /// Enables (or disables) per-job progress lines on stderr.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Worker threads this fleet uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs experiment jobs and returns their results in submission
    /// order, bit-identical to a serial loop over [`Job::run`].
    pub fn run_jobs(&self, jobs: Vec<Job>) -> FleetRun<SchemeResult> {
        let labels: Vec<String> = jobs.iter().map(Job::label).collect();
        self.execute(jobs, labels, |job| job.run())
    }

    /// Generic deterministic parallel map: applies `f` to every item and
    /// returns the results in item order. `f` must be a pure function of
    /// its item for the determinism contract to hold.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> FleetRun<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let labels = vec![String::new(); items.len()];
        self.execute(items, labels, f)
    }

    fn execute<T, R, F>(&self, items: Vec<T>, labels: Vec<String>, f: F) -> FleetRun<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let total = items.len();
        let workers = self.workers.min(total.max(1));
        let started = Instant::now();

        // Submission-order result slots; workers never contend on a slot.
        let slots: Vec<Mutex<Option<(R, Duration, usize)>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let cursor = &cursor;
                let done = &done;
                let slots = &slots;
                let items = &items;
                let labels = &labels;
                let f = &f;
                let progress = self.progress;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = f(&items[i]);
                    let wall = t0.elapsed();
                    *slots[i].lock().expect("result slot poisoned") =
                        Some((result, wall, worker));
                    if progress {
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        eprintln!(
                            "[fleet] {n}/{total} {} {:.2}s (worker {worker})",
                            labels[i],
                            wall.as_secs_f64()
                        );
                    }
                });
            }
        });

        let elapsed = started.elapsed();
        let mut results = Vec::with_capacity(total);
        let mut timings = Vec::with_capacity(total);
        let mut serial_equivalent = Duration::ZERO;
        for (index, (slot, label)) in slots.into_iter().zip(labels).enumerate() {
            let (result, wall, worker) = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every job slot is filled");
            serial_equivalent += wall;
            results.push(result);
            timings.push(JobTiming {
                index,
                label,
                wall,
                worker,
            });
        }
        FleetRun {
            results,
            stats: FleetStats {
                jobs: total,
                workers,
                elapsed,
                serial_equivalent,
                timings,
            },
        }
    }
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::auto()
    }
}

/// Resolves the worker count from an optional `TV_WORKERS` value.
fn auto_workers(env: Option<&str>) -> usize {
    if let Some(v) = env {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_submission_order() {
        // Uneven job costs ensure out-of-order completion under >1 worker.
        let items: Vec<u64> = (0..64).collect();
        let run = Fleet::new(4).map(items, |&i| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            i * i
        });
        let expect: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(run.results, expect);
        assert_eq!(run.stats.jobs, 64);
        assert_eq!(run.stats.timings.len(), 64);
        assert!(run.stats.timings.iter().enumerate().all(|(i, t)| t.index == i));
    }

    #[test]
    fn identical_results_across_worker_counts() {
        let f = |&i: &u64| i.wrapping_mul(6364136223846793005).rotate_left(17);
        let serial = Fleet::serial().map((0..40).collect(), f);
        for workers in [2, 3, 8] {
            let par = Fleet::new(workers).map((0..40).collect(), f);
            assert_eq!(par.results, serial.results, "workers = {workers}");
        }
    }

    #[test]
    fn workers_clamped_to_jobs_and_one() {
        assert_eq!(Fleet::new(0).workers(), 1);
        let run = Fleet::new(16).map(vec![1, 2], |&i: &i32| i);
        assert_eq!(run.stats.workers, 2, "never more workers than jobs");
        let empty = Fleet::new(3).map(Vec::<i32>::new(), |&i| i);
        assert!(empty.results.is_empty());
        assert_eq!(empty.stats.jobs, 0);
    }

    #[test]
    fn stats_counters_are_populated() {
        let run = Fleet::new(2).map((0..6).collect::<Vec<i32>>(), |&i| {
            std::thread::sleep(Duration::from_millis(1));
            i
        });
        assert!(run.stats.serial_equivalent >= Duration::from_millis(6));
        assert!(run.stats.elapsed > Duration::ZERO);
        assert!(run.stats.speedup() > 0.0);
        assert!(run.stats.slowest().is_some());
        let s = run.stats.summary();
        assert!(s.contains("6 jobs"), "{s}");
    }

    #[test]
    fn auto_worker_resolution() {
        assert_eq!(auto_workers(Some("3")), 3);
        assert_eq!(auto_workers(Some(" 5 ")), 5);
        // Invalid or zero values fall back to host parallelism (>= 1).
        assert!(auto_workers(Some("0")) >= 1);
        assert!(auto_workers(Some("nope")) >= 1);
        assert!(auto_workers(None) >= 1);
    }

    #[test]
    fn job_label_and_seed() {
        let job = Job::new(
            Benchmark::Gcc,
            Voltage::low_fault(),
            Scheme::Abs,
            RunConfig::quick(),
        );
        assert_eq!(job.seed(), 42);
        let label = job.label();
        assert!(label.starts_with("gcc/ABS@"), "{label}");
    }
}
