//! The parallel experiment engine.
//!
//! Every table and figure of the evaluation is a bag of independent
//! simulation jobs — one `(benchmark, voltage, scheme, config)` tuple
//! each. The [`Fleet`] fans such bags across `std::thread::scope` workers
//! and returns the results **in submission order**, so harnesses and
//! tests see output identical to a serial loop.
//!
//! # Determinism contract
//!
//! Every job is a pure function of its tuple: the pipeline, workload
//! trace, fault model and TEP are all (re)constructed inside the job from
//! `config.seed`, and no RNG state is shared between jobs. Results are
//! written into per-job slots indexed by submission order. Consequently a
//! fleet run is **bit-identical** to a serial run — and to any other
//! fleet run — regardless of worker count, scheduling interleavings or
//! completion order. `tests/determinism.rs` at the workspace root pins
//! this contract for 1, 2 and N workers and for shuffled submission.
//!
//! # Worker count
//!
//! [`Fleet::auto`] honours the `TV_WORKERS` environment variable and
//! falls back to [`std::thread::available_parallelism`]. Worker threads
//! pull jobs off a shared atomic cursor (work stealing by competition),
//! so long jobs do not convoy short ones.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tv_timing::Voltage;
use tv_workloads::Benchmark;

use crate::experiment::{Experiment, RunConfig, SchemeResult};
use crate::schemes::Scheme;

/// One unit of simulation work: a single scheme run of one benchmark at
/// one supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Benchmark under test.
    pub bench: Benchmark,
    /// Faulty-environment supply voltage.
    pub vdd: Voltage,
    /// Tolerance scheme to run.
    pub scheme: Scheme,
    /// Measurement parameters (carries the seed).
    pub config: RunConfig,
}

impl Job {
    /// Creates a job.
    pub fn new(bench: Benchmark, vdd: Voltage, scheme: Scheme, config: RunConfig) -> Self {
        Job {
            bench,
            vdd,
            scheme,
            config,
        }
    }

    /// The seed all of this job's random streams derive from. Seeding is
    /// per job and deterministic: two jobs with equal tuples produce
    /// bit-identical results on any worker.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Human-readable label for progress lines (`gcc/ABS@0.970V`).
    pub fn label(&self) -> String {
        format!(
            "{}/{}@{:.3}V",
            self.bench.name(),
            self.scheme.name(),
            self.vdd.volts()
        )
    }

    /// Runs the job to completion on the calling thread.
    pub fn run(&self) -> SchemeResult {
        Experiment::new(self.bench, self.vdd, self.config).run_scheme(self.scheme)
    }
}

/// A job that panicked instead of returning a result.
///
/// Crash-isolated runs ([`Fleet::map_caught`], [`Fleet::run_jobs_caught`])
/// catch the unwind on the worker thread and surface it as this structured
/// failure row — carrying the submission index, the job's identity label
/// and the panic payload — instead of tearing down the whole fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the job that panicked.
    pub index: usize,
    /// The job's identity label (for [`run_jobs_caught`](Fleet::run_jobs_caught)
    /// this is `bench/scheme@vdd seed=N`).
    pub label: String,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case); `"opaque panic payload"` otherwise.
    pub payload: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} ({}) panicked: {}", self.index, self.label, self.payload)
    }
}

impl std::error::Error for JobPanic {}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Wall-clock timing of one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTiming {
    /// Submission index of the job.
    pub index: usize,
    /// The job's [`label`](Job::label) (empty for generic [`Fleet::map`]
    /// items).
    pub label: String,
    /// Wall-clock time the job spent executing.
    pub wall: Duration,
    /// Worker thread that executed the job.
    pub worker: usize,
}

/// Aggregate counters for one fleet run — the engine's `SimStats`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Sum of per-job wall-clock times (what a serial loop would cost).
    pub serial_equivalent: Duration,
    /// Per-job timings, in submission order.
    pub timings: Vec<JobTiming>,
}

impl FleetStats {
    /// Parallel speedup: serial-equivalent time over elapsed time.
    /// About 1.0 on a single-core host, approaching the worker count when
    /// jobs are plentiful and balanced.
    pub fn speedup(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            return 1.0;
        }
        self.serial_equivalent.as_secs_f64() / elapsed
    }

    /// The longest-running job, if any ran.
    pub fn slowest(&self) -> Option<&JobTiming> {
        self.timings.iter().max_by_key(|t| t.wall)
    }

    /// One-line human summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs on {} worker{} in {:.2}s (serial-equivalent {:.2}s, speedup {:.2}x)",
            self.jobs,
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.elapsed.as_secs_f64(),
            self.serial_equivalent.as_secs_f64(),
            self.speedup()
        )
    }
}

/// Results plus timing counters of one fleet run. `results[i]` belongs to
/// the `i`-th submitted item, always.
#[derive(Debug)]
pub struct FleetRun<R> {
    /// Per-item results, in submission order.
    pub results: Vec<R>,
    /// Timing/progress counters.
    pub stats: FleetStats,
}

/// The parallel experiment engine.
#[derive(Debug, Clone)]
pub struct Fleet {
    workers: usize,
    progress: bool,
}

impl Fleet {
    /// Creates a fleet with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Fleet {
            workers: workers.max(1),
            progress: false,
        }
    }

    /// A single-worker fleet: runs jobs serially on one spawned thread.
    pub fn serial() -> Self {
        Fleet::new(1)
    }

    /// Picks the worker count from the `TV_WORKERS` environment variable,
    /// falling back to [`std::thread::available_parallelism`].
    pub fn auto() -> Self {
        Fleet::new(auto_workers(std::env::var("TV_WORKERS").ok().as_deref()))
    }

    /// Enables (or disables) per-job progress lines on stderr.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Worker threads this fleet uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs experiment jobs and returns their results in submission
    /// order, bit-identical to a serial loop over [`Job::run`].
    pub fn run_jobs(&self, jobs: Vec<Job>) -> FleetRun<SchemeResult> {
        let labels: Vec<String> = jobs.iter().map(Job::label).collect();
        self.execute(jobs, labels, |job| job.run())
    }

    /// Generic deterministic parallel map: applies `f` to every item and
    /// returns the results in item order. `f` must be a pure function of
    /// its item for the determinism contract to hold.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> FleetRun<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let labels = vec![String::new(); items.len()];
        self.execute(items, labels, f)
    }

    /// Like [`run_jobs`](Fleet::run_jobs), but crash-isolated: a job that
    /// panics produces an `Err(`[`JobPanic`]`)` row carrying the panic
    /// payload and the full tuple identity (benchmark, scheme, voltage,
    /// seed) instead of aborting the whole run.
    pub fn run_jobs_caught(&self, jobs: Vec<Job>) -> FleetRun<Result<SchemeResult, JobPanic>> {
        let labels: Vec<String> = jobs
            .iter()
            .map(|j| format!("{} seed={}", j.label(), j.seed()))
            .collect();
        self.map_caught(jobs, labels, |job| job.run())
    }

    /// Crash-isolated [`map`](Fleet::map): each application of `f` runs
    /// under [`catch_unwind`], so one panicking item yields an
    /// `Err(`[`JobPanic`]`)` in its slot while every other item still
    /// completes. `labels` must have one identity string per item.
    pub fn map_caught<T, R, F>(
        &self,
        items: Vec<T>,
        labels: Vec<String>,
        f: F,
    ) -> FleetRun<Result<R, JobPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_caught_observed(items, labels, f, |_, _| {})
    }

    /// [`map_caught`](Fleet::map_caught) with a completion observer:
    /// `observe(index, result)` runs on the worker thread immediately
    /// after each item finishes (in completion order, not submission
    /// order). This is the checkpoint hook — a resumable harness flushes
    /// each finished row to its journal here, so a `SIGKILL` loses at most
    /// the rows still in flight.
    pub fn map_caught_observed<T, R, F, O>(
        &self,
        items: Vec<T>,
        labels: Vec<String>,
        f: F,
        observe: O,
    ) -> FleetRun<Result<R, JobPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        O: Fn(usize, &Result<R, JobPanic>) + Sync,
    {
        assert_eq!(items.len(), labels.len(), "one label per item");
        let idents = labels.clone();
        self.execute_indexed(
            items,
            labels,
            |i, item| {
                catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|p| JobPanic {
                    index: i,
                    label: idents[i].clone(),
                    payload: panic_message(p.as_ref()),
                })
            },
            observe,
        )
    }

    fn execute<T, R, F>(&self, items: Vec<T>, labels: Vec<String>, f: F) -> FleetRun<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.execute_indexed(items, labels, |_, item| f(item), |_, _| {})
    }

    fn execute_indexed<T, R, F, O>(
        &self,
        items: Vec<T>,
        labels: Vec<String>,
        f: F,
        observe: O,
    ) -> FleetRun<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        O: Fn(usize, &R) + Sync,
    {
        let total = items.len();
        let workers = self.workers.min(total.max(1));
        let started = Instant::now();

        // Submission-order result slots; workers never contend on a slot.
        let slots: Vec<Mutex<Option<(R, Duration, usize)>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let cursor = &cursor;
                let done = &done;
                let slots = &slots;
                let items = &items;
                let labels = &labels;
                let f = &f;
                let observe = &observe;
                let progress = self.progress;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = f(i, &items[i]);
                    let wall = t0.elapsed();
                    observe(i, &result);
                    *slots[i].lock().expect("result slot poisoned") =
                        Some((result, wall, worker));
                    if progress {
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        eprintln!(
                            "[fleet] {n}/{total} {} {:.2}s (worker {worker})",
                            labels[i],
                            wall.as_secs_f64()
                        );
                    }
                });
            }
        });

        let elapsed = started.elapsed();
        let mut results = Vec::with_capacity(total);
        let mut timings = Vec::with_capacity(total);
        let mut serial_equivalent = Duration::ZERO;
        for (index, (slot, label)) in slots.into_iter().zip(labels).enumerate() {
            let (result, wall, worker) = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every job slot is filled");
            serial_equivalent += wall;
            results.push(result);
            timings.push(JobTiming {
                index,
                label,
                wall,
                worker,
            });
        }
        FleetRun {
            results,
            stats: FleetStats {
                jobs: total,
                workers,
                elapsed,
                serial_equivalent,
                timings,
            },
        }
    }
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::auto()
    }
}

/// Resolves the worker count from an optional `TV_WORKERS` value.
fn auto_workers(env: Option<&str>) -> usize {
    if let Some(v) = env {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_submission_order() {
        // Uneven job costs ensure out-of-order completion under >1 worker.
        let items: Vec<u64> = (0..64).collect();
        let run = Fleet::new(4).map(items, |&i| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            i * i
        });
        let expect: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(run.results, expect);
        assert_eq!(run.stats.jobs, 64);
        assert_eq!(run.stats.timings.len(), 64);
        assert!(run.stats.timings.iter().enumerate().all(|(i, t)| t.index == i));
    }

    #[test]
    fn identical_results_across_worker_counts() {
        let f = |&i: &u64| i.wrapping_mul(6364136223846793005).rotate_left(17);
        let serial = Fleet::serial().map((0..40).collect(), f);
        for workers in [2, 3, 8] {
            let par = Fleet::new(workers).map((0..40).collect(), f);
            assert_eq!(par.results, serial.results, "workers = {workers}");
        }
    }

    #[test]
    fn workers_clamped_to_jobs_and_one() {
        assert_eq!(Fleet::new(0).workers(), 1);
        let run = Fleet::new(16).map(vec![1, 2], |&i: &i32| i);
        assert_eq!(run.stats.workers, 2, "never more workers than jobs");
        let empty = Fleet::new(3).map(Vec::<i32>::new(), |&i| i);
        assert!(empty.results.is_empty());
        assert_eq!(empty.stats.jobs, 0);
    }

    #[test]
    fn stats_counters_are_populated() {
        let run = Fleet::new(2).map((0..6).collect::<Vec<i32>>(), |&i| {
            std::thread::sleep(Duration::from_millis(1));
            i
        });
        assert!(run.stats.serial_equivalent >= Duration::from_millis(6));
        assert!(run.stats.elapsed > Duration::ZERO);
        assert!(run.stats.speedup() > 0.0);
        assert!(run.stats.slowest().is_some());
        let s = run.stats.summary();
        assert!(s.contains("6 jobs"), "{s}");
    }

    #[test]
    fn auto_worker_resolution() {
        assert_eq!(auto_workers(Some("3")), 3);
        assert_eq!(auto_workers(Some(" 5 ")), 5);
        // Invalid or zero values fall back to host parallelism (>= 1).
        assert!(auto_workers(Some("0")) >= 1);
        assert!(auto_workers(Some("nope")) >= 1);
        assert!(auto_workers(None) >= 1);
    }

    #[test]
    fn caught_panic_becomes_failure_row_not_abort() {
        let items: Vec<u64> = (0..8).collect();
        let labels: Vec<String> = items.iter().map(|i| format!("item-{i}")).collect();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let run = Fleet::new(3).map_caught(items, labels, |&i| {
            if i == 3 {
                panic!("injected failure on item {i}");
            }
            i * 2
        });
        std::panic::set_hook(hook);
        assert_eq!(run.results.len(), 8);
        for (i, r) in run.results.iter().enumerate() {
            if i == 3 {
                let p = r.as_ref().expect_err("item 3 panicked");
                assert_eq!(p.index, 3);
                assert_eq!(p.label, "item-3");
                assert!(p.payload.contains("injected failure on item 3"), "{p}");
            } else {
                assert_eq!(*r.as_ref().expect("others complete"), i as u64 * 2);
            }
        }
    }

    #[test]
    fn observer_sees_every_completion_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let items: Vec<u64> = (0..32).collect();
        let labels = vec![String::new(); 32];
        let run = Fleet::new(4).map_caught_observed(
            items,
            labels,
            |&i| i + 1,
            |index, result: &Result<u64, JobPanic>| {
                seen.lock()
                    .unwrap()
                    .push((index, *result.as_ref().expect("no panics here")));
            },
        );
        assert_eq!(run.results.len(), 32);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let expect: Vec<(usize, u64)> = (0..32).map(|i| (i as usize, i + 1)).collect();
        assert_eq!(seen, expect, "one observation per item, values intact");
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("formatted"));
        assert_eq!(panic_message(owned.as_ref()), "formatted");
        let odd: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(odd.as_ref()), "opaque panic payload");
    }

    #[test]
    fn job_label_and_seed() {
        let job = Job::new(
            Benchmark::Gcc,
            Voltage::low_fault(),
            Scheme::Abs,
            RunConfig::quick(),
        );
        assert_eq!(job.seed(), 42);
        let label = job.label();
        assert!(label.starts_with("gcc/ABS@"), "{label}");
    }
}
