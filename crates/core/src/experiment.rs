//! The measurement driver for the paper's evaluation.
//!
//! An [`Experiment`] runs one benchmark at one supply voltage under any
//! subset of the comparative schemes. Every scheme consumes the identical
//! dynamic instruction stream (same seed, same committed count), so cycle
//! and energy differences are attributable purely to the
//! tolerance/scheduling machinery — the paper's comparison methodology.

use tv_energy::{EnergyParams, OverheadTuple, RunEnergy};
use tv_timing::Voltage;
use tv_uarch::SimStats;
use tv_workloads::Benchmark;

use crate::fleet::{Fleet, FleetStats, Job};
use crate::schemes::Scheme;

/// Measurement parameters shared by every run of an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Committed instructions measured per run (the paper uses
    /// 1 M-instruction SimPoint phases).
    pub commits: u64,
    /// Committed instructions run before measurement to warm the caches,
    /// branch predictor and TEP (cold-start effects are excluded, as with
    /// warmed SimPoint phases).
    pub warmup: u64,
    /// Trace fast-forward before measurement (SimPoint phase start).
    pub fast_forward: u64,
    /// Workload/die seed.
    pub seed: u64,
    /// CDL criticality threshold (paper: CT = 8 is best, §3.5.2).
    pub criticality_threshold: u32,
    /// Energy parameters.
    pub energy: EnergyParams,
}

impl RunConfig {
    /// A fast configuration for tests and examples (100 k commits).
    pub fn quick() -> Self {
        RunConfig {
            commits: 100_000,
            warmup: 50_000,
            fast_forward: 0,
            seed: 42,
            criticality_threshold: 8,
            energy: EnergyParams::core1_45nm(),
        }
    }

    /// The paper's measurement length: a 1 M-instruction phase.
    pub fn paper() -> Self {
        RunConfig {
            commits: 1_000_000,
            warmup: 200_000,
            ..Self::quick()
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// The outcome of one scheme's run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// The scheme that ran.
    pub scheme: Scheme,
    /// Pipeline statistics.
    pub stats: SimStats,
    /// Energy accounting.
    pub energy: RunEnergy,
}

/// One benchmark × voltage experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    bench: Benchmark,
    vdd: Voltage,
    config: RunConfig,
}

impl Experiment {
    /// Creates an experiment.
    pub fn new(bench: Benchmark, vdd: Voltage, config: RunConfig) -> Self {
        Experiment { bench, vdd, config }
    }

    /// The benchmark under test.
    pub fn benchmark(&self) -> Benchmark {
        self.bench
    }

    /// The faulty-environment supply voltage.
    pub fn voltage(&self) -> Voltage {
        self.vdd
    }

    /// The measurement parameters.
    pub fn config(&self) -> RunConfig {
        self.config
    }

    /// Runs a single scheme.
    pub fn run_scheme(&self, scheme: Scheme) -> SchemeResult {
        let mut builder = scheme
            .pipeline_builder(self.bench, self.config.seed, self.vdd)
            .criticality_threshold(self.config.criticality_threshold);
        if self.config.fast_forward > 0 {
            builder = builder.fast_forward(self.config.fast_forward);
        }
        let mut pipe = builder.build();
        pipe.warm_up(self.config.warmup);
        let mut stats = pipe.run(self.config.commits);
        stats.label = scheme.name().to_string();
        let energy = RunEnergy::from_stats(&stats, &self.config.energy);
        SchemeResult {
            scheme,
            stats,
            energy,
        }
    }

    /// Runs all six schemes and bundles the results.
    pub fn run_all(&self) -> Evaluation {
        self.run_schemes(&Scheme::ALL)
    }

    /// Runs `scheme` over every SimPoint-selected representative phase and
    /// returns the weighted cycle count per committed instruction — the
    /// paper's full methodology (§4.2: "we focus our architectural
    /// simulation on representative phases extracted using the SimPoint
    /// toolset"). Phases are selected over `num_intervals` intervals of
    /// the configured `commits` length and clustered into `k` phases.
    ///
    /// # Panics
    ///
    /// Panics if `num_intervals` or `k` is zero (see
    /// [`SimPoint::analyze`](tv_workloads::SimPoint::analyze)).
    pub fn run_simpoint_weighted(
        &self,
        scheme: Scheme,
        num_intervals: usize,
        k: usize,
    ) -> f64 {
        let mut gen =
            tv_workloads::TraceGenerator::new(self.bench.profile(), self.config.seed);
        let sp = tv_workloads::SimPoint::analyze(
            &mut gen,
            num_intervals,
            self.config.commits,
            k,
            self.config.seed,
        );
        let mut weighted_cpi = 0.0;
        for phase in sp.phases() {
            let mut pipe = scheme
                .pipeline_builder(self.bench, self.config.seed, self.vdd)
                .criticality_threshold(self.config.criticality_threshold)
                .fast_forward(phase.start_seq.saturating_sub(self.config.warmup))
                .build();
            pipe.warm_up(self.config.warmup.min(phase.start_seq));
            let stats = pipe.run(self.config.commits);
            weighted_cpi += phase.weight * stats.cpi();
        }
        weighted_cpi
    }

    /// Runs a subset of schemes (the fault-free baseline is always added —
    /// every overhead is measured against it). Jobs are submitted through
    /// an [`Fleet::auto`] engine; results are bit-identical to a serial
    /// loop over [`run_scheme`](Self::run_scheme).
    pub fn run_schemes(&self, schemes: &[Scheme]) -> Evaluation {
        self.run_schemes_on(&Fleet::auto(), schemes)
    }

    /// Runs all six schemes on the given engine.
    pub fn run_all_on(&self, fleet: &Fleet) -> Evaluation {
        self.run_schemes_on(fleet, &Scheme::ALL)
    }

    /// Runs a subset of schemes on the given engine (the fault-free
    /// baseline is always added).
    pub fn run_schemes_on(&self, fleet: &Fleet, schemes: &[Scheme]) -> Evaluation {
        let jobs: Vec<Job> = with_baseline(schemes)
            .into_iter()
            .map(|s| Job::new(self.bench, self.vdd, s, self.config))
            .collect();
        let run = fleet.run_jobs(jobs);
        Evaluation {
            bench: self.bench,
            vdd: self.vdd,
            results: run.results,
        }
    }
}

/// Prepends the fault-free baseline to a scheme list when absent.
fn with_baseline(schemes: &[Scheme]) -> Vec<Scheme> {
    let mut list = Vec::with_capacity(schemes.len() + 1);
    if !schemes.contains(&Scheme::FaultFree) {
        list.push(Scheme::FaultFree);
    }
    list.extend_from_slice(schemes);
    list
}

/// Runs many experiments' scheme sets as one flattened job bag on the
/// engine — the harness entry point behind every figure and table. Each
/// spec's evaluation comes back in spec order (its scheme results in
/// scheme order, baseline first when added), along with the engine's
/// timing counters for the whole bag.
pub fn run_evaluations(
    fleet: &Fleet,
    specs: &[(Experiment, Vec<Scheme>)],
) -> (Vec<Evaluation>, FleetStats) {
    let mut jobs = Vec::new();
    let mut counts = Vec::with_capacity(specs.len());
    for (exp, schemes) in specs {
        let list = with_baseline(schemes);
        counts.push(list.len());
        jobs.extend(
            list.into_iter()
                .map(|s| Job::new(exp.bench, exp.vdd, s, exp.config)),
        );
    }
    let run = fleet.run_jobs(jobs);
    let mut results = run.results.into_iter();
    let evals = specs
        .iter()
        .zip(counts)
        .map(|((exp, _), count)| Evaluation {
            bench: exp.bench,
            vdd: exp.vdd,
            results: results.by_ref().take(count).collect(),
        })
        .collect();
    (evals, run.stats)
}

/// Results of one benchmark × voltage across schemes.
#[derive(Debug, Clone)]
pub struct Evaluation {
    bench: Benchmark,
    vdd: Voltage,
    results: Vec<SchemeResult>,
}

impl Evaluation {
    /// Bundles results produced outside the experiment's own job flow
    /// (the co-sim orchestration builds evaluations lane-by-lane).
    pub(crate) fn new(bench: Benchmark, vdd: Voltage, results: Vec<SchemeResult>) -> Self {
        Evaluation {
            bench,
            vdd,
            results,
        }
    }

    /// The benchmark evaluated.
    pub fn benchmark(&self) -> Benchmark {
        self.bench
    }

    /// The faulty-environment voltage.
    pub fn voltage(&self) -> Voltage {
        self.vdd
    }

    /// All scheme results.
    pub fn results(&self) -> &[SchemeResult] {
        &self.results
    }

    /// The result of `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the scheme was not part of the experiment.
    pub fn result(&self, scheme: Scheme) -> &SchemeResult {
        self.results
            .iter()
            .find(|r| r.scheme == scheme)
            .unwrap_or_else(|| panic!("scheme {scheme} was not run"))
    }

    /// Fault-free IPC (Table 1, column 2).
    pub fn fault_free_ipc(&self) -> f64 {
        self.result(Scheme::FaultFree).stats.ipc()
    }

    /// Observed fault rate (%) under `scheme`.
    pub fn fault_rate_pct(&self, scheme: Scheme) -> f64 {
        self.result(scheme).stats.fault_rate() * 100.0
    }

    /// `(performance %, ED %)` overhead of `scheme` versus fault-free
    /// execution (Table 1's Razor/EP columns).
    pub fn overhead(&self, scheme: Scheme) -> OverheadTuple {
        OverheadTuple::relative_to(
            &self.result(scheme).energy,
            &self.result(Scheme::FaultFree).energy,
        )
    }

    /// Performance overhead of `scheme` normalized to the EP baseline
    /// (Figures 4 and 8; lower is better, 1.0 = as bad as EP).
    ///
    /// # Panics
    ///
    /// Panics if EP was not part of the experiment.
    pub fn relative_perf_overhead(&self, scheme: Scheme) -> f64 {
        let ep = self.overhead(Scheme::ErrorPadding).perf_pct;
        let s = self.overhead(scheme).perf_pct;
        (s / ep.max(1e-9)).max(0.0)
    }

    /// ED overhead of `scheme` normalized to the EP baseline (Figures 5
    /// and 9).
    pub fn relative_ed_overhead(&self, scheme: Scheme) -> f64 {
        let ep = self.overhead(Scheme::ErrorPadding).ed_pct;
        let s = self.overhead(scheme).ed_pct;
        (s / ep.max(1e-9)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RunConfig {
        RunConfig {
            commits: 40_000,
            warmup: 40_000,
            ..RunConfig::quick()
        }
    }

    #[test]
    fn evaluation_reproduces_paper_shape_high_fault() {
        let exp = Experiment::new(Benchmark::Bzip2, Voltage::high_fault(), small_config());
        let eval = exp.run_all();

        // Razor ≫ EP in overhead; the proposed schemes beat EP strongly.
        let razor = eval.overhead(Scheme::Razor);
        let ep = eval.overhead(Scheme::ErrorPadding);
        assert!(razor.perf_pct > ep.perf_pct, "razor {razor} vs ep {ep}");
        assert!(ep.perf_pct > 0.5, "EP overhead must be visible: {ep}");
        for s in Scheme::PROPOSED {
            let rel = eval.relative_perf_overhead(s);
            assert!(
                rel < 0.6,
                "{s} should remove ≥40% of EP's overhead, got {rel:.2}"
            );
            let rel_ed = eval.relative_ed_overhead(s);
            assert!(rel_ed < 0.8, "{s} relative ED {rel_ed:.2}");
        }
    }

    #[test]
    fn fault_rates_track_table1() {
        let cfg = small_config();
        let hi = Experiment::new(Benchmark::Astar, Voltage::high_fault(), cfg)
            .run_schemes(&[Scheme::Abs]);
        let lo = Experiment::new(Benchmark::Astar, Voltage::low_fault(), cfg)
            .run_schemes(&[Scheme::Abs]);
        let fr_hi = hi.fault_rate_pct(Scheme::Abs);
        let fr_lo = lo.fault_rate_pct(Scheme::Abs);
        // Table 1: astar 6.74 % @ 0.97 V, 2.01 % @ 1.04 V.
        assert!((fr_hi - 6.74).abs() < 2.5, "high FR {fr_hi:.2}");
        assert!((fr_lo - 2.01).abs() < 1.2, "low FR {fr_lo:.2}");
        assert!(fr_hi > fr_lo);
    }

    #[test]
    fn schemes_commit_identical_work() {
        let exp = Experiment::new(Benchmark::Gcc, Voltage::low_fault(), small_config());
        let eval = exp.run_schemes(&[Scheme::Razor, Scheme::ErrorPadding, Scheme::Cds]);
        let commits: Vec<u64> = eval.results().iter().map(|r| r.stats.committed).collect();
        assert!(commits.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn simpoint_weighted_cpi_is_plausible() {
        let cfg = RunConfig {
            commits: 20_000,
            warmup: 10_000,
            ..RunConfig::quick()
        };
        let exp = Experiment::new(Benchmark::Gcc, Voltage::low_fault(), cfg);
        let cpi = exp.run_simpoint_weighted(Scheme::FaultFree, 6, 2);
        // gcc's fault-free CPI sits well inside (0.4, 3.0) for any phase mix.
        assert!(cpi > 0.4 && cpi < 3.0, "weighted CPI {cpi}");
    }

    #[test]
    fn fleet_matches_serial_and_groups_specs() {
        let cfg = RunConfig {
            commits: 10_000,
            warmup: 5_000,
            ..RunConfig::quick()
        };
        let specs = vec![
            (
                Experiment::new(Benchmark::Gcc, Voltage::low_fault(), cfg),
                vec![Scheme::Abs],
            ),
            (
                Experiment::new(Benchmark::Astar, Voltage::high_fault(), cfg),
                vec![Scheme::Razor, Scheme::Cds],
            ),
        ];
        let (evals, stats) = run_evaluations(&Fleet::new(3), &specs);
        assert_eq!(evals.len(), 2);
        // Baseline prepended per spec: 2 + 3 jobs.
        assert_eq!(stats.jobs, 5);
        assert_eq!(evals[0].results().len(), 2);
        assert_eq!(evals[1].results().len(), 3);
        assert_eq!(evals[1].benchmark(), Benchmark::Astar);
        // Identical to a direct serial scheme run.
        let serial = specs[0].0.run_scheme(Scheme::Abs);
        assert_eq!(evals[0].result(Scheme::Abs), &serial);
    }

    #[test]
    #[should_panic(expected = "was not run")]
    fn missing_scheme_panics() {
        let exp = Experiment::new(Benchmark::Gcc, Voltage::low_fault(), small_config());
        let eval = exp.run_schemes(&[Scheme::Razor]);
        let _ = eval.result(Scheme::Cds);
    }
}
