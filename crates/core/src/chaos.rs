//! Deterministic, seed-driven fault injection for the platform itself.
//!
//! The paper's thesis is detect-and-recover: never trust every path to
//! be clean, catch the violation and replay. This module holds the
//! *platform* to that standard. A [`ChaosPlan`] — ChaCha12-seeded and
//! fingerprinted like a campaign configuration, so every run is
//! replayable from its `seed:profile` pair — schedules faults from a
//! small taxonomy against the persistence and process fabric:
//!
//! * [`Site::PersistWrite`] — transient I/O errors in
//!   [`write_atomic`](crate::persist::write_atomic) publications;
//! * [`Site::JournalAppend`] — write errors, short (torn) writes and
//!   silent bit-flips in campaign-journal appends, via the [`ChaosIo`]
//!   writer wrapper;
//! * [`Site::WorkerExit`] / [`Site::WorkerStall`] /
//!   [`Site::WorkerGarbage`] — cluster worker processes dying mid-job,
//!   hanging briefly, or emitting a corrupt protocol frame;
//! * [`Site::ConnReset`] / [`Site::ConnStall`] — the campaign server
//!   dropping a connection before the response or dribbling it out
//!   slow-loris style.
//!
//! Faults are injected behind zero-cost-off hooks: every hook first
//! checks one relaxed atomic ([`active_plan`] returns `None` without
//! touching a lock when nothing is installed), so production runs pay a
//! single predictable branch. Activation mirrors the cluster kill hook:
//! either [`install`] in-process or `TV_CHAOS=<seed>:<profile>` in the
//! environment ([`install_from_env`]), which the cluster coordinator
//! re-derives per worker slot and generation so respawned workers draw
//! fresh (but still replayable) schedules.
//!
//! # The injection doctrine
//!
//! Silent corruption is only injected where the platform can *detect*
//! it: journal rows carry per-row CRC32s and store entries carry
//! checksum sidecars, so a flipped bit is quarantined or evicted, never
//! believed. Everywhere else (persist, connections, workers) the
//! injected faults are loud — errors, kills, resets — because a fault
//! the platform cannot even observe is a test of nothing. Under every
//! built-in profile the final campaign CSV must be byte-identical to a
//! fault-free run; the `chaos` bench bin enforces exactly that.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tv_prng::{ChaCha12Rng, Rng, SeedableRng};

use crate::persist::fnv1a;

/// Env var activating chaos injection: `TV_CHAOS=<seed>:<profile>`.
pub const ENV: &str = "TV_CHAOS";

/// Number of distinct injection sites (one decision counter each).
const SITES: usize = 7;

/// One fault-injection site in the platform fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// `write_atomic` publication: transient error before any byte lands.
    PersistWrite,
    /// Journal append through [`ChaosIo`]: error, short write, or flip.
    JournalAppend,
    /// Cluster worker: exit without replying (the job dies with it).
    WorkerExit,
    /// Cluster worker: stall briefly before running the job.
    WorkerStall,
    /// Cluster worker: emit a garbage protocol frame, then die.
    WorkerGarbage,
    /// Server connection: drop without sending a response.
    ConnReset,
    /// Server connection: stall mid-response (slow-loris).
    ConnStall,
}

impl Site {
    /// Every site, indexed consistently with the per-site counters.
    pub const ALL: [Site; SITES] = [
        Site::PersistWrite,
        Site::JournalAppend,
        Site::WorkerExit,
        Site::WorkerStall,
        Site::WorkerGarbage,
        Site::ConnReset,
        Site::ConnStall,
    ];

    fn idx(self) -> usize {
        match self {
            Site::PersistWrite => 0,
            Site::JournalAppend => 1,
            Site::WorkerExit => 2,
            Site::WorkerStall => 3,
            Site::WorkerGarbage => 4,
            Site::ConnReset => 5,
            Site::ConnStall => 6,
        }
    }

    /// Stable short name used in counter summaries and `chaos.csv`.
    pub fn name(self) -> &'static str {
        match self {
            Site::PersistWrite => "persist",
            Site::JournalAppend => "journal",
            Site::WorkerExit => "worker_exit",
            Site::WorkerStall => "worker_stall",
            Site::WorkerGarbage => "worker_garbage",
            Site::ConnReset => "conn_reset",
            Site::ConnStall => "conn_stall",
        }
    }
}

/// Per-site fault probabilities — a named, versioned fault mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Stable profile name (part of the plan fingerprint).
    pub name: &'static str,
    /// `P(fault)` per site, indexed by [`Site::ALL`] order.
    pub rates: [f64; SITES],
}

impl Profile {
    /// The injection probability at `site`.
    pub fn rate(&self, site: Site) -> f64 {
        self.rates[site.idx()]
    }
}

/// The built-in profiles, in escalating order of violence. `off` injects
/// nothing (useful as the control leg of a chaos sweep).
pub const PROFILES: [Profile; 6] = [
    Profile {
        name: "off",
        rates: [0.0; SITES],
    },
    // Journal/persist faults only: exercises CRC quarantine + re-execute.
    Profile {
        name: "journal",
        rates: [0.05, 0.20, 0.0, 0.0, 0.0, 0.0, 0.0],
    },
    // Process-fabric faults only: exercises reassignment, backoff and
    // slot quarantine.
    Profile {
        name: "cluster",
        rates: [0.0, 0.0, 0.10, 0.06, 0.06, 0.0, 0.0],
    },
    // Connection faults only: exercises loadgen's retry/backoff path.
    Profile {
        name: "serve",
        rates: [0.0, 0.0, 0.0, 0.0, 0.0, 0.25, 0.10],
    },
    // A little of everything.
    Profile {
        name: "light",
        rates: [0.02, 0.08, 0.04, 0.03, 0.02, 0.08, 0.04],
    },
    // A lot of everything — the escalation endpoint.
    Profile {
        name: "heavy",
        rates: [0.08, 0.30, 0.12, 0.08, 0.08, 0.30, 0.12],
    },
];

/// Looks a built-in profile up by name.
pub fn profile(name: &str) -> Option<Profile> {
    PROFILES.iter().copied().find(|p| p.name == name)
}

/// splitmix64-style mixer (same idiom as the campaign tuple sweep).
fn mix2(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What a [`ChaosIo`] write does when its fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No fault this write.
    None,
    /// Fail before writing anything.
    Error,
    /// Write a prefix of the buffer, then fail — a torn append.
    Short,
    /// Flip one bit of the buffer and write it all — silent corruption
    /// (only survivable because journal rows are CRC-checked).
    Flip {
        /// Byte offset to corrupt (taken modulo the buffer length).
        offset: usize,
        /// Non-zero XOR mask for that byte.
        mask: u8,
    },
}

/// A deterministic fault schedule: a pure function of `(seed, profile)`
/// plus one atomic sequence counter per site, so the n-th decision at a
/// site is identical across replays no matter how threads interleave
/// *between* sites.
#[derive(Debug)]
pub struct ChaosPlan {
    seed: u64,
    profile: Profile,
    sequence: [AtomicU64; SITES],
    injected: [AtomicU64; SITES],
}

impl ChaosPlan {
    /// Builds a plan from a seed and a built-in profile name.
    ///
    /// # Errors
    ///
    /// Names no built-in profile matches are rejected with the list of
    /// valid names.
    pub fn new(seed: u64, profile_name: &str) -> Result<ChaosPlan, String> {
        let profile = profile(profile_name).ok_or_else(|| {
            let names: Vec<&str> = PROFILES.iter().map(|p| p.name).collect();
            format!("unknown chaos profile `{profile_name}` (built-ins: {})", names.join(", "))
        })?;
        Ok(ChaosPlan {
            seed,
            profile,
            sequence: Default::default(),
            injected: Default::default(),
        })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// The replayable identity line, campaign-`meta_line` style.
    pub fn meta(&self) -> String {
        format!("# tv-chaos v1 seed={} profile={}", self.seed, self.profile.name)
    }

    /// FNV-1a fingerprint of [`meta`](Self::meta) — the identity under
    /// which a chaos run is recorded and replayed.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.meta().as_bytes())
    }

    /// The env value (`seed:profile`) reproducing this plan.
    pub fn env_value(&self) -> String {
        format!("{}:{}", self.seed, self.profile.name)
    }

    /// The env value for a worker in `slot` at respawn `generation`:
    /// same profile, slot/generation-derived seed — replayable, but
    /// respawned workers do not replay their predecessor's schedule
    /// (which would turn a transient fault into a kill loop).
    pub fn worker_env_value(&self, slot: usize, generation: u64) -> String {
        let derived = mix2(self.seed, 0x776f_726b ^ (slot as u64) << 32 ^ generation);
        format!("{derived}:{}", self.profile.name)
    }

    /// One seeded RNG per decision: site-local sequence numbers keep the
    /// schedule replayable per site regardless of cross-site interleaving.
    fn draw(&self, site: Site) -> ChaCha12Rng {
        let n = self.sequence[site.idx()].fetch_add(1, Ordering::Relaxed);
        ChaCha12Rng::seed_from_u64(mix2(self.seed, mix2(site.idx() as u64 + 1, n)))
    }

    /// Decides whether the next event at `site` faults.
    pub fn decide(&self, site: Site) -> bool {
        let p = self.profile.rate(site);
        if p <= 0.0 {
            return false;
        }
        let fire = self.draw(site).gen_bool(p);
        if fire {
            self.injected[site.idx()].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Decides the fault (if any) for one `len`-byte write at `site`.
    pub fn write_fault(&self, site: Site, len: usize) -> WriteFault {
        let p = self.profile.rate(site);
        if p <= 0.0 {
            return WriteFault::None;
        }
        let mut rng = self.draw(site);
        if !rng.gen_bool(p) {
            return WriteFault::None;
        }
        self.injected[site.idx()].fetch_add(1, Ordering::Relaxed);
        match rng.gen_range(0..3u32) {
            0 => WriteFault::Error,
            1 => WriteFault::Short,
            _ => WriteFault::Flip {
                offset: rng.gen_range(0..len.max(1)),
                mask: 1 << rng.gen_range(0..8u32),
            },
        }
    }

    /// A bounded stall length for a fired [`Site::WorkerStall`] /
    /// [`Site::ConnStall`] fault.
    pub fn stall(&self, site: Site) -> Duration {
        Duration::from_millis(self.draw(site).gen_range(10..120u64))
    }

    /// Faults injected so far at `site`.
    pub fn injected(&self, site: Site) -> u64 {
        self.injected[site.idx()].load(Ordering::Relaxed)
    }

    /// Faults injected so far across all sites.
    pub fn total_injected(&self) -> u64 {
        Site::ALL.iter().map(|&s| self.injected(s)).sum()
    }

    /// One-line `site=count` summary of the injected faults.
    pub fn counters(&self) -> String {
        Site::ALL
            .iter()
            .map(|&s| format!("{}={}", s.name(), self.injected(s)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Fast-path flag: `false` means [`active_plan`] returns `None` without
/// taking the lock — the zero-cost-off guarantee.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed plan. A `Mutex` (not `OnceLock`) so the chaos bench bin
/// can run several profiles in one process.
static PLAN: Mutex<Option<Arc<ChaosPlan>>> = Mutex::new(None);

/// Installs `plan` process-globally; every hook consults it until
/// [`uninstall`]. Returns the shared handle (for reading counters).
pub fn install(plan: ChaosPlan) -> Arc<ChaosPlan> {
    let plan = Arc::new(plan);
    *PLAN.lock().expect("chaos plan lock") = Some(Arc::clone(&plan));
    ENABLED.store(true, Ordering::Release);
    plan
}

/// Removes the installed plan; hooks return to their zero-cost-off path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *PLAN.lock().expect("chaos plan lock") = None;
}

/// The installed plan, or `None` (one relaxed load when off).
pub fn active_plan() -> Option<Arc<ChaosPlan>> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    PLAN.lock().expect("chaos plan lock").clone()
}

/// Installs a plan from `TV_CHAOS=<seed>:<profile>` when set.
///
/// # Errors
///
/// A set-but-malformed value is an error (silently ignoring a chaos
/// request would fake a passing run), naming the accepted syntax.
pub fn install_from_env() -> Result<Option<Arc<ChaosPlan>>, String> {
    let Ok(value) = std::env::var(ENV) else {
        return Ok(None);
    };
    let plan = plan_from_value(&value)?;
    Ok(Some(install(plan)))
}

/// Parses a `<seed>:<profile>` activation value into a plan.
///
/// # Errors
///
/// Rejects values without the `seed:profile` shape, non-numeric seeds
/// and unknown profile names.
pub fn plan_from_value(value: &str) -> Result<ChaosPlan, String> {
    let (seed, profile_name) = value
        .split_once(':')
        .ok_or_else(|| format!("{ENV} must be <seed>:<profile>, got `{value}`"))?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| format!("bad {ENV} seed `{seed}` (need a u64)"))?;
    ChaosPlan::new(seed, profile_name)
}

/// A `Write` wrapper injecting [`WriteFault`]s per the active plan.
///
/// With no plan installed (or `plan: None` and nothing global) it is a
/// transparent pass-through. `Short` faults write a real prefix before
/// failing, so the bytes on disk are genuinely torn; `Flip` faults
/// corrupt one bit and report success, modelling silent media/DMA
/// corruption that only a row CRC can catch.
pub struct ChaosIo<W: Write> {
    inner: W,
    site: Site,
    plan: Option<Arc<ChaosPlan>>,
}

impl<W: Write> ChaosIo<W> {
    /// Wraps a journal append handle, consulting the global plan.
    pub fn journal(inner: W) -> Self {
        ChaosIo {
            inner,
            site: Site::JournalAppend,
            plan: None,
        }
    }

    /// Wraps `inner` with an explicit plan (tests; no global state).
    pub fn with_plan(inner: W, site: Site, plan: Arc<ChaosPlan>) -> Self {
        ChaosIo {
            inner,
            site,
            plan: Some(plan),
        }
    }

    fn plan(&self) -> Option<Arc<ChaosPlan>> {
        match &self.plan {
            Some(p) => Some(Arc::clone(p)),
            None => active_plan(),
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosIo<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(plan) = self.plan() else {
            return self.inner.write(buf);
        };
        match plan.write_fault(self.site, buf.len()) {
            WriteFault::None => self.inner.write(buf),
            WriteFault::Error => Err(io::Error::other("chaos: injected write error")),
            WriteFault::Short => {
                let prefix = (buf.len() / 2).max(1).min(buf.len());
                self.inner.write_all(&buf[..prefix])?;
                let _ = self.inner.flush();
                Err(io::Error::other(format!(
                    "chaos: injected short write ({prefix}/{} bytes)",
                    buf.len()
                )))
            }
            WriteFault::Flip { offset, mask } => {
                if buf.is_empty() {
                    return Ok(0);
                }
                let mut corrupt = buf.to_vec();
                let at = offset % corrupt.len();
                corrupt[at] ^= mask;
                self.inner.write_all(&corrupt)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Deterministically damages `bytes` in place — one bit-flip or one
/// truncation, chosen and placed by `seed`. Returns a description of the
/// damage. Used for at-rest corruption (journal files, store entries)
/// where there is no write path to wrap. Empty inputs are left alone.
pub fn corrupt_bytes(bytes: &mut Vec<u8>, seed: u64) -> String {
    if bytes.is_empty() {
        return "no-op (empty)".to_string();
    }
    let mut rng = ChaCha12Rng::seed_from_u64(mix2(seed, 0xc0_44u64));
    let at = rng.gen_range(0..bytes.len());
    if rng.gen_bool(0.5) {
        let mask = 1u8 << rng.gen_range(0..8u32);
        bytes[at] ^= mask;
        format!("flip byte {at} mask {mask:#04x}")
    } else {
        bytes.truncate(at);
        format!("truncate to {at} bytes")
    }
}

/// [`corrupt_bytes`] applied to a file on disk (read, damage, rewrite).
///
/// # Errors
///
/// Propagates read/write errors.
pub fn corrupt_file(path: &Path, seed: u64) -> io::Result<String> {
    let mut bytes = std::fs::read(path)?;
    let what = corrupt_bytes(&mut bytes, seed);
    std::fs::write(path, &bytes)?;
    Ok(what)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_replayable_per_site() {
        let a = ChaosPlan::new(42, "heavy").expect("profile");
        let b = ChaosPlan::new(42, "heavy").expect("profile");
        let da: Vec<bool> = (0..200).map(|_| a.decide(Site::WorkerExit)).collect();
        let db: Vec<bool> = (0..200).map(|_| b.decide(Site::WorkerExit)).collect();
        assert_eq!(da, db, "same seed, same site, same schedule");
        assert!(da.iter().any(|&f| f), "heavy profile must fire sometimes");
        assert!(!da.iter().all(|&f| f), "heavy profile must not always fire");

        // Interleaving decisions at another site must not perturb the
        // first site's schedule.
        let c = ChaosPlan::new(42, "heavy").expect("profile");
        let dc: Vec<bool> = (0..200)
            .map(|_| {
                c.decide(Site::ConnReset);
                c.decide(Site::WorkerExit)
            })
            .collect();
        assert_eq!(da, dc, "schedules are site-local");

        let other = ChaosPlan::new(43, "heavy").expect("profile");
        let dother: Vec<bool> = (0..200).map(|_| other.decide(Site::WorkerExit)).collect();
        assert_ne!(da, dother, "different seeds diverge");
    }

    #[test]
    fn off_profile_never_fires_and_counts_nothing() {
        let plan = ChaosPlan::new(7, "off").expect("profile");
        for _ in 0..500 {
            for site in Site::ALL {
                assert!(!plan.decide(site));
                assert_eq!(plan.write_fault(site, 64), WriteFault::None);
            }
        }
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn fingerprint_follows_seed_and_profile() {
        let a = ChaosPlan::new(1, "light").unwrap();
        let b = ChaosPlan::new(1, "light").unwrap();
        let c = ChaosPlan::new(2, "light").unwrap();
        let d = ChaosPlan::new(1, "heavy").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
        assert!(a.meta().starts_with("# tv-chaos v1 "));
        assert_eq!(plan_from_value(&a.env_value()).unwrap().fingerprint(), a.fingerprint());
    }

    #[test]
    fn bad_activation_values_are_rejected() {
        assert!(plan_from_value("no-colon").is_err());
        assert!(plan_from_value("x:heavy").is_err());
        assert!(plan_from_value("5:swarm-of-bees").is_err());
        assert!(ChaosPlan::new(0, "nope")
            .unwrap_err()
            .contains("heavy"), "error lists the built-ins");
        for p in PROFILES {
            assert!(plan_from_value(&format!("9:{}", p.name)).is_ok());
        }
    }

    #[test]
    fn worker_env_values_differ_by_slot_and_generation() {
        let plan = ChaosPlan::new(11, "cluster").unwrap();
        let mut seen = std::collections::HashSet::new();
        for slot in 0..4 {
            for generation in 0..4 {
                let v = plan.worker_env_value(slot, generation);
                assert!(seen.insert(v.clone()), "duplicate worker env {v}");
                let derived = plan_from_value(&v).expect("derived value parses");
                assert_eq!(derived.profile().name, "cluster");
            }
        }
    }

    #[test]
    fn chaos_io_fault_modes_match_bytes_on_disk() {
        // Probability 1 on the journal site: every write faults, and the
        // three modes all occur across a run of writes.
        let mut always = profile("journal").unwrap();
        always.rates[Site::JournalAppend.idx()] = 1.0;
        let plan = Arc::new(ChaosPlan {
            seed: 5,
            profile: always,
            sequence: Default::default(),
            injected: Default::default(),
        });
        let payload = b"0/ABS\t0,paper,gcc,0.970,ABS,1,clean,1,2,3,4,5,6,7,8,9,10,11,-\n";
        let (mut errors, mut shorts, mut flips) = (0, 0, 0);
        for _ in 0..60 {
            let mut sink = Vec::new();
            let mut w = ChaosIo::with_plan(&mut sink, Site::JournalAppend, Arc::clone(&plan));
            match w.write_all(payload) {
                Err(e) if e.to_string().contains("short write") => {
                    shorts += 1;
                    assert!(!sink.is_empty() && sink.len() < payload.len(), "torn prefix");
                    assert_eq!(&payload[..sink.len()], &sink[..], "prefix is honest");
                }
                Err(_) => {
                    errors += 1;
                    assert!(sink.is_empty(), "error mode writes nothing");
                }
                Ok(()) => {
                    flips += 1;
                    assert_eq!(sink.len(), payload.len());
                    let diff: Vec<usize> = (0..sink.len())
                        .filter(|&i| sink[i] != payload[i])
                        .collect();
                    assert_eq!(diff.len(), 1, "flip corrupts exactly one byte");
                    assert_eq!(
                        (sink[diff[0]] ^ payload[diff[0]]).count_ones(),
                        1,
                        "exactly one bit"
                    );
                }
            }
        }
        assert!(errors > 0 && shorts > 0 && flips > 0, "{errors}/{shorts}/{flips}");
        assert_eq!(plan.injected(Site::JournalAppend), 60);
    }

    #[test]
    fn chaos_io_is_transparent_without_a_plan() {
        // No global install, no explicit plan: bytes pass through intact.
        let mut sink = Vec::new();
        let mut w = ChaosIo::journal(&mut sink);
        w.write_all(b"hello\n").expect("clean write");
        w.flush().expect("clean flush");
        assert_eq!(sink, b"hello\n");
    }

    #[test]
    fn corrupt_bytes_is_deterministic_and_always_damages() {
        let original: Vec<u8> = (0u8..200).collect();
        for seed in 0..50u64 {
            let mut a = original.clone();
            let mut b = original.clone();
            let wa = corrupt_bytes(&mut a, seed);
            let wb = corrupt_bytes(&mut b, seed);
            assert_eq!(a, b, "same seed, same damage");
            assert_eq!(wa, wb);
            assert_ne!(a, original, "seed {seed} failed to damage");
        }
        let mut empty: Vec<u8> = Vec::new();
        assert!(corrupt_bytes(&mut empty, 3).contains("no-op"));
    }
}
