//! The comparative schemes of the paper's evaluation (§5).
//!
//! | Scheme | Tolerance | Selection | Predictor |
//! |---|---|---|---|
//! | FaultFree | none (1.10 V golden run) | ABS | – |
//! | Razor | replay every violation | ABS | – |
//! | ErrorPadding | whole-pipeline stall per predicted violation | ABS | TEP |
//! | Abs | violation-aware scheduling | ABS | TEP |
//! | Ffs | violation-aware scheduling | FFS | TEP |
//! | Cds | violation-aware scheduling | CDS (CT = 8) | TEP |
//! | NoTolerance | *none — control* | ABS | – |
//!
//! Per §4.2, "for both fault-free execution and Error Padding scheme, we
//! use the age based instruction selection policy".
//!
//! [`Scheme::NoTolerance`] is not one of the paper's schemes and never
//! appears in [`Scheme::ALL`]: it is the deliberately broken control the
//! fault-injection campaigns use to prove the golden-model oracle has
//! teeth — faults are injected but nothing corrects them, so the oracle
//! must flag corrupted commits.

use tv_timing::Voltage;
use tv_uarch::{AgeBasedSelect, Pipeline, PipelineBuilder, SelectPolicy, ToleranceMode};
use tv_workloads::{Benchmark, Profile, WorkloadSpec};

use crate::select::{CriticalityDrivenSelect, FaultyFirstSelect};
use crate::workload::Workload;

/// One of the paper's comparative schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scheme {
    /// Fault-free golden run at nominal voltage.
    FaultFree,
    /// Reactive replay for every violation (Razor \[3\]).
    Razor,
    /// Stall-based error padding for predicted violations ([12, 13]).
    ErrorPadding,
    /// Violation-aware scheduling with age-based selection.
    Abs,
    /// Violation-aware scheduling with faulty-first selection.
    Ffs,
    /// Violation-aware scheduling with criticality-driven selection.
    Cds,
    /// Deliberately broken control: faults are injected but never
    /// tolerated, so committed state corrupts. Used by the fault-injection
    /// campaigns to prove the golden-model oracle detects corruption; not
    /// part of [`Scheme::ALL`].
    NoTolerance,
}

impl Scheme {
    /// All schemes in presentation order.
    pub const ALL: [Scheme; 6] = [
        Scheme::FaultFree,
        Scheme::Razor,
        Scheme::ErrorPadding,
        Scheme::Abs,
        Scheme::Ffs,
        Scheme::Cds,
    ];

    /// The three proposed violation-aware schemes (Figures 4/5/8/9).
    pub const PROPOSED: [Scheme; 3] = [Scheme::Abs, Scheme::Ffs, Scheme::Cds];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::FaultFree => "FaultFree",
            Scheme::Razor => "Razor",
            Scheme::ErrorPadding => "EP",
            Scheme::Abs => "ABS",
            Scheme::Ffs => "FFS",
            Scheme::Cds => "CDS",
            Scheme::NoTolerance => "NoTolerance",
        }
    }

    /// The pipeline tolerance mode implementing this scheme.
    pub fn tolerance_mode(self) -> ToleranceMode {
        match self {
            Scheme::FaultFree => ToleranceMode::FaultFree,
            Scheme::Razor => ToleranceMode::Razor,
            Scheme::ErrorPadding => ToleranceMode::ErrorPadding,
            Scheme::Abs | Scheme::Ffs | Scheme::Cds => ToleranceMode::ViolationAware,
            Scheme::NoTolerance => ToleranceMode::NoTolerance,
        }
    }

    /// A fresh selection-policy instance for this scheme.
    pub fn policy(self) -> Box<dyn SelectPolicy> {
        match self {
            Scheme::Ffs => Box::new(FaultyFirstSelect::new()),
            Scheme::Cds => Box::new(CriticalityDrivenSelect::new()),
            _ => Box::new(AgeBasedSelect::new()),
        }
    }

    /// Whether this is one of the paper's proposed violation-aware schemes.
    pub fn is_proposed(self) -> bool {
        matches!(self, Scheme::Abs | Scheme::Ffs | Scheme::Cds)
    }

    /// Starts a pipeline builder configured for this scheme.
    ///
    /// The fault-free scheme always runs at nominal voltage (its defining
    /// property: "baseline machines have zero fault rate when executing at
    /// 1.1 V", §4.3); faulty schemes run at `vdd`.
    pub fn pipeline_builder(self, bench: Benchmark, seed: u64, vdd: Voltage) -> PipelineBuilder {
        self.pipeline_builder_with_profile(bench.profile(), seed, vdd)
    }

    /// [`pipeline_builder`](Scheme::pipeline_builder) for an explicit
    /// synthetic workload profile.
    pub fn pipeline_builder_with_profile(
        self,
        profile: Profile,
        seed: u64,
        vdd: Voltage,
    ) -> PipelineBuilder {
        self.pipeline_builder_with_spec(WorkloadSpec::Synthetic(profile), seed, vdd)
    }

    /// [`pipeline_builder`](Scheme::pipeline_builder) for a named
    /// [`Workload`] — synthetic benchmark or RISC-V program.
    pub fn pipeline_builder_for(
        self,
        workload: &Workload,
        seed: u64,
        vdd: Voltage,
    ) -> PipelineBuilder {
        self.pipeline_builder_with_spec(workload.spec(), seed, vdd)
    }

    /// [`pipeline_builder`](Scheme::pipeline_builder) for any workload
    /// recipe.
    pub fn pipeline_builder_with_spec(
        self,
        workload: WorkloadSpec,
        seed: u64,
        vdd: Voltage,
    ) -> PipelineBuilder {
        let vdd = if self == Scheme::FaultFree {
            Voltage::nominal()
        } else {
            vdd
        };
        Pipeline::builder_with_workload(workload, seed)
            .tolerance(self.tolerance_mode())
            .voltage(vdd)
            .policy(self.policy())
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_metadata() {
        assert_eq!(Scheme::ALL.len(), 6);
        assert!(
            !Scheme::ALL.contains(&Scheme::NoTolerance),
            "the broken control must never enter the paper's scheme set"
        );
        assert_eq!(
            Scheme::NoTolerance.tolerance_mode(),
            ToleranceMode::NoTolerance
        );
        assert!(!Scheme::NoTolerance.is_proposed());
        assert_eq!(Scheme::PROPOSED.len(), 3);
        assert!(Scheme::Abs.is_proposed());
        assert!(!Scheme::ErrorPadding.is_proposed());
        assert_eq!(Scheme::Cds.name(), "CDS");
        assert_eq!(Scheme::ErrorPadding.to_string(), "EP");
        assert_eq!(Scheme::Razor.tolerance_mode(), ToleranceMode::Razor);
        assert_eq!(
            Scheme::Ffs.tolerance_mode(),
            ToleranceMode::ViolationAware
        );
    }

    #[test]
    fn policies_match_paper_assignments() {
        assert_eq!(Scheme::FaultFree.policy().name(), "ABS");
        assert_eq!(Scheme::ErrorPadding.policy().name(), "ABS");
        assert_eq!(Scheme::Abs.policy().name(), "ABS");
        assert_eq!(Scheme::Ffs.policy().name(), "FFS");
        assert_eq!(Scheme::Cds.policy().name(), "CDS");
    }

    #[test]
    fn fault_free_scheme_runs_clean() {
        let stats = Scheme::FaultFree
            .pipeline_builder(Benchmark::Gcc, 5, Voltage::high_fault())
            .build()
            .run(5_000);
        assert_eq!(stats.faults_total(), 0, "fault-free ignores the faulty voltage");
    }

    #[test]
    fn proposed_scheme_runs_with_faults() {
        let stats = Scheme::Abs
            .pipeline_builder(Benchmark::Sjeng, 5, Voltage::high_fault())
            .build()
            .run(30_000);
        assert!(stats.faults_total() > 0);
        assert!(stats.slot_freezes > 0);
    }
}
