//! Result aggregation shared by the benchmark harnesses.

use tv_energy::OverheadTuple;

use crate::experiment::Evaluation;
use crate::schemes::Scheme;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Benchmark name.
    pub bench: String,
    /// Fault-free IPC.
    pub fault_free_ipc: f64,
    /// Fault rate (%) at 0.97 V.
    pub fr_097: f64,
    /// Razor overhead at 0.97 V.
    pub razor_097: OverheadTuple,
    /// EP overhead at 0.97 V.
    pub ep_097: OverheadTuple,
    /// Fault rate (%) at 1.04 V.
    pub fr_104: f64,
    /// Razor overhead at 1.04 V.
    pub razor_104: OverheadTuple,
    /// EP overhead at 1.04 V.
    pub ep_104: OverheadTuple,
}

impl Table1Row {
    /// Builds a row from the two per-voltage evaluations of one benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the evaluations are for different benchmarks or are
    /// missing the Razor/EP schemes.
    pub fn from_evaluations(hi_097: &Evaluation, lo_104: &Evaluation) -> Self {
        assert_eq!(
            hi_097.benchmark(),
            lo_104.benchmark(),
            "evaluations must cover the same benchmark"
        );
        Table1Row {
            bench: hi_097.benchmark().name().to_string(),
            fault_free_ipc: lo_104.fault_free_ipc(),
            fr_097: hi_097.fault_rate_pct(Scheme::Razor),
            razor_097: hi_097.overhead(Scheme::Razor),
            ep_097: hi_097.overhead(Scheme::ErrorPadding),
            fr_104: lo_104.fault_rate_pct(Scheme::Razor),
            razor_104: lo_104.overhead(Scheme::Razor),
            ep_104: lo_104.overhead(Scheme::ErrorPadding),
        }
    }
}

impl std::fmt::Display for Table1Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} {:>5.2}  {:>6.2} {:>16} {:>16}  {:>6.2} {:>16} {:>16}",
            self.bench,
            self.fault_free_ipc,
            self.fr_097,
            self.razor_097.to_string(),
            self.ep_097.to_string(),
            self.fr_104,
            self.razor_104.to_string(),
            self.ep_104.to_string(),
        )
    }
}

/// One bar group of Figures 4/5/8/9: per-benchmark relative overheads of
/// the three proposed schemes, normalized to EP.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Benchmark name (or "AVERAGE").
    pub bench: String,
    /// Relative overhead of ABS.
    pub abs: f64,
    /// Relative overhead of FFS.
    pub ffs: f64,
    /// Relative overhead of CDS.
    pub cds: f64,
}

impl FigureRow {
    /// Extracts the performance-overhead row (Figures 4/8).
    pub fn perf(eval: &Evaluation) -> Self {
        FigureRow {
            bench: eval.benchmark().name().to_string(),
            abs: eval.relative_perf_overhead(Scheme::Abs),
            ffs: eval.relative_perf_overhead(Scheme::Ffs),
            cds: eval.relative_perf_overhead(Scheme::Cds),
        }
    }

    /// Extracts the ED-overhead row (Figures 5/9).
    pub fn ed(eval: &Evaluation) -> Self {
        FigureRow {
            bench: eval.benchmark().name().to_string(),
            abs: eval.relative_ed_overhead(Scheme::Abs),
            ffs: eval.relative_ed_overhead(Scheme::Ffs),
            cds: eval.relative_ed_overhead(Scheme::Cds),
        }
    }

    /// Average reduction versus EP across the three schemes, in percent
    /// (the paper's "our schemes reduce the ... overhead by N %" figure).
    pub fn mean_reduction_pct(&self) -> f64 {
        (1.0 - (self.abs + self.ffs + self.cds) / 3.0) * 100.0
    }

    /// The scheme with the lowest relative overhead in this row.
    pub fn best(&self) -> Scheme {
        let mut best = (Scheme::Abs, self.abs);
        if self.ffs < best.1 {
            best = (Scheme::Ffs, self.ffs);
        }
        if self.cds < best.1 {
            best = (Scheme::Cds, self.cds);
        }
        best.0
    }
}

impl std::fmt::Display for FigureRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} {:>6.3} {:>6.3} {:>6.3}",
            self.bench, self.abs, self.ffs, self.cds
        )
    }
}

/// Arithmetic mean of figure rows (the paper's AVERAGE bar).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn average_row(rows: &[FigureRow]) -> FigureRow {
    assert!(!rows.is_empty(), "cannot average zero rows");
    let n = rows.len() as f64;
    FigureRow {
        bench: "AVERAGE".to_string(),
        abs: rows.iter().map(|r| r.abs).sum::<f64>() / n,
        ffs: rows.iter().map(|r| r.ffs).sum::<f64>() / n,
        cds: rows.iter().map(|r| r.cds).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(abs: f64, ffs: f64, cds: f64) -> FigureRow {
        FigureRow {
            bench: "x".into(),
            abs,
            ffs,
            cds,
        }
    }

    #[test]
    fn average_and_reduction() {
        let rows = [row(0.1, 0.2, 0.3), row(0.3, 0.2, 0.1)];
        let avg = average_row(&rows);
        assert!((avg.abs - 0.2).abs() < 1e-12);
        assert!((avg.ffs - 0.2).abs() < 1e-12);
        assert!((avg.cds - 0.2).abs() < 1e-12);
        assert!((avg.mean_reduction_pct() - 80.0).abs() < 1e-9);
        assert_eq!(avg.bench, "AVERAGE");
    }

    #[test]
    fn best_scheme_selection() {
        assert_eq!(row(0.1, 0.2, 0.3).best(), Scheme::Abs);
        assert_eq!(row(0.3, 0.1, 0.2).best(), Scheme::Ffs);
        assert_eq!(row(0.3, 0.2, 0.1).best(), Scheme::Cds);
    }

    #[test]
    #[should_panic(expected = "cannot average zero rows")]
    fn empty_average_panics() {
        let _ = average_row(&[]);
    }

    #[test]
    fn display_formats() {
        let r = row(0.123, 0.456, 0.789);
        let s = r.to_string();
        assert!(s.contains("0.123") && s.contains("0.789"));
    }
}
