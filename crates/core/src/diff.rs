//! Scheme-equivalence differential harness.
//!
//! The paper's schemes may differ only in *timing*, never in *work*: every
//! tolerance mode and selection policy must commit the identical
//! architectural instruction stream — same sequence numbers, same PCs,
//! same operations — because faults are either corrected (replay) or
//! tolerated in place (padding/stalls), and the trace is the single source
//! of architectural truth. This harness runs each `(benchmark, voltage,
//! seed)` tuple under every scheme via the [`Fleet`] engine, with the
//! cycle-level invariant auditor enabled, and checks:
//!
//! 1. all schemes commit bit-identical streams (FNV-1a over
//!    `(seq, pc, op)` triples), and
//! 2. no run violates a single pipeline invariant.
//!
//! Tuples name a [`Workload`], so the same harness diffs synthetic
//! benchmarks and real RISC-V programs (which additionally run under the
//! golden-model oracle when [`DiffConfig::oracle`] is set).

use tv_audit::AuditLevel;
use tv_timing::Voltage;
use tv_workloads::Benchmark;

use crate::fleet::Fleet;
use crate::schemes::Scheme;
use crate::workload::Workload;

/// One differential test point.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffTuple {
    /// Workload under test.
    pub workload: Workload,
    /// Faulty-environment supply voltage (FaultFree still runs nominal).
    pub vdd: Voltage,
    /// Workload/die seed.
    pub seed: u64,
}

impl DiffTuple {
    /// Cartesian sweep over benchmarks × voltages × seeds.
    pub fn sweep(benches: &[Benchmark], voltages: &[Voltage], seeds: &[u64]) -> Vec<DiffTuple> {
        let workloads: Vec<Workload> = benches.iter().map(|&b| Workload::Bench(b)).collect();
        Self::sweep_workloads(&workloads, voltages, seeds)
    }

    /// Cartesian sweep over arbitrary workloads × voltages × seeds.
    pub fn sweep_workloads(
        workloads: &[Workload],
        voltages: &[Voltage],
        seeds: &[u64],
    ) -> Vec<DiffTuple> {
        let mut tuples = Vec::new();
        for workload in workloads {
            for &vdd in voltages {
                for &seed in seeds {
                    tuples.push(DiffTuple {
                        workload: workload.clone(),
                        vdd,
                        seed,
                    });
                }
            }
        }
        tuples
    }
}

/// Differential-run parameters.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Committed instructions measured per run.
    pub commits: u64,
    /// Warm-up commits before measurement (exercises the mid-run stats
    /// reset under the auditor).
    pub warmup: u64,
    /// Audit level for every run.
    pub audit: AuditLevel,
    /// Schemes to compare (default: all six).
    pub schemes: Vec<Scheme>,
    /// Also run the golden-model oracle and record its verdict per run
    /// (default: off; the synthetic golden CSVs predate the field).
    pub oracle: bool,
    /// Run each tuple's schemes as one co-simulation job (shared frontend,
    /// N timing lanes) instead of `schemes.len()` solo jobs. Results are
    /// bit-identical either way (the contract `tests/cosim_equiv.rs`
    /// pins); co-sim pays frontend and fault-calibration cost once per
    /// tuple. Default: off, matching the historical job shape.
    pub cosim: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            commits: 20_000,
            warmup: 5_000,
            audit: AuditLevel::Full,
            schemes: Scheme::ALL.to_vec(),
            oracle: false,
            cosim: false,
        }
    }
}

/// The outcome of one scheme's run within a tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRun {
    /// Workload name of the tuple (`gcc`, `riscv:matmul`, …).
    pub workload: String,
    /// Supply voltage of the tuple.
    pub vdd: Voltage,
    /// Seed of the tuple.
    pub seed: u64,
    /// Scheme this run used.
    pub scheme: Scheme,
    /// Instructions committed (warm-up + measured).
    pub commits: u64,
    /// Cycles simulated in the measurement window.
    pub cycles: u64,
    /// FNV-1a hash of the committed `(seq, pc, op)` stream.
    pub stream_hash: u64,
    /// Cycles audited.
    pub audit_cycles: u64,
    /// Invariant checks performed.
    pub audit_checks: u64,
    /// Invariant violations observed.
    pub audit_violations: u64,
    /// First violation's description, if any.
    pub first_violation: Option<String>,
    /// Golden-model verdict when [`DiffConfig::oracle`] is on: `Some(true)`
    /// iff every committed value and the final register file matched.
    pub oracle_clean: Option<bool>,
}

/// Aggregate result of a differential sweep.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every run, grouped by tuple in submission order.
    pub runs: Vec<DiffRun>,
    /// Human-readable descriptions of tuples whose schemes disagreed.
    pub mismatches: Vec<String>,
}

impl DiffReport {
    /// Total invariant violations across all runs.
    pub fn total_violations(&self) -> u64 {
        self.runs.iter().map(|r| r.audit_violations).sum()
    }

    /// Whether every scheme agreed and no invariant was violated.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty() && self.total_violations() == 0
    }
}

/// FNV-1a over the architectural commit stream.
pub(crate) fn stream_hash(log: &[(u64, u64, u8)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mix = |word: u64, h: &mut u64| {
        for byte in word.to_le_bytes() {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(PRIME);
        }
    };
    for &(seq, pc, op) in log {
        mix(seq, &mut h);
        mix(pc, &mut h);
        mix(u64::from(op), &mut h);
    }
    h
}

pub(crate) fn run_one(tuple: &DiffTuple, scheme: Scheme, cfg: &DiffConfig) -> DiffRun {
    let mut builder = scheme
        .pipeline_builder_for(&tuple.workload, tuple.seed, tuple.vdd)
        .record_commits(true)
        .oracle(cfg.oracle);
    if cfg.audit.enabled() {
        builder = builder.audit(cfg.audit);
    }
    let mut pipe = builder.build();
    // Finite programs run start-to-halt (warming up would consume the
    // program); synthetic streams warm up then measure, as the golden
    // CSVs were produced.
    let stats = if tuple.workload.is_riscv() {
        pipe.run_to_halt(cfg.commits)
    } else {
        pipe.warm_up(cfg.warmup);
        pipe.run(cfg.commits)
    };
    let log = pipe.commit_log().expect("recording enabled");
    let report = pipe.audit_report();
    DiffRun {
        workload: tuple.workload.name(),
        vdd: tuple.vdd,
        seed: tuple.seed,
        scheme,
        commits: log.len() as u64,
        cycles: stats.cycles,
        stream_hash: stream_hash(log),
        audit_cycles: report.as_ref().map_or(0, |r| r.cycles),
        audit_checks: report.as_ref().map_or(0, |r| r.checks),
        audit_violations: report.as_ref().map_or(0, |r| r.violations_total),
        first_violation: report
            .as_ref()
            .and_then(|r| r.violations.first())
            .map(|v| format!("cycle {}: {}: {}", v.cycle, v.invariant, v.detail)),
        oracle_clean: pipe.oracle_report().map(|r| r.clean()),
    }
}

/// Runs every tuple under every configured scheme on `fleet` and checks
/// scheme equivalence. Results come back in submission order (tuples outer,
/// schemes inner), bit-identical at any worker count.
pub fn run_differential(fleet: &Fleet, tuples: &[DiffTuple], cfg: &DiffConfig) -> DiffReport {
    let runs = if cfg.cosim {
        // One job per tuple: all schemes share a frontend; the job yields
        // the same rows in the same (tuples outer, schemes inner) order.
        fleet
            .map(tuples.to_vec(), |tuple| crate::cosim::diff_runs(tuple, cfg))
            .results
            .into_iter()
            .flatten()
            .collect()
    } else {
        let items: Vec<(DiffTuple, Scheme)> = tuples
            .iter()
            .flat_map(|t| cfg.schemes.iter().map(|&s| (t.clone(), s)))
            .collect();
        fleet
            .map(items, |(tuple, scheme)| run_one(tuple, *scheme, cfg))
            .results
    };

    report_from_runs(runs, cfg)
}

/// Builds the [`DiffReport`] from runs in submission order (tuples outer,
/// schemes inner), flagging any scheme whose stream diverges from its
/// tuple's first scheme. Shared by the in-process and cluster runners.
pub(crate) fn report_from_runs(runs: Vec<DiffRun>, cfg: &DiffConfig) -> DiffReport {
    let mut mismatches = Vec::new();
    for group in runs.chunks(cfg.schemes.len()) {
        let Some(first) = group.first() else { continue };
        for run in &group[1..] {
            if run.stream_hash != first.stream_hash || run.commits != first.commits {
                mismatches.push(format!(
                    "{}@{:.3}V seed {}: {} stream (hash {:016x}, {} commits) \
                     diverges from {} (hash {:016x}, {} commits)",
                    run.workload,
                    run.vdd.volts(),
                    run.seed,
                    run.scheme.name(),
                    run.stream_hash,
                    run.commits,
                    first.scheme.name(),
                    first.stream_hash,
                    first.commits,
                ));
            }
        }
    }
    DiffReport { runs, mismatches }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_hash_is_order_and_content_sensitive() {
        let a = vec![(0u64, 0x400u64, 1u8), (1, 0x404, 2)];
        let mut b = a.clone();
        b.swap(0, 1);
        assert_ne!(stream_hash(&a), stream_hash(&b));
        let mut c = a.clone();
        c[1].2 = 3;
        assert_ne!(stream_hash(&a), stream_hash(&c));
        assert_eq!(stream_hash(&a), stream_hash(&a.clone()));
    }

    #[test]
    fn differential_smoke_two_schemes() {
        // A minimal two-scheme diff on one tuple; the full sweep lives in
        // tests/audit_diff.rs.
        let cfg = DiffConfig {
            commits: 3_000,
            warmup: 500,
            audit: AuditLevel::Basic,
            schemes: vec![Scheme::FaultFree, Scheme::Razor],
            oracle: false,
            cosim: false,
        };
        let tuples = [DiffTuple {
            workload: Workload::Bench(Benchmark::Gcc),
            vdd: Voltage::high_fault(),
            seed: 3,
        }];
        let report = run_differential(&Fleet::serial(), &tuples, &cfg);
        assert_eq!(report.runs.len(), 2);
        assert!(report.clean(), "mismatches: {:?}", report.mismatches);
        assert!(report.runs.iter().all(|r| r.commits == 3_500));
        assert!(report.runs.iter().all(|r| r.audit_checks > 0));
        assert!(report.runs.iter().all(|r| r.oracle_clean.is_none()));
    }

    #[test]
    fn differential_riscv_program_all_schemes_oracle_clean() {
        let mut schemes = Scheme::ALL.to_vec();
        schemes.push(Scheme::NoTolerance);
        let cfg = DiffConfig {
            commits: 1_000_000,
            warmup: 0,
            audit: AuditLevel::Basic,
            schemes,
            oracle: true,
            cosim: false,
        };
        let tuples = [DiffTuple {
            workload: Workload::builtin("hazard_raw").unwrap(),
            vdd: Voltage::high_fault(),
            seed: 9,
        }];
        let report = run_differential(&Fleet::serial(), &tuples, &cfg);
        assert_eq!(report.runs.len(), 7);
        assert!(
            report.mismatches.is_empty(),
            "all schemes must commit the same real-program stream: {:?}",
            report.mismatches
        );
        assert_eq!(report.total_violations(), 0);
        // Every run commits the whole program (same dynamic length).
        let commits = report.runs[0].commits;
        assert!(commits > 0);
        assert!(report.runs.iter().all(|r| r.commits == commits));
        assert!(report
            .runs
            .iter()
            .all(|r| r.oracle_clean.is_some()));
    }
}
