//! Atomic result publication and content fingerprinting.
//!
//! Every result file this workspace produces — campaign CSVs, figure
//! CSVs, benchmark JSON, the experiment server's result store — is read
//! back by something that trusts it: verify scripts `cmp` them, resumed
//! campaigns replay them, and the campaign server serves them to remote
//! clients. A bare `std::fs::write` torn by a crash (or a reader racing
//! the writer) hands that consumer a truncated file with no way to tell.
//!
//! [`write_atomic`] closes that hole with the classic
//! write-temp-then-rename protocol: the bytes land in a unique temporary
//! file in the *same directory* (same filesystem, so the rename cannot
//! degrade to a copy), the file is flushed, and `rename(2)` publishes it
//! in one atomic step. A reader sees either the old complete file or the
//! new complete file, never a torn hybrid.
//!
//! # Durability contract
//!
//! `write_atomic` guarantees, on return:
//!
//! 1. **Atomicity** — concurrent readers observe old-or-new bytes, never
//!    a mixture (the `rename(2)` contract).
//! 2. **Content durability** — the new bytes are on stable storage
//!    (`fsync` of the temp file *before* the rename), so a power cut can
//!    never resurrect a zero-length or partial file under the new name.
//! 3. **Name durability (best effort)** — the parent directory is
//!    `fsync`ed *after* the rename, so on journaling filesystems the
//!    rename itself survives the crash. Filesystems that refuse
//!    directory fsync (some network/overlay mounts) degrade gracefully:
//!    the old complete file may reappear after a crash, but never a torn
//!    one.
//!
//! Under an active [`chaos`](crate::chaos) plan, `write_atomic` is an
//! injection point (`Site::PersistWrite`): scheduled calls fail with a
//! loud transient `io::Error` before touching the filesystem — callers
//! must already tolerate a failed publication, and the chaos campaign
//! verifies they do.
//!
//! [`fnv1a`] is the workspace's content-fingerprint hash (the same
//! construction as the differential harness's commit-stream hash): it
//! keys the campaign journal fingerprint and the server's
//! content-addressed result store.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process counter distinguishing concurrent temp files.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces `path` with `bytes` via write-temp-then-rename.
///
/// The temporary file lives next to `path` (`.<name>.tmp-<pid>-<seq>`),
/// so the final `rename` stays on one filesystem and is atomic. On any
/// error the temporary file is removed and `path` is left untouched.
/// See the [module docs](self) for the full durability contract.
///
/// # Errors
///
/// Returns the underlying I/O error when the temp file cannot be
/// created, written, flushed or renamed — or a chaos-injected transient
/// error when a [`chaos`](crate::chaos) plan schedules one for this
/// call (nothing is written in that case).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(plan) = crate::chaos::active_plan() {
        if plan.decide(crate::chaos::Site::PersistWrite) {
            return Err(io::Error::other(format!(
                "chaos: injected persist fault for {}",
                path.display()
            )));
        }
    }
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp-{}-{}",
        name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let publish = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Push the bytes to stable storage before the rename publishes
        // them: a power cut after rename must not resurrect a hole.
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if publish.is_err() {
        fs::remove_file(&tmp).ok();
        return publish;
    }
    // Make the *rename* durable too: fsync the parent directory so the
    // new directory entry survives a crash. Best effort — directories on
    // some filesystems cannot be opened or synced, and the content
    // durability above already rules out torn files.
    let dir_to_sync = dir.unwrap_or_else(|| Path::new("."));
    if let Ok(d) = fs::File::open(dir_to_sync) {
        let _ = d.sync_all();
    }
    publish
}

/// [`write_atomic`] for string payloads.
///
/// # Errors
///
/// Propagates [`write_atomic`]'s I/O errors.
pub fn write_atomic_str(path: &Path, text: &str) -> io::Result<()> {
    write_atomic(path, text.as_bytes())
}

/// FNV-1a over raw bytes — the workspace's content-fingerprint hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Extends an FNV-1a fingerprint with one little-endian word.
pub fn fnv1a_word(mut h: u64, word: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tv-persist-{}-{tag}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp_behind() {
        let dir = temp_dir("basic");
        let path = dir.join("out.csv");
        write_atomic(&path, b"first\n").expect("first write");
        assert_eq!(fs::read(&path).unwrap(), b"first\n");
        write_atomic(&path, b"second\n").expect("replace");
        assert_eq!(fs::read(&path).unwrap(), b"second\n");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_failure_keeps_the_old_file() {
        let dir = temp_dir("fail");
        let path = dir.join("kept.csv");
        write_atomic(&path, b"survivor\n").expect("seed file");
        // A directory squatting on the target makes the rename fail.
        let blocked = dir.join("blocked");
        fs::create_dir_all(blocked.join("x")).unwrap();
        assert!(write_atomic(&blocked, b"nope").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"survivor\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn relative_paths_without_parent_work() {
        let dir = temp_dir("cwd");
        let path = dir.join("rel.txt");
        write_atomic_str(&path, "ok").expect("write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "ok");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        // Word extension is equivalent to hashing the LE bytes.
        let mut by_bytes = fnv1a(b"");
        by_bytes = fnv1a_word(by_bytes, 0x0102_0304_0506_0708);
        assert_eq!(
            by_bytes,
            fnv1a(&0x0102_0304_0506_0708u64.to_le_bytes()),
        );
    }
}
